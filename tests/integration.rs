//! Cross-crate integration tests: the full PrefixRL pipeline from graph
//! actions through netlist generation, synthesis, and RL training.

use prefixrl::prelude::*;
use std::sync::Arc;

/// The complete Fig. 1 loop: state → action → legalization → netlist →
/// synthesis → reward, end to end.
#[test]
fn full_environment_step_with_synthesis_reward() {
    let lib = Library::nangate45();
    let evaluator = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
        Adder,
        lib,
        SweepConfig::fast(),
        0.5,
    )));
    let mut env = PrefixEnv::new(prefixrl_core::env::EnvConfig::synthesis(8), evaluator);
    let before = env.metrics();
    assert!(before.area > 0.0 && before.delay > 0.0);
    // Add a shortcut on the ripple chain: delay must fall (positive delay
    // reward component), area must rise (negative area component).
    let out = env.step(Action::Add(Node::new(6, 3)));
    assert!(out.reward[1] > 0.0, "delay reward {:?}", out.reward);
    assert!(out.reward[0] < 0.0, "area reward {:?}", out.reward);
}

/// Trained-agent designs must remain functionally correct adders after
/// synthesis-grade optimization.
#[test]
fn rl_designs_synthesize_to_correct_adders() {
    use rand::prelude::*;
    let cfg = AgentConfig::tiny(8, 0.5);
    let result = TrainLoop::run(
        &cfg,
        Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder))),
    );
    let lib = Library::nangate45();
    let cons = synth::sta::TimingConstraints::uniform(&lib);
    let mut rng = StdRng::seed_from_u64(5);
    let front = result.front();
    for (_, graph) in front.iter().take(3) {
        let nl = adder::generate(graph);
        let base = synth::sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let out =
            synth::optimizer::optimize(&nl, &lib, &cons, base * 0.5, &OptimizerConfig::fast());
        for _ in 0..10 {
            let a = rng.random::<u64>() & 0xFF;
            let b = rng.random::<u64>() & 0xFF;
            assert_eq!(sim::add(&out.netlist, a, b), (a + b) as u128);
        }
    }
}

/// The scalarization weight controls where on the trade-off agents land:
/// the delay-weighted agent's best design must be at least as fast as the
/// area-weighted agent's, which must be at least as small.
#[test]
fn weight_controls_design_specialization() {
    let eval = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
    let mut small_cfg = AgentConfig::tiny(8, 0.95);
    small_cfg.total_steps = 600;
    let mut fast_cfg = AgentConfig::tiny(8, 0.05);
    fast_cfg.total_steps = 600;
    let small = TrainLoop::run(&small_cfg, eval.clone());
    let fast = TrainLoop::run(&fast_cfg, eval);
    let best_small = small.best_scalarized(0.95, 0.05, 0.25).unwrap().1;
    let best_fast = fast.best_scalarized(0.05, 0.05, 0.25).unwrap().1;
    assert!(
        best_small.area <= best_fast.area,
        "{best_small:?} vs {best_fast:?}"
    );
    assert!(
        best_fast.delay <= best_small.delay,
        "{best_small:?} vs {best_fast:?}"
    );
}

/// RL (even a tiny run) must discover designs the regular structures do not
/// dominate, and its frontier must at least match the ripple/Sklansky
/// starting states it grows from.
#[test]
fn rl_frontier_beats_starting_states() {
    let cfg = AgentConfig::tiny(8, 0.4);
    let result = TrainLoop::run(
        &cfg,
        Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder))),
    );
    let front = result.front();
    let ripple = TaskEvaluator::analytical(Adder).evaluate(&PrefixGraph::ripple(8));
    let sklansky = TaskEvaluator::analytical(Adder).evaluate(&structures::sklansky(8));
    // The starting states are in the visited set, so the front must weakly
    // improve on both.
    assert!(front.area_at_delay(ripple.delay).unwrap() <= ripple.area);
    assert!(front.area_at_delay(sklansky.delay).unwrap() <= sklansky.area);
    // And strictly improve somewhere against the two-point baseline front.
    let mut base: ParetoFront<&str> = ParetoFront::new();
    base.insert(ripple, "ripple");
    base.insert(sklansky, "sklansky");
    let (saving, _) = front.max_area_saving_vs(&base).unwrap();
    assert!(saving >= 0.0);
}

/// The Fig. 6 phenomenon must be observable: the analytical metric ranks
/// designs differently from synthesis (rank inversions exist between the
/// two evaluators over a diverse design set).
#[test]
fn analytical_and_synthesis_rankings_diverge() {
    let lib = Library::nangate45();
    let designs: Vec<PrefixGraph> = vec![
        PrefixGraph::ripple(16),
        structures::sklansky(16),
        structures::kogge_stone(16),
        structures::brent_kung(16),
        structures::han_carlson(16),
        structures::sparse_kogge_stone(16, 4),
    ];
    let ana: Vec<f64> = designs
        .iter()
        .map(|g| prefix_graph::analytical::evaluate(g).delay)
        .collect();
    let syn: Vec<f64> = designs
        .iter()
        .map(|g| synth::sweep::sweep_graph(g, &lib, &SweepConfig::fast()).min_delay())
        .collect();
    let mut inversions = 0;
    for i in 0..designs.len() {
        for j in (i + 1)..designs.len() {
            if (ana[i] < ana[j]) != (syn[i] < syn[j]) {
                inversions += 1;
            }
        }
    }
    assert!(
        inversions > 0,
        "analytical and synthesized delay orderings agree exactly — \
         the Fig. 6 divergence should exist (ana {ana:?}, syn {syn:?})"
    );
}

/// Serial and async training share the evaluator cache correctly and both
/// produce legal, evaluable designs.
#[test]
fn async_training_integrates_with_synthesis_cache() {
    let lib = Library::nangate45();
    let eval = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
        Adder,
        lib,
        SweepConfig::fast(),
        0.5,
    )));
    let mut cfg = AgentConfig::tiny(8, 0.5);
    cfg.total_steps = 120;
    cfg.env = prefixrl_core::env::EnvConfig::synthesis(8);
    let result = AsyncRunner::new(2).train(&cfg, eval.clone());
    assert!(!result.designs.is_empty());
    assert!(eval.hits() + eval.misses() > 0);
    for (g, p) in result.designs.iter().take(5) {
        g.verify_legal().unwrap();
        assert!(p.area > 0.0 && p.delay > 0.0);
    }
}

/// Checkpoint round-trip: a trained agent's Q-network state survives
/// serialization and produces identical greedy decisions.
#[test]
fn agent_checkpoint_roundtrip() {
    let cfg = AgentConfig::tiny(8, 0.5);
    let eval: Arc<dyn Evaluator> = Arc::new(TaskEvaluator::analytical(Adder));
    let mut lp = TrainLoop::new(&cfg, Arc::clone(&eval));
    lp.run_to_completion(0, &mut NullObserver);
    let (mut dqn, _) = lp.into_parts();
    let bytes = dqn.online_mut().to_bytes();
    let mut restored = PrefixQNet::new(&cfg.qnet);
    restored.from_bytes(&bytes).unwrap();
    let env = PrefixEnv::new(cfg.env.clone(), eval);
    let f = env.features();
    use rl::QNetwork;
    let a = dqn.online_mut().forward(&[f.as_slice()], false);
    let b = restored.forward(&[f.as_slice()], false);
    assert_eq!(a[0], b[0]);
}

/// Power extension: the optional third objective is computable on optimized
/// netlists and scales with area.
#[test]
fn power_objective_extension() {
    let lib = Library::nangate45();
    let small = adder::generate(&structures::brent_kung(16));
    let large = adder::generate(&structures::kogge_stone(16));
    let p_small = synth::power::estimate(&small, &lib);
    let p_large = synth::power::estimate(&large, &lib);
    assert!(p_small > 0.0 && p_large > p_small);
}

/// Nonuniform timing constraints extension: late MSB arrival shifts the
/// optimizer's outcome.
#[test]
fn nonuniform_arrival_extension() {
    let lib = Library::nangate45();
    let nl = adder::generate(&structures::sklansky(8));
    let uniform = synth::sta::TimingConstraints::uniform(&lib);
    let skewed = synth::sta::TimingConstraints::with_arrivals(
        &lib,
        (0..16)
            .map(|i| if i % 8 >= 6 { 0.15 } else { 0.0 })
            .collect(),
    );
    let du = synth::sta::analyze(&nl, &lib, &uniform, 1.0).critical_delay;
    let ds = synth::sta::analyze(&nl, &lib, &skewed, 1.0).critical_delay;
    assert!(ds > du, "late MSBs must lengthen the critical path");
}
