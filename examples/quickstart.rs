//! Quickstart: build, inspect, synthesize and improve a prefix adder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use prefixrl::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Classical structures and the grid representation.
    let n = 16;
    let sk = structures::sklansky(n);
    println!(
        "Sklansky {n}b: {} nodes, depth {}, max fanout {}",
        sk.size(),
        sk.depth(),
        sk.max_fanout()
    );
    println!("{}", prefix_graph::render::ascii(&sk));

    // 2. Generate its gate-level netlist and check it actually adds.
    let nl = adder::generate(&sk);
    println!("netlist: {} gates", nl.num_gates());
    assert_eq!(sim::add(&nl, 40_000, 25_535), 65_535);

    // 3. Synthesize at 4 delay targets and print the area-delay curve.
    let lib = Library::nangate45();
    let curve = synth::sweep::sweep_graph(&sk, &lib, &SweepConfig::paper());
    println!("area-delay curve ({}):", lib.name());
    for (delay, area) in curve.knots() {
        println!("  delay {delay:.3} ns -> area {area:.1} um^2");
    }

    // 4. Train a small PrefixRL agent (analytical reward for speed) and
    //    compare its best design against the start states.
    let cfg = AgentConfig::small(8, 0.35, 3_000);
    let evaluator = Arc::new(CachedEvaluator::new(AnalyticalEvaluator));
    println!("\ntraining a small 8b agent (w_area = 0.35, 3k steps)...");
    let result = train(&cfg, evaluator.clone());
    println!(
        "visited {} distinct designs, cache hit rate {:.0}%",
        result.designs.len(),
        100.0 * evaluator.hit_rate()
    );
    let front = result.front();
    println!("discovered Pareto front ({} points):", front.len());
    for (p, g) in front.iter().take(8) {
        println!(
            "  area {:>5.1}  delay {:>5.2}  (size {}, depth {})",
            p.area,
            p.delay,
            g.size(),
            g.depth()
        );
    }
}
