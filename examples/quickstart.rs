//! Quickstart: build, inspect, synthesize and improve a prefix adder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use prefixrl::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Classical structures and the grid representation.
    let n = 16;
    let sk = structures::sklansky(n);
    println!(
        "Sklansky {n}b: {} nodes, depth {}, max fanout {}",
        sk.size(),
        sk.depth(),
        sk.max_fanout()
    );
    println!("{}", prefix_graph::render::ascii(&sk));

    // 2. Generate its gate-level netlist and check it actually adds.
    let nl = adder::generate(&sk);
    println!("netlist: {} gates", nl.num_gates());
    assert_eq!(sim::add(&nl, 40_000, 25_535), 65_535);

    // 3. Synthesize at 4 delay targets and print the area-delay curve.
    let lib = Library::nangate45();
    let curve = synth::sweep::sweep_graph(&sk, &lib, &SweepConfig::paper());
    println!("area-delay curve ({}):", lib.name());
    for (delay, area) in curve.knots() {
        println!("  delay {delay:.3} ns -> area {area:.1} um^2");
    }

    // 4. Train a small PrefixRL session through the Experiment builder,
    //    watching its event stream, and compare the discovered frontier
    //    against the start states. The session is explicit about its
    //    workload: a CircuitTask (here the adder; PrefixOr and Incrementer
    //    plug in identically — see examples/prefix_or_frontier.rs) scored
    //    by an ObjectiveBackend (analytical for speed; SynthesisBackend
    //    for the paper's synthesis-in-the-loop reward).
    let experiment = Experiment::builder()
        .n(8)
        .task(Arc::new(Adder))
        .backend(Arc::new(AnalyticalBackend))
        .weights(Weights::single(0.35))
        .steps(3_000)
        .build();
    println!("\ntraining a small 8b agent (w_area = 0.35, 3k steps)...");
    let mut episodes = 0usize;
    let mut observer = CallbackObserver::new(|_, event: &Event| {
        if let Event::EpisodeEnd { episode, .. } = event {
            episodes = *episode;
        }
    });
    let result = experiment.run(&mut observer).expect("training run");
    let _ = observer; // closure borrow of `episodes` ends here
    println!(
        "visited {} distinct designs over {episodes} episodes, cache hit rate {:.0}%",
        result.records[0].designs.len(),
        100.0 * result.cache.hit_rate
    );
    let front = result.merged_front();
    println!("discovered Pareto front ({} points):", front.len());
    for (p, g) in front.iter().take(8) {
        println!(
            "  area {:>5.1}  delay {:>5.2}  (size {}, depth {})",
            p.area,
            p.delay,
            g.size(),
            g.depth()
        );
    }
}
