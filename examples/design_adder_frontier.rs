//! Design an area-delay Pareto frontier of adders with RL agents at several
//! scalarization weights, and compare it against the classical structures —
//! a miniature of the paper's Fig. 4 experiment, driven by the
//! `Experiment` sweep API (one shared evaluation cache, merged fronts).
//!
//! ```sh
//! cargo run --release --example design_adder_frontier
//! ```

use prefixrl::prelude::*;

fn main() {
    let n: u16 = 12;
    let steps = 1_500u64;

    // Five agents across the weight range, all sharing one cached
    // analytical evaluator behind the experiment's EvalService.
    let experiment = Experiment::builder()
        .n(n)
        .weights(Weights::list(vec![0.15, 0.35, 0.55, 0.75, 0.92]))
        .steps(steps)
        .seed(40)
        .eval_threads(5)
        .build();
    let result = experiment.run_quiet().expect("sweep");

    let mut front: ParetoFront<String> = ParetoFront::new();
    for record in &result.records {
        for (g, p) in &record.designs {
            front.insert(
                *p,
                format!("rl(w={})[{}n/{}l]", record.w_area, g.size(), g.depth()),
            );
        }
        println!(
            "agent w_area={}: {} designs visited, frontier {} points",
            record.w_area,
            record.designs.len(),
            record.front().len(),
        );
    }

    println!("\ncombined RL frontier vs classical structures (analytical metrics):");
    println!("{:<28} {:>8} {:>8}", "design", "area", "delay");
    for (p, label) in front.iter() {
        println!("{label:<28} {:>8.1} {:>8.2}", p.area, p.delay);
    }
    let mut classical: ParetoFront<&str> = ParetoFront::new();
    for (name, ctor) in structures::all_regular() {
        let m = prefix_graph::analytical::evaluate(&ctor(n));
        let pt = ObjectivePoint {
            area: m.area,
            delay: m.delay,
        };
        println!("{name:<28} {:>8.1} {:>8.2}", pt.area, pt.delay);
        classical.insert(pt, name);
    }
    match front.max_area_saving_vs(&classical) {
        Some((saving, at)) => {
            println!("\nmax RL area saving at equal delay: {saving:.1}% (at delay {at:.2})")
        }
        None => println!("\nRL frontier does not reach the classical delays"),
    }
    println!(
        "cache: {} unique states, {:.0}% hit rate across {} agents",
        result.cache.unique_states,
        100.0 * result.cache.hit_rate,
        result.records.len(),
    );
}
