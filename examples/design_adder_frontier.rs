//! Design an area-delay Pareto frontier of adders with RL agents at several
//! scalarization weights, and compare it against the classical structures —
//! a miniature of the paper's Fig. 4 experiment.
//!
//! ```sh
//! cargo run --release --example design_adder_frontier
//! ```

use prefixrl::prelude::*;
use std::sync::Arc;

fn main() {
    let n: u16 = 12;
    let weights = [0.15, 0.35, 0.55, 0.75, 0.92];
    let steps = 1_500u64;

    // One shared, cached analytical evaluator across all agents.
    let evaluator = Arc::new(CachedEvaluator::new(AnalyticalEvaluator));

    let mut front: ParetoFront<String> = ParetoFront::new();
    for (i, &w) in weights.iter().enumerate() {
        let mut cfg = AgentConfig::small(n, w as f32, steps);
        cfg.seed = 40 + i as u64;
        let result = train(&cfg, evaluator.clone());
        for (g, p) in &result.designs {
            front.insert(*p, format!("rl(w={w})[{}n/{}l]", g.size(), g.depth()));
        }
        println!(
            "agent w_area={w}: {} designs visited, best scalarized {:?}",
            result.designs.len(),
            result
                .best_scalarized(w, 1.0, 1.0)
                .map(|(g, p)| (g.size(), p.area, p.delay))
        );
    }

    println!("\ncombined RL frontier vs classical structures (analytical metrics):");
    println!("{:<28} {:>8} {:>8}", "design", "area", "delay");
    for (p, label) in front.iter() {
        println!("{label:<28} {:>8.1} {:>8.2}", p.area, p.delay);
    }
    let mut classical: ParetoFront<&str> = ParetoFront::new();
    for (name, ctor) in structures::all_regular() {
        let m = prefix_graph::analytical::evaluate(&ctor(n));
        let pt = ObjectivePoint {
            area: m.area,
            delay: m.delay,
        };
        println!("{name:<28} {:>8.1} {:>8.2}", pt.area, pt.delay);
        classical.insert(pt, name);
    }
    match front.max_area_saving_vs(&classical) {
        Some((saving, at)) => {
            println!("\nmax RL area saving at equal delay: {saving:.1}% (at delay {at:.2})")
        }
        None => println!("\nRL frontier does not reach the classical delays"),
    }
    println!(
        "cache: {} unique states, {:.0}% hit rate",
        evaluator.unique_states(),
        100.0 * evaluator.hit_rate()
    );
}
