//! Explore the synthesis simulator: how timing targets, libraries and
//! optimizer transforms shape the area-delay trade-off of a single adder —
//! and export its netlist to Verilog.
//!
//! ```sh
//! cargo run --release --example synthesis_explorer
//! ```

use prefixrl::prelude::*;
use synth::sta::{self, TimingConstraints};

fn main() {
    let n = 32;
    let graph = structures::brent_kung(n);
    let nl = adder::generate(&graph);
    println!(
        "Brent-Kung {n}b: {} graph nodes -> {} gates",
        graph.size(),
        nl.num_gates()
    );
    println!("cell mix: {:?}\n", nl.cell_histogram());

    for lib in [Library::nangate45(), Library::tech8()] {
        let cons = TimingConstraints::uniform(&lib);
        let relaxed = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        println!(
            "library {:<10} unoptimized delay {relaxed:.3} ns, area {:.2} um^2",
            lib.name(),
            nl.area(&lib)
        );
        for frac in [0.35, 0.55, 0.8, 1.05] {
            let out = synth::optimizer::optimize(
                &nl,
                &lib,
                &cons,
                relaxed * frac,
                &OptimizerConfig::openphysyn(),
            );
            let power = synth::power::estimate(&out.netlist, &lib);
            println!(
                "  target {:>6.3} ns -> delay {:>6.3} ns, area {:>8.2} um^2, power {:>7.1} uW, met={}",
                relaxed * frac, out.delay, out.area, power, out.met
            );
        }
        println!();
    }

    // Ablation: what each transform buys at a tight target (the DESIGN.md
    // "importance of synthesis optimizations" check, cf. paper Sec. V-D).
    let lib = Library::nangate45();
    let cons = TimingConstraints::uniform(&lib);
    let relaxed = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
    let target = relaxed * 0.4;
    let variants: [(&str, OptimizerConfig); 4] = [
        ("full", OptimizerConfig::openphysyn()),
        (
            "no sizing",
            OptimizerConfig {
                sizing: false,
                ..OptimizerConfig::openphysyn()
            },
        ),
        (
            "no buffering",
            OptimizerConfig {
                buffering: false,
                ..OptimizerConfig::openphysyn()
            },
        ),
        (
            "no pin swap",
            OptimizerConfig {
                pin_swap: false,
                ..OptimizerConfig::openphysyn()
            },
        ),
    ];
    println!("transform ablation at target {target:.3} ns:");
    for (name, cfg) in variants {
        let out = synth::optimizer::optimize(&nl, &lib, &cons, target, &cfg);
        println!(
            "  {name:<12} delay {:>6.3} ns, area {:>8.1} um^2",
            out.delay, out.area
        );
    }

    // Verilog export of the optimized netlist.
    let out = synth::optimizer::optimize(&nl, &lib, &cons, target, &OptimizerConfig::openphysyn());
    let verilog = netlist::verilog::export(&out.netlist);
    println!(
        "\nfirst lines of the optimized Verilog ({} lines total):",
        verilog.lines().count()
    );
    for line in verilog.lines().take(8) {
        println!("  {line}");
    }
}
