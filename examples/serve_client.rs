//! Serve quickstart: submit → poll → fetch-frontier against a resident
//! optimization server, end to end (DESIGN.md §13).
//!
//! Boots an in-process server on an ephemeral port (the same `Server` the
//! `prefixrl serve` subcommand runs), then drives it exactly as an
//! external client would over TCP: submit two sweep jobs on different
//! `(task, backend)` keys, poll their status transitions, and fetch the
//! persistent merged frontier each finished job folded its design pool
//! into.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use prefixrl_serve::{Client, JobSpec, ServeConfig, Server};
use serde_json::Value;
use std::time::Duration;

fn main() {
    // A resident server: ephemeral port, two workers, state persisted to
    // a scratch dir (restart the example and the frontier is still there).
    let state_dir = std::env::temp_dir().join("prefixrl-serve-quickstart");
    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        state_dir: Some(state_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("server boots");
    let addr = handle.addr().to_string();
    println!(
        "server listening on {addr} (state in {})",
        state_dir.display()
    );

    // Out-of-process equivalent:
    //   prefixrl serve --addr 127.0.0.1:7878 --state-dir <dir> &
    //   prefixrl submit --task adder --w-list 0.2,0.8 --steps 400
    let client = Client::new(addr);
    client
        .wait_until_ready(Duration::from_secs(10))
        .expect("server answers ping");

    // Submit: two jobs on different (task, backend, width) keys, running
    // concurrently over the server's one shared evaluation stack.
    let jobs: Vec<(u64, &str)> = [("adder", 0u64), ("prefix-or", 1)]
        .into_iter()
        .map(|(task, seed)| {
            let id = client
                .submit(&JobSpec {
                    task: task.to_string(),
                    backend: "analytical".to_string(),
                    n: 8,
                    weights: vec![0.2, 0.8],
                    steps: 400,
                    seed,
                })
                .expect("submit accepted");
            println!("submitted job {id}: {task} sweep over w ∈ {{0.2, 0.8}}");
            (id, task)
        })
        .collect();

    // Poll: queued → running → done (status also carries an event tail,
    // counters, and the submit-to-first-event latency).
    for (id, task) in &jobs {
        let snapshot = client
            .wait_for_phase(*id, &["done", "failed"], Duration::from_secs(300))
            .expect("job finishes");
        println!(
            "job {id} ({task}): phase {:?}, history {:?}, designs found {:?}, \
             first event after {:?}s",
            snapshot.get("phase").unwrap(),
            snapshot.get("history").unwrap(),
            snapshot.get("designs_found").unwrap(),
            snapshot.get("submit_to_first_event_sec").unwrap(),
        );
    }

    // Fetch-frontier: the cross-run artifact. Every finished job merged
    // its pool into the disk-backed front of its own key — rerun this
    // example and the fronts can only tighten, never regress.
    for (_, task) in &jobs {
        let front = client
            .frontier(task, "analytical", 8)
            .expect("stored frontier");
        let points = front.get("points").and_then(Value::as_array).unwrap();
        println!("\nstored frontier {} ({} points):", task, points.len());
        println!(
            "{:>10} {:>10}  {:>5} {:>5}",
            "area", "delay", "size", "depth"
        );
        for p in points {
            println!(
                "{:>10} {:>10}  {:>5} {:>5}",
                fmt_num(p.get("area").unwrap()),
                fmt_num(p.get("delay").unwrap()),
                fmt_num(p.get("size").unwrap()),
                fmt_num(p.get("depth").unwrap()),
            );
        }
    }

    handle.shutdown().expect("graceful shutdown");
    println!("\nserver stopped; state kept in {}", state_dir.display());
}

fn fmt_num(v: &Value) -> String {
    match v {
        Value::Number(n) => format!("{:.3}", n.as_f64()),
        other => format!("{other:?}"),
    }
}
