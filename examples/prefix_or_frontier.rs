//! Beyond adders: design priority-encoder spines (OR-prefix circuits) with
//! the same RL machinery, end to end — the workload generalization the
//! paper's conclusion points at.
//!
//! The prefix-OR task shares the adder's state space, actions, features,
//! and Q-network; only the emitted netlist (one NOR/NAND per node) and
//! therefore the synthesis reward differ. This example trains a tiny
//! sweep on the task, verifies the discovered circuits against the task's
//! functional reference, and synthesizes the frontier.
//!
//! ```sh
//! cargo run --release --example prefix_or_frontier
//! ```

use prefixrl::prelude::*;
use std::sync::Arc;

fn main() {
    let n: u16 = 8;
    let task: Arc<dyn CircuitTask> = prefixrl_core::task::by_name("prefix-or").unwrap();

    // 1. Train three agents across scalarization weights on the prefix-OR
    //    task with the analytical backend (swap in a SynthesisBackend for
    //    synthesis-in-the-loop rewards — same builder, one line).
    let experiment = Experiment::builder()
        .n(n)
        .task(Arc::clone(&task))
        .backend(Arc::new(AnalyticalBackend))
        .weights(Weights::linspace(0.2, 0.8, 3))
        .steps(1_500)
        .build();
    let result = experiment.run_quiet().expect("training run");
    println!(
        "task={} backend={}: {} agents visited {} designs (cache hit rate {:.0}%)",
        result.task,
        result.backend,
        result.records.len(),
        result
            .records
            .iter()
            .map(|r| r.designs.len())
            .sum::<usize>(),
        100.0 * result.cache.hit_rate,
    );

    // 2. Every frontier design must actually compute the prefix-OR:
    //    simulate the emitted netlist against the task reference.
    let front = result.merged_front();
    for (_, graph) in front.iter() {
        let nl = task.emit_netlist(graph);
        for x in 0..(1u64 << n) {
            let inputs: Vec<bool> = (0..n as usize).map(|i| (x >> i) & 1 == 1).collect();
            assert_eq!(
                sim::eval(&nl, &inputs),
                task.reference(n, &inputs),
                "frontier design diverges from prefix-OR semantics"
            );
        }
    }
    println!(
        "verified all {} frontier designs against the functional reference",
        front.len()
    );

    // 3. Synthesize the discovered frontier (task netlists, not adders)
    //    next to the classical structures, the paper's Fig. 4 procedure.
    let lib = Library::nangate45();
    let mut designs: Vec<(String, PrefixGraph)> = front
        .iter()
        .enumerate()
        .map(|(i, (_, g))| (format!("rl[{i}]"), g.clone()))
        .collect();
    designs.push(("sklansky".into(), structures::sklansky(n)));
    designs.push(("brent_kung".into(), structures::brent_kung(n)));
    let synth_front = sweep_task_front(task.as_ref(), &designs, &lib, &SweepConfig::fast(), 6, 4);
    println!(
        "\nsynthesized OR-prefix frontier ({} points):",
        synth_front.len()
    );
    println!("{:>10} {:>10}  design", "area", "delay");
    for (p, label) in synth_front.iter() {
        println!("{:>10.2} {:>10.4}  {label}", p.area, p.delay);
    }
}
