//! Reproduce the paper's Section V-D insight at example scale: designs
//! optimized for the analytical model (SA and Analytical-PrefixRL) look
//! great analytically but lose to synthesis-aware designs once pushed
//! through timing-driven synthesis — the motivation for synthesis in the
//! loop.
//!
//! ```sh
//! cargo run --release --example analytical_vs_synthesis
//! ```

use baselines::sa::{sa_frontier, SaConfig};
use prefixrl::prelude::*;
use std::sync::Arc;

fn main() {
    let n: u16 = 16;
    let lib = Library::nangate45();

    // Analytically optimized designs: SA at several weights (ref. [14]).
    let sa_designs = sa_frontier(n, &[0.1, 0.3, 0.5, 0.7, 0.9], &SaConfig::default(), 11);
    println!("SA produced {} designs", sa_designs.len());

    // Analytical-PrefixRL: a small agent trained on the analytical reward.
    let cfg = AgentConfig::small(n, 0.4, 2_000);
    let result = TrainLoop::run(
        &cfg,
        Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder))),
    );
    let rl_front = result.front();
    let rl_designs: Vec<PrefixGraph> = rl_front.iter().map(|(_, g)| g.clone()).take(6).collect();
    println!(
        "Analytical-PrefixRL kept {} frontier designs",
        rl_designs.len()
    );

    // Compare under BOTH metrics.
    println!(
        "\n{:<22} {:>9} {:>9} {:>11} {:>11}",
        "design", "ana.area", "ana.delay", "syn.area", "syn.delay"
    );
    let show = |label: &str, g: &PrefixGraph| {
        let ana = prefix_graph::analytical::evaluate(g);
        let curve = synth::sweep::sweep_graph(g, &lib, &SweepConfig::fast());
        // Report the fast end of the synthesized curve.
        let d = curve.min_delay();
        println!(
            "{label:<22} {:>9.1} {:>9.2} {:>11.1} {:>11.3}",
            ana.area,
            ana.delay,
            curve.area_at(d),
            d
        );
    };
    for (i, g) in sa_designs.iter().take(4).enumerate() {
        show(&format!("SA[{i}]"), g);
    }
    for (i, g) in rl_designs.iter().take(4).enumerate() {
        show(&format!("Analytical-RL[{i}]"), g);
    }
    for (name, ctor) in [
        ("Sklansky", structures::sklansky as fn(u16) -> PrefixGraph),
        ("KoggeStone", structures::kogge_stone),
        ("BrentKung", structures::brent_kung),
    ] {
        show(name, &ctor(n));
    }
    println!(
        "\nNote how designs that dominate on analytical metrics are not the\n\
         ones that synthesize best — the paper's argument for training with\n\
         synthesis in the loop (Fig. 6a vs 6b)."
    );
}
