//! Query-tier quickstart: submit → train → query the read tier
//! (DESIGN.md §15).
//!
//! Boots an in-process server, runs one small sweep job so the frontier
//! store has something merged, then answers the three query modes over
//! the wire: minimum-area design meeting a delay target, scalarized
//! argmin at an area weight, and every stored design in a delay window.
//! All answers come from the server's lock-free frontier snapshot —
//! reads never wait on a running merge.
//!
//! ```sh
//! cargo run --release --example query_client
//! ```

use prefixrl_serve::{Client, JobSpec, ServeConfig, Server};
use serde_json::Value;
use std::time::Duration;

fn main() {
    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server boots");
    let client = Client::new(handle.addr().to_string());
    client
        .wait_until_ready(Duration::from_secs(10))
        .expect("server answers ping");

    // Train: one short sweep merges its design pool into the store. Out
    // of process this is `prefixrl submit --task adder --w-list 0.2,0.8`.
    let id = client
        .submit(&JobSpec {
            task: "adder".to_string(),
            backend: "analytical".to_string(),
            n: 8,
            weights: vec![0.2, 0.8],
            steps: 400,
            seed: 0,
        })
        .expect("submit accepted");
    let snapshot = client
        .wait_for_phase(id, &["done", "failed"], Duration::from_secs(300))
        .expect("job finishes");
    assert_eq!(
        snapshot.get("phase"),
        Some(&Value::String("done".into())),
        "training job failed"
    );

    // Query mode 1 — best_at_delay: the minimum-area stored design whose
    // delay meets the target (`prefixrl query --at-delay 1e9`). A target
    // nothing meets degrades to the fastest design with `met: false`.
    let at_delay = client
        .query_best_at_delay("adder", "analytical", 8, 1e9)
        .expect("query answered");
    let result = at_delay.get("result").unwrap();
    println!(
        "best at delay ≤ 1e9: met = {:?}, point = {}",
        result.get("met").unwrap(),
        point_summary(result.get("point").unwrap()),
    );

    // Query mode 2 — best_at_weight: scalarized argmin over the front's
    // normalized (area, delay); w = 0 is the fastest design, w = 1 the
    // smallest (`prefixrl query --at-weight 0.5`).
    for w in [0.0, 0.5, 1.0] {
        let response = client
            .query_best_at_weight("adder", "analytical", 8, w)
            .expect("query answered");
        println!(
            "best at weight {w}: point = {}",
            point_summary(response.get("result").unwrap().get("point").unwrap()),
        );
    }

    // Query mode 3 — range: every stored design inside a delay window, in
    // delay order (`prefixrl query --range 0:1e9`).
    let range = client
        .query_range("adder", "analytical", 8, 0.0, 1e9)
        .expect("query answered");
    let result = range.get("result").unwrap();
    let points = result.get("points").and_then(Value::as_array).unwrap();
    println!("stored front ({} points):", points.len());
    for p in points {
        println!("  {}", point_summary(p));
    }
    println!(
        "answered at frontier epoch {:?}",
        range.get("epoch").unwrap()
    );

    handle.shutdown().expect("graceful shutdown");
}

fn point_summary(point: &Value) -> String {
    let num = |key: &str| match point.get(key) {
        Some(Value::Number(n)) => format!("{:.3}", n.as_f64()),
        other => format!("{other:?}"),
    };
    format!(
        "area {} delay {} (size {}, depth {})",
        num("area"),
        num("delay"),
        num("size"),
        num("depth")
    )
}
