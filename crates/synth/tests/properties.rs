//! Property tests across netlist generation and synthesis: random legal
//! prefix graphs must produce functionally correct adders, and every
//! optimizer transform must preserve logic while respecting the area-delay
//! trade-off.

use netlist::{adder, sim, Library};
use prefix_graph::{Action, Node, PrefixGraph};
use proptest::prelude::*;
use synth::optimizer::{optimize, OptimizerConfig};
use synth::sta::{self, TimingConstraints};
use synth::sweep::{sweep_graph, SweepConfig};

/// Random legal graph via a toggle walk from ripple.
fn graph_strategy() -> impl Strategy<Value = PrefixGraph> {
    (6u16..=14)
        .prop_flat_map(|n| {
            let pos = (2u16..n).prop_flat_map(move |m| (Just(m), 1u16..m));
            (Just(n), proptest::collection::vec(pos, 0..30))
        })
        .prop_map(|(n, walk)| {
            let mut g = PrefixGraph::ripple(n);
            for (m, l) in walk {
                let node = Node::new(m, l);
                let action = if g.can_add(node) {
                    Action::Add(node)
                } else if g.is_deletable(node) {
                    Action::Delete(node)
                } else {
                    continue;
                };
                g.apply(action).expect("legal");
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_graphs_make_correct_adders(g in graph_strategy(), a: u64, b: u64) {
        let n = g.n();
        let mask = u64::MAX >> (64 - n);
        let nl = adder::generate(&g);
        nl.validate().unwrap();
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(sim::add(&nl, a, b), a as u128 + b as u128);
    }

    #[test]
    fn optimizer_preserves_function_on_random_graphs(g in graph_strategy(), seed: u64) {
        use rand::prelude::*;
        let lib = Library::nangate45();
        let cons = TimingConstraints::uniform(&lib);
        let nl = adder::generate(&g);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let out = optimize(&nl, &lib, &cons, base * 0.5, &OptimizerConfig::fast());
        out.netlist.validate().unwrap();
        let mask = u64::MAX >> (64 - g.n());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let a = rng.random::<u64>() & mask;
            let b = rng.random::<u64>() & mask;
            prop_assert_eq!(sim::add(&out.netlist, a, b), a as u128 + b as u128);
        }
    }

    #[test]
    fn optimization_never_slows_below_unoptimized(g in graph_strategy()) {
        let lib = Library::nangate45();
        let cons = TimingConstraints::uniform(&lib);
        let nl = adder::generate(&g);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let out = optimize(&nl, &lib, &cons, base * 0.5, &OptimizerConfig::fast());
        prop_assert!(out.delay <= base + 1e-9, "optimizer made things worse");
    }

    #[test]
    fn curves_are_monotone_and_positive(g in graph_strategy()) {
        let lib = Library::nangate45();
        let curve = sweep_graph(&g, &lib, &SweepConfig::fast());
        let (lo, hi) = (curve.min_delay(), curve.max_delay());
        prop_assert!(lo > 0.0 && hi >= lo);
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let d = lo + (hi - lo) * i as f64 / 20.0;
            let a = curve.area_at(d);
            prop_assert!(a > 0.0);
            prop_assert!(a <= prev + 1e-9, "area must not increase with delay");
            prev = a;
        }
    }

    #[test]
    fn deeper_graphs_are_no_faster_unoptimized(g in graph_strategy()) {
        // STA sanity: adding a shortcut to a graph cannot make the
        // *unoptimized* netlist slower than dropping the whole structure to
        // ripple... compare against the ripple upper bound instead.
        let lib = Library::nangate45();
        let cons = TimingConstraints::uniform(&lib);
        let d_g = sta::analyze(&adder::generate(&g), &lib, &cons, 1.0).critical_delay;
        let ripple = PrefixGraph::ripple(g.n());
        let d_r = sta::analyze(&adder::generate(&ripple), &lib, &cons, 1.0).critical_delay;
        // The ripple chain is the deepest legal structure; anything else is
        // at most marginally slower (fanout can add a little).
        prop_assert!(d_g <= d_r * 1.35, "graph {d_g} vs ripple {d_r}");
    }

    #[test]
    fn incrementer_and_or_prefix_correct_on_random_graphs(g in graph_strategy(), x: u64) {
        let n = g.n();
        let mask = u64::MAX >> (64 - n);
        let x = x & mask;
        let inc = netlist::incrementer::generate(&g);
        prop_assert_eq!(netlist::incrementer::increment(&inc, x), x + 1);
        let or = netlist::prefix_or::generate(&g);
        let inputs: Vec<bool> = (0..n).map(|i| (x >> i) & 1 == 1).collect();
        let out = sim::eval(&or, &inputs);
        let got = out.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
        prop_assert_eq!(got, netlist::prefix_or::reference(x, n as usize));
    }
}
