//! Timing-driven physical synthesis simulator.
//!
//! This crate stands in for the paper's OpenPhySyn / commercial synthesis
//! flows (see DESIGN.md for the substitution rationale). It provides:
//!
//! - [`sta`]: static timing analysis over a [`netlist::Netlist`] with a
//!   load-dependent linear delay model, forward arrival and backward
//!   required-time propagation, slacks and critical-path extraction;
//! - [`optimizer`]: the timing-driven optimization loop — commutative
//!   **pin swapping**, critical-path **gate sizing**, high-fanout **buffer
//!   insertion** and **area recovery** — run against a delay target, exactly
//!   the transform set the paper lists for OpenPhySyn (Section IV-D);
//! - [`curve`]: PCHIP monotone-cubic interpolation of the area-delay
//!   trade-off sampled at a handful of delay targets (the paper's Fig. 3
//!   reward pipeline), plus scalarized `w`-optimal point queries;
//! - [`sweep`]: the 4-target synthesis sweep of a prefix graph producing an
//!   [`curve::AreaDelayCurve`];
//! - [`power`]: a switching-capacitance power estimate (paper future work,
//!   implemented as an extension).
//!
//! # Example
//!
//! ```
//! use prefix_graph::structures;
//! use netlist::Library;
//! use synth::sweep::{SweepConfig, sweep_graph};
//!
//! let lib = Library::nangate45();
//! let curve = sweep_graph(&structures::sklansky(16), &lib, &SweepConfig::fast());
//! // Tighter delay costs more area along the interpolated trade-off curve.
//! let (d_lo, d_hi) = (curve.min_delay(), curve.max_delay());
//! assert!(curve.area_at(d_lo) >= curve.area_at(d_hi));
//! ```

#![warn(missing_docs)]

pub mod curve;
pub mod optimizer;
pub mod power;
pub mod sta;
pub mod sweep;

pub use curve::AreaDelayCurve;
pub use optimizer::{OptimizerConfig, SynthesisOutcome};
pub use sta::{TimingConstraints, TimingReport};
pub use sweep::{sweep_graph, sweep_netlist, SweepConfig};
