//! Timing-driven synthesis optimization.
//!
//! Reproduces the transform set the paper drives through OpenPhySyn
//! (Section IV-D): **gate sizing**, **buffer insertion**, **pin swapping**,
//! and area recovery on positive slack. The optimizer runs against a delay
//! target: while the target is violated it applies the best estimated
//! delay-improving moves on the critical region; once met (or stuck) it
//! recovers area by downsizing gates with slack.
//!
//! Move selection uses slack-based analytical estimates and a single full
//! STA per iteration, which keeps a 4-target synthesis of a 64-bit adder in
//! the tens of milliseconds — the property that makes synthesis-in-the-loop
//! RL training tractable on a workstation (the paper needed 192 CPU workers
//! against real OpenPhySyn).

use crate::sta::{self, TimingConstraints, TimingReport};
use netlist::ir::{Driver, Sink};
use netlist::{CellType, Drive, GateId, Library, Netlist};
use serde::{Deserialize, Serialize};

/// Configuration of the optimization loop.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Maximum delay-fixing iterations (one STA each).
    pub max_iterations: usize,
    /// Enable critical-path gate sizing.
    pub sizing: bool,
    /// Enable high-fanout buffer insertion.
    pub buffering: bool,
    /// Enable commutative pin swapping.
    pub pin_swap: bool,
    /// Enable area recovery (downsizing) once timing is met.
    pub area_recovery: bool,
    /// Nets with at least this many sinks are buffering candidates.
    pub buffer_fanout_threshold: usize,
    /// Moves applied per iteration (batching amortizes STA cost).
    pub moves_per_iteration: usize,
    /// Nets within this slack of the worst are treated as critical, ns.
    pub slack_epsilon: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_iterations: 80,
            sizing: true,
            buffering: true,
            pin_swap: true,
            area_recovery: true,
            buffer_fanout_threshold: 4,
            moves_per_iteration: 6,
            slack_epsilon: 0.004,
        }
    }
}

impl OptimizerConfig {
    /// The "open-source flow" effort level used for training (OpenPhySyn
    /// stand-in).
    pub fn openphysyn() -> Self {
        OptimizerConfig::default()
    }

    /// A stronger effort level standing in for the commercial tool of the
    /// paper's Fig. 5 (more iterations, finer batching, more aggressive
    /// buffering).
    pub fn commercial() -> Self {
        OptimizerConfig {
            max_iterations: 160,
            buffer_fanout_threshold: 3,
            moves_per_iteration: 4,
            slack_epsilon: 0.002,
            ..OptimizerConfig::default()
        }
    }

    /// A reduced-effort configuration for unit tests and quick sweeps.
    pub fn fast() -> Self {
        OptimizerConfig {
            max_iterations: 30,
            moves_per_iteration: 8,
            ..OptimizerConfig::default()
        }
    }
}

/// The result of optimizing a netlist against a delay target.
#[derive(Clone, Debug)]
pub struct SynthesisOutcome {
    /// The optimized netlist.
    pub netlist: Netlist,
    /// Final cell area, µm².
    pub area: f64,
    /// Final critical-path delay, ns.
    pub delay: f64,
    /// The delay target optimized against, ns.
    pub target: f64,
    /// Whether the target was met.
    pub met: bool,
    /// Delay-fixing iterations consumed.
    pub iterations: usize,
}

/// One candidate local move.
#[derive(Clone, Debug)]
enum Move {
    Upsize(GateId, Drive),
    Buffer {
        net: netlist::NetId,
        sinks: Vec<Sink>,
    },
}

/// Optimizes `nl` against `target`, returning the best netlist found.
///
/// The input netlist is not modified. Logic function is preserved by
/// construction (all moves are sizing/buffering/commutative swaps); tests
/// verify equivalence via simulation.
pub fn optimize(
    nl: &Netlist,
    lib: &Library,
    cons: &TimingConstraints,
    target: f64,
    cfg: &OptimizerConfig,
) -> SynthesisOutcome {
    let mut work = nl.clone();
    let mut best: Option<(f64, f64, Netlist)> = None; // (delay, area, netlist)
    let mut iterations = 0;
    for _ in 0..cfg.max_iterations {
        iterations += 1;
        if cfg.pin_swap {
            swap_pins_pass(&mut work, lib, cons, target);
        }
        let report = sta::analyze(&work, lib, cons, target);
        let area = work.area(lib);
        if best
            .as_ref()
            .map(|(d, a, _)| better(report.critical_delay, area, *d, *a, target))
            .unwrap_or(true)
        {
            best = Some((report.critical_delay, area, work.clone()));
        }
        if report.critical_delay <= target {
            break;
        }
        let moves = collect_moves(&work, lib, &report, cfg);
        if moves.is_empty() {
            break;
        }
        for mv in moves {
            apply_move(&mut work, lib, mv);
        }
    }
    let (mut delay, mut area, mut netlist) = best.expect("at least one iteration ran");
    if cfg.area_recovery {
        let recovered = recover_area(netlist, lib, cons, target.max(delay));
        let report = sta::analyze(&recovered, lib, cons, target);
        delay = report.critical_delay;
        area = recovered.area(lib);
        netlist = recovered;
    }
    SynthesisOutcome {
        met: delay <= target + 1e-9,
        netlist,
        area,
        delay,
        target,
        iterations,
    }
}

/// Lexicographic quality: meeting the target dominates, then delay, then
/// area.
fn better(d_new: f64, a_new: f64, d_old: f64, a_old: f64, target: f64) -> bool {
    let met_new = d_new <= target;
    let met_old = d_old <= target;
    match (met_new, met_old) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => a_new < a_old || (a_new == a_old && d_new < d_old),
        (false, false) => d_new < d_old,
    }
}

/// Commutative pin pairs per cell type: pins 0/1 of every symmetric
/// 2-input cell and of AOI21/OAI21 (whose C pin is not symmetric).
fn commutative(ct: CellType) -> bool {
    !matches!(ct, CellType::Inv | CellType::Buf)
}

/// Greedy pin-swap pass: put later-arriving signals on faster pins.
fn swap_pins_pass(nl: &mut Netlist, lib: &Library, cons: &TimingConstraints, target: f64) {
    let report = sta::analyze(nl, lib, cons, target);
    let swaps: Vec<GateId> = nl
        .gates()
        .filter(|(_, g)| commutative(g.kind.cell_type))
        .filter(|(_, g)| {
            let ins = g.inputs();
            // Pin 0 has the larger pin offset (slower); the later arrival
            // should sit on pin 1.
            report.arrival[ins[0].index()] > report.arrival[ins[1].index()] + 1e-12
        })
        .map(|(id, _)| id)
        .collect();
    for id in swaps {
        nl.swap_pins(id, 0, 1);
    }
}

/// Collects the best-estimated delay-improving moves on the critical region.
fn collect_moves(
    nl: &Netlist,
    lib: &Library,
    report: &TimingReport,
    cfg: &OptimizerConfig,
) -> Vec<Move> {
    let worst = report.worst_slack();
    let sinks = nl.sink_map();
    let mut candidates: Vec<(f64, Move)> = Vec::new();
    for (gid, gate) in nl.gates() {
        let out = gate.output();
        if report.slack(out) > worst + cfg.slack_epsilon {
            continue; // not critical
        }
        let k = gate.kind;
        let load = report.load[out.index()];
        if cfg.sizing {
            if let Some(up) = k.drive.upsized(lib.max_drive()) {
                // Own gain: lower resistance on our load, minus intrinsic growth.
                let gain = (lib.resistance(k.cell_type, k.drive) - lib.resistance(k.cell_type, up))
                    * load
                    - (lib.intrinsic(k.cell_type, up) - lib.intrinsic(k.cell_type, k.drive));
                // Upstream penalty: extra input cap loads each driver; use
                // the worst (most critical) input's driver resistance.
                let dcap = lib.input_cap(k.cell_type, up) - lib.input_cap(k.cell_type, k.drive);
                let penalty = gate
                    .inputs()
                    .iter()
                    .map(|&n| dcap * driver_resistance(nl, lib, n))
                    .fold(0.0f64, f64::max);
                let score = gain - penalty;
                if score > 1e-6 {
                    candidates.push((score, Move::Upsize(gid, up)));
                }
            }
        }
        if cfg.buffering {
            let net_sinks = &sinks[out.index()];
            if net_sinks.len() >= cfg.buffer_fanout_threshold {
                // Move non-critical sinks behind a buffer, keeping critical
                // ones directly driven.
                let (critical, movable): (Vec<&Sink>, Vec<&Sink>) = net_sinks
                    .iter()
                    .partition(|s| sink_slack(nl, report, s) <= worst + cfg.slack_epsilon);
                if !movable.is_empty() && !critical.is_empty() {
                    let removed: f64 = movable.iter().map(|s| sink_cap(nl, lib, s)).sum::<f64>()
                        + lib.wire_cap(movable.len())
                        - lib.input_cap(CellType::Buf, Drive::new(2))
                        - lib.wire_cap(1);
                    let score = lib.resistance(k.cell_type, k.drive) * removed;
                    if score > 1e-6 {
                        candidates.push((
                            score,
                            Move::Buffer {
                                net: out,
                                sinks: movable.into_iter().copied().collect(),
                            },
                        ));
                    }
                }
            }
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut chosen = Vec::new();
    let mut touched = std::collections::HashSet::new();
    for (_, mv) in candidates {
        let key = match &mv {
            Move::Upsize(g, _) => g.index(),
            Move::Buffer { net, .. } => usize::MAX - net.index(),
        };
        if touched.insert(key) {
            chosen.push(mv);
            if chosen.len() >= cfg.moves_per_iteration {
                break;
            }
        }
    }
    chosen
}

fn apply_move(nl: &mut Netlist, _lib: &Library, mv: Move) {
    match mv {
        Move::Upsize(gid, drive) => nl.resize(gid, drive),
        Move::Buffer { net, sinks } => {
            nl.insert_buffer(net, Drive::new(2), &sinks);
        }
    }
}

/// Resistance of whatever drives `net` (input driver for PIs).
fn driver_resistance(nl: &Netlist, lib: &Library, net: netlist::NetId) -> f64 {
    match nl.driver(net) {
        Driver::Gate(g) => {
            let k = nl.gate(g).kind;
            lib.resistance(k.cell_type, k.drive)
        }
        Driver::Input(_) => lib.resistance(CellType::Buf, Drive::new(4)),
    }
}

/// Slack seen by a sink: its gate's output slack, or the net slack for POs.
fn sink_slack(nl: &Netlist, report: &TimingReport, sink: &Sink) -> f64 {
    match *sink {
        Sink::Pin { gate, .. } => report.slack(nl.gate(gate).output()),
        Sink::Output(idx) => {
            // PO sinks are as critical as the net itself.
            let net = nl.outputs()[idx as usize];
            report.slack(net)
        }
    }
}

/// Capacitance contributed by a sink.
fn sink_cap(nl: &Netlist, lib: &Library, sink: &Sink) -> f64 {
    match *sink {
        Sink::Pin { gate, .. } => {
            let k = nl.gate(gate).kind;
            lib.input_cap(k.cell_type, k.drive)
        }
        Sink::Output(_) => lib.output_load(),
    }
}

/// Downsizes gates with positive slack while keeping the achieved delay.
fn recover_area(mut nl: Netlist, lib: &Library, cons: &TimingConstraints, budget: f64) -> Netlist {
    const MAX_ROUNDS: usize = 24;
    for _ in 0..MAX_ROUNDS {
        let report = sta::analyze(&nl, lib, cons, budget);
        // Candidates: gates above X1 whose output slack comfortably exceeds
        // the estimated delay increase of one downsizing step.
        let mut batch: Vec<(GateId, Drive)> = Vec::new();
        for (gid, gate) in nl.gates() {
            let k = gate.kind;
            let Some(down) = k.drive.downsized() else {
                continue;
            };
            let load = report.load[gate.output().index()];
            let dd =
                (lib.resistance(k.cell_type, down) - lib.resistance(k.cell_type, k.drive)) * load;
            let slack = report.slack(gate.output());
            if slack > 2.5 * dd + 1e-4 {
                batch.push((gid, down));
            }
        }
        if batch.is_empty() {
            return nl;
        }
        let snapshot = nl.clone();
        for &(gid, down) in &batch {
            nl.resize(gid, down);
        }
        let after = sta::analyze(&nl, lib, cons, budget);
        if after.critical_delay > budget + 1e-9 {
            // Batch overshot: revert and retry conservatively one by one.
            nl = snapshot;
            let mut applied = false;
            for &(gid, down) in batch.iter().take(8) {
                let keep = nl.gate(gid).kind.drive;
                nl.resize(gid, down);
                let r = sta::analyze(&nl, lib, cons, budget);
                if r.critical_delay > budget + 1e-9 {
                    nl.resize(gid, keep);
                } else {
                    applied = true;
                }
            }
            if !applied {
                return nl;
            }
        }
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{adder, sim};
    use prefix_graph::structures;
    use rand::prelude::*;

    fn setup(n: u16) -> (Netlist, Library, TimingConstraints) {
        let lib = Library::nangate45();
        let cons = TimingConstraints::uniform(&lib);
        let nl = adder::generate(&structures::sklansky(n));
        (nl, lib, cons)
    }

    #[test]
    fn tight_target_reduces_delay_and_grows_area() {
        let (nl, lib, cons) = setup(16);
        let base = sta::analyze(&nl, &lib, &cons, 1.0);
        let out = optimize(
            &nl,
            &lib,
            &cons,
            base.critical_delay * 0.45,
            &OptimizerConfig::fast(),
        );
        assert!(
            out.delay < base.critical_delay * 0.8,
            "no speedup: {} vs {}",
            out.delay,
            base.critical_delay
        );
        assert!(out.area > nl.area(&lib), "speed must cost area");
    }

    #[test]
    fn loose_target_is_met_cheaply() {
        let (nl, lib, cons) = setup(16);
        let base = sta::analyze(&nl, &lib, &cons, 1.0);
        let out = optimize(
            &nl,
            &lib,
            &cons,
            base.critical_delay * 1.5,
            &OptimizerConfig::fast(),
        );
        assert!(out.met);
        assert!(
            out.area <= nl.area(&lib) * 1.01,
            "loose target should not inflate area"
        );
    }

    #[test]
    fn optimization_preserves_function() {
        let lib = Library::nangate45();
        let cons = TimingConstraints::uniform(&lib);
        let mut rng = StdRng::seed_from_u64(3);
        for ctor in [structures::sklansky, structures::brent_kung] {
            let nl = adder::generate(&ctor(16));
            let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
            for frac in [0.4, 0.7, 1.2] {
                let out = optimize(&nl, &lib, &cons, base * frac, &OptimizerConfig::fast());
                out.netlist.validate().unwrap();
                for _ in 0..20 {
                    let a = rng.random::<u64>() & 0xFFFF;
                    let b = rng.random::<u64>() & 0xFFFF;
                    assert_eq!(sim::add(&out.netlist, a, b), a as u128 + b as u128);
                }
            }
        }
    }

    #[test]
    fn area_delay_tradeoff_is_monotone_across_targets() {
        let (nl, lib, cons) = setup(16);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let cfg = OptimizerConfig::fast();
        let mut results: Vec<(f64, f64)> = Vec::new();
        for frac in [0.45, 0.6, 0.8, 1.1] {
            let out = optimize(&nl, &lib, &cons, base * frac, &cfg);
            results.push((out.delay, out.area));
        }
        // Tighter targets never yield both more delay and less area than
        // looser ones; the achieved delays must be non-decreasing.
        for w in results.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-6, "delays out of order: {results:?}");
        }
        assert!(
            results.first().unwrap().1 >= results.last().unwrap().1,
            "tightest target should cost the most area: {results:?}"
        );
    }

    #[test]
    fn buffering_tames_high_fanout() {
        // Sklansky has N/2 fanout; buffering must be applied when chasing a
        // tight target.
        let (nl, lib, cons) = setup(32);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let out = optimize(&nl, &lib, &cons, base * 0.4, &OptimizerConfig::fast());
        let bufs = out
            .netlist
            .cell_histogram()
            .iter()
            .find(|(ct, _)| *ct == CellType::Buf)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        assert!(bufs > 0, "expected buffer insertion on sklansky(32)");
    }

    #[test]
    fn disabled_transforms_do_less() {
        let (nl, lib, cons) = setup(16);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let target = base * 0.45;
        let full = optimize(&nl, &lib, &cons, target, &OptimizerConfig::fast());
        let crippled = optimize(
            &nl,
            &lib,
            &cons,
            target,
            &OptimizerConfig {
                sizing: false,
                buffering: false,
                ..OptimizerConfig::fast()
            },
        );
        assert!(full.delay < crippled.delay, "sizing+buffering must matter");
    }

    #[test]
    fn commercial_effort_is_at_least_as_good() {
        let (nl, lib, cons) = setup(16);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let target = base * 0.4;
        let open = optimize(&nl, &lib, &cons, target, &OptimizerConfig::openphysyn());
        let comm = optimize(&nl, &lib, &cons, target, &OptimizerConfig::commercial());
        assert!(
            comm.delay <= open.delay * 1.02,
            "commercial {} vs open {}",
            comm.delay,
            open.delay
        );
    }

    #[test]
    fn outcome_reports_met_flag_correctly() {
        let (nl, lib, cons) = setup(8);
        let base = sta::analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let loose = optimize(&nl, &lib, &cons, base * 2.0, &OptimizerConfig::fast());
        assert!(loose.met);
        assert!(loose.delay <= loose.target + 1e-9);
        let impossible = optimize(&nl, &lib, &cons, 0.001, &OptimizerConfig::fast());
        assert!(!impossible.met);
    }
}
