//! Area-delay trade-off curves with PCHIP interpolation.
//!
//! The paper synthesizes each prefix-graph state at only 4 delay targets and
//! interpolates the full area-delay trade-off with monotone piecewise-cubic
//! Hermite interpolation (PCHIP, Fig. 3b). Rewards are then computed between
//! the `w`-optimal points of consecutive states' curves (Fig. 3c). This
//! module implements the Fritsch-Carlson monotone tangent construction, the
//! curve container and the scalarized-optimum query.

use serde::{Deserialize, Serialize};

/// A monotone piecewise-cubic (PCHIP) area-delay trade-off curve.
///
/// Knots are `(delay, area)` pairs from timing-driven synthesis runs at
/// different delay targets; area is non-increasing in delay after Pareto
/// cleaning. Queries outside the sampled delay range clamp to the endpoints.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AreaDelayCurve {
    delays: Vec<f64>,
    areas: Vec<f64>,
    tangents: Vec<f64>,
}

impl AreaDelayCurve {
    /// Builds a curve from raw synthesis samples.
    ///
    /// Samples are sorted by delay, exact-duplicate delays keep the smaller
    /// area, and Pareto-dominated samples (more area *and* more delay than
    /// another sample) are dropped, mirroring how the paper bins syntheses
    /// before interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[(f64, f64)]) -> Self {
        assert!(!samples.is_empty(), "need at least one synthesis sample");
        assert!(
            samples.iter().all(|&(d, a)| d.is_finite() && a.is_finite()),
            "non-finite synthesis sample"
        );
        let mut pts: Vec<(f64, f64)> = samples.to_vec();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        // Pareto clean: keep strictly decreasing areas as delay increases.
        let mut clean: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for (d, a) in pts {
            if let Some(&(pd, pa)) = clean.last() {
                if d - pd < 1e-12 {
                    continue; // duplicate delay, larger-or-equal area
                }
                if a >= pa {
                    continue; // dominated: more delay, no less area
                }
            }
            clean.push((d, a));
        }
        let delays: Vec<f64> = clean.iter().map(|p| p.0).collect();
        let areas: Vec<f64> = clean.iter().map(|p| p.1).collect();
        let tangents = pchip_tangents(&delays, &areas);
        AreaDelayCurve {
            delays,
            areas,
            tangents,
        }
    }

    /// The interpolated area at `delay`, clamped to the sampled range.
    pub fn area_at(&self, delay: f64) -> f64 {
        let n = self.delays.len();
        if n == 1 || delay <= self.delays[0] {
            return self.areas[0];
        }
        if delay >= self.delays[n - 1] {
            return self.areas[n - 1];
        }
        let seg = match self.delays.binary_search_by(|d| d.total_cmp(&delay)) {
            Ok(i) => return self.areas[i],
            Err(i) => i - 1,
        };
        let h = self.delays[seg + 1] - self.delays[seg];
        let t = (delay - self.delays[seg]) / h;
        let (y0, y1) = (self.areas[seg], self.areas[seg + 1]);
        let (m0, m1) = (self.tangents[seg], self.tangents[seg + 1]);
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * y0 + h10 * h * m0 + h01 * y1 + h11 * h * m1
    }

    /// The smallest sampled (achievable) delay.
    pub fn min_delay(&self) -> f64 {
        self.delays[0]
    }

    /// The largest sampled delay.
    pub fn max_delay(&self) -> f64 {
        *self.delays.last().unwrap()
    }

    /// The curve knots as `(delay, area)` pairs.
    pub fn knots(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.delays.iter().copied().zip(self.areas.iter().copied())
    }

    /// Finds the point on the curve minimizing the scalarized cost
    /// `w_area·c_area·area + w_delay·c_delay·delay` (the paper's Section
    /// IV-B objective), returning `(area, delay)`.
    ///
    /// The curve is sampled densely between knots; with the paper's scaling
    /// constants (`c_area = 0.001`, `c_delay = 10`) this is the reward
    /// anchor point of Fig. 3c.
    pub fn scalarized_optimum(
        &self,
        w_area: f64,
        w_delay: f64,
        c_area: f64,
        c_delay: f64,
    ) -> (f64, f64) {
        let cost = |area: f64, delay: f64| w_area * c_area * area + w_delay * c_delay * delay;
        let mut best = (self.areas[0], self.delays[0]);
        let mut best_cost = cost(best.0, best.1);
        const SAMPLES: usize = 160;
        let (lo, hi) = (self.min_delay(), self.max_delay());
        for i in 0..=SAMPLES {
            let d = lo + (hi - lo) * i as f64 / SAMPLES as f64;
            let a = self.area_at(d);
            let c = cost(a, d);
            if c < best_cost {
                best_cost = c;
                best = (a, d);
            }
        }
        best
    }
}

/// Fritsch-Carlson monotone tangents for PCHIP.
fn pchip_tangents(x: &[f64], y: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 1 {
        return vec![0.0];
    }
    let h: Vec<f64> = x.windows(2).map(|w| w[1] - w[0]).collect();
    let d: Vec<f64> = y
        .windows(2)
        .zip(&h)
        .map(|(w, &hh)| (w[1] - w[0]) / hh)
        .collect();
    if n == 2 {
        return vec![d[0], d[0]];
    }
    let mut m = vec![0.0f64; n];
    // Endpoints: one-sided three-point estimate, clamped for shape.
    m[0] = endpoint_tangent(h[0], h[1], d[0], d[1]);
    m[n - 1] = endpoint_tangent(h[n - 2], h[n - 3], d[n - 2], d[n - 3]);
    for i in 1..n - 1 {
        if d[i - 1] * d[i] <= 0.0 {
            m[i] = 0.0;
        } else {
            let w1 = 2.0 * h[i] + h[i - 1];
            let w2 = h[i] + 2.0 * h[i - 1];
            m[i] = (w1 + w2) / (w1 / d[i - 1] + w2 / d[i]);
        }
    }
    m
}

fn endpoint_tangent(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let t = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if t * d0 <= 0.0 {
        0.0
    } else if d0 * d1 < 0.0 && t.abs() > 3.0 * d0.abs() {
        3.0 * d0
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> AreaDelayCurve {
        AreaDelayCurve::from_samples(&[
            (0.30, 4000.0),
            (0.35, 3000.0),
            (0.42, 2600.0),
            (0.50, 2500.0),
        ])
    }

    #[test]
    fn interpolates_knots_exactly() {
        let c = curve();
        for (d, a) in c.knots().collect::<Vec<_>>() {
            assert!((c.area_at(d) - a).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_between_knots() {
        let c = curve();
        let mut prev = f64::INFINITY;
        for i in 0..=500 {
            let d = 0.30 + 0.20 * i as f64 / 500.0;
            let a = c.area_at(d);
            assert!(a <= prev + 1e-9, "non-monotone at delay {d}: {a} > {prev}");
            prev = a;
        }
    }

    #[test]
    fn clamps_outside_range() {
        let c = curve();
        assert_eq!(c.area_at(0.1), 4000.0);
        assert_eq!(c.area_at(0.9), 2500.0);
    }

    #[test]
    fn pareto_cleaning_drops_dominated_samples() {
        let c = AreaDelayCurve::from_samples(&[
            (0.30, 4000.0),
            (0.35, 4200.0), // dominated: slower and bigger
            (0.40, 3000.0),
            (0.40, 3500.0), // duplicate delay, bigger
        ]);
        let knots: Vec<_> = c.knots().collect();
        assert_eq!(knots, vec![(0.30, 4000.0), (0.40, 3000.0)]);
    }

    #[test]
    fn scalarized_optimum_moves_with_weight() {
        let c = curve();
        // Area-heavy weight picks the slow/small end; delay-heavy the fast end.
        let (_, d_area) = c.scalarized_optimum(0.99, 0.01, 0.001, 10.0);
        let (_, d_delay) = c.scalarized_optimum(0.01, 0.99, 0.001, 10.0);
        assert!(d_area > d_delay);
        assert!((d_delay - 0.30).abs() < 1e-6, "delay-heavy picks min delay");
    }

    #[test]
    fn single_sample_curve_is_flat() {
        let c = AreaDelayCurve::from_samples(&[(0.4, 1000.0)]);
        assert_eq!(c.area_at(0.1), 1000.0);
        assert_eq!(c.area_at(0.8), 1000.0);
        assert_eq!(c.scalarized_optimum(0.5, 0.5, 0.001, 10.0), (1000.0, 0.4));
    }

    #[test]
    fn two_sample_curve_is_linear() {
        let c = AreaDelayCurve::from_samples(&[(0.3, 100.0), (0.5, 50.0)]);
        assert!((c.area_at(0.4) - 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_samples_panic() {
        AreaDelayCurve::from_samples(&[]);
    }
}
