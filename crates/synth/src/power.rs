//! Switching-power estimation (paper future-work extension).
//!
//! The paper leaves power as future work because of simulation cost; here a
//! cheap static estimate is provided so the environment can optionally
//! expose a third objective: signal probabilities are propagated through
//! the netlist assuming input independence, per-net transition densities
//! `α = 2·p·(1-p)` follow, and dynamic power is
//! `P = Σ_nets α · C_net · V² · f` (fF × V² × GHz = µW).

use crate::sta;
use netlist::{Library, Netlist};

/// Propagates signal probabilities (P[net = 1]) assuming independent,
/// uniformly random primary inputs.
pub fn signal_probabilities(nl: &Netlist) -> Vec<f64> {
    use netlist::CellType::*;
    let mut p = vec![0.5f64; nl.num_nets()];
    for gid in nl.topo_order() {
        let g = nl.gate(gid);
        let i: Vec<f64> = g.inputs().iter().map(|&n| p[n.index()]).collect();
        let out = match g.kind.cell_type {
            Inv => 1.0 - i[0],
            Buf => i[0],
            Nand2 => 1.0 - i[0] * i[1],
            Nor2 => (1.0 - i[0]) * (1.0 - i[1]),
            And2 => i[0] * i[1],
            Or2 => 1.0 - (1.0 - i[0]) * (1.0 - i[1]),
            Xor2 => i[0] + i[1] - 2.0 * i[0] * i[1],
            Xnor2 => 1.0 - (i[0] + i[1] - 2.0 * i[0] * i[1]),
            Aoi21 => (1.0 - i[0] * i[1]) * (1.0 - i[2]),
            Oai21 => 1.0 - (1.0 - (1.0 - i[0]) * (1.0 - i[1])) * i[2],
        };
        p[g.output().index()] = out;
    }
    p
}

/// Estimated dynamic power in µW at the given supply voltage (V) and clock
/// frequency (GHz).
pub fn dynamic_power(nl: &Netlist, lib: &Library, voltage: f64, freq_ghz: f64) -> f64 {
    let probs = signal_probabilities(nl);
    let loads = sta::net_loads(nl, lib);
    probs
        .iter()
        .zip(&loads)
        .map(|(&p, &c)| 2.0 * p * (1.0 - p) * c * voltage * voltage * freq_ghz)
        .sum()
}

/// Dynamic power with conventional defaults (1.1 V, 1 GHz).
pub fn estimate(nl: &Netlist, lib: &Library) -> f64 {
    dynamic_power(nl, lib, 1.1, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{adder, CellType};
    use prefix_graph::structures;

    #[test]
    fn probability_propagation_basics() {
        let mut nl = Netlist::new("p");
        let a = nl.add_input();
        let b = nl.add_input();
        let nand = nl.add_gate(CellType::Nand2, &[a, b]);
        let xor = nl.add_gate(CellType::Xor2, &[a, b]);
        nl.mark_output(nand);
        nl.mark_output(xor);
        let p = signal_probabilities(&nl);
        assert!((p[nand.index()] - 0.75).abs() < 1e-12);
        assert!((p[xor.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let nl = adder::generate(&structures::kogge_stone(32));
        for p in signal_probabilities(&nl) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn bigger_adders_burn_more_power() {
        let lib = Library::nangate45();
        let small = adder::generate(&structures::brent_kung(16));
        let big = adder::generate(&structures::kogge_stone(16));
        assert!(estimate(&big, &lib) > estimate(&small, &lib));
    }

    #[test]
    fn power_scales_with_voltage_squared() {
        let lib = Library::nangate45();
        let nl = adder::generate(&structures::sklansky(8));
        let p1 = dynamic_power(&nl, &lib, 1.0, 1.0);
        let p2 = dynamic_power(&nl, &lib, 2.0, 1.0);
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }
}
