//! Static timing analysis.
//!
//! Forward-propagates arrival times and backward-propagates required times
//! over the netlist DAG using the library's linear delay model
//! `d_arc = intrinsic + pin_offset + R_drive · C_load`, where a net's load
//! is the sum of its sink pin capacitances, a fanout-proportional wire
//! capacitance, and the external output load for primary outputs.
//!
//! The capacitive-loading feedback is the effect the paper identifies as the
//! reason analytical prefix-graph metrics do not predict synthesized
//! quality (Section V-D): fanout costs load, load costs delay, and fixing it
//! (sizing/buffering) costs area.

use netlist::{ir::Driver, Library, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Timing constraints for analysis and optimization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingConstraints {
    /// Arrival time at each primary input, ns. Either one value for all
    /// inputs (uniform, the paper's training setting) or one per input.
    pub input_arrivals: Vec<f64>,
    /// Drive resistance of whatever feeds the primary inputs (ns/fF) —
    /// models the launching flip-flops of the paper's Fig. 5 setup.
    pub input_resistance: f64,
}

impl TimingConstraints {
    /// Uniform zero arrivals with a default input driver (the paper's
    /// training configuration: "uniform arrival and departure times").
    pub fn uniform(lib: &Library) -> Self {
        TimingConstraints {
            input_arrivals: vec![0.0],
            input_resistance: lib.resistance(netlist::CellType::Buf, netlist::Drive::new(4)),
        }
    }

    /// Nonuniform per-input arrival times (paper future-work extension).
    pub fn with_arrivals(lib: &Library, arrivals: Vec<f64>) -> Self {
        TimingConstraints {
            input_arrivals: arrivals,
            input_resistance: lib.resistance(netlist::CellType::Buf, netlist::Drive::new(4)),
        }
    }

    fn arrival_of(&self, input_idx: usize) -> f64 {
        if self.input_arrivals.len() == 1 {
            self.input_arrivals[0]
        } else {
            self.input_arrivals[input_idx]
        }
    }
}

/// The result of a timing analysis pass.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Arrival time per net, ns.
    pub arrival: Vec<f64>,
    /// Required time per net against the analysis target, ns.
    pub required: Vec<f64>,
    /// Capacitive load per net, fF.
    pub load: Vec<f64>,
    /// Critical (maximum) arrival over primary outputs, ns.
    pub critical_delay: f64,
    /// The delay target the required times were computed against.
    pub target: f64,
}

impl TimingReport {
    /// Slack of a net: `required - arrival`; negative on violating paths.
    #[inline]
    pub fn slack(&self, net: NetId) -> f64 {
        self.required[net.index()] - self.arrival[net.index()]
    }

    /// Worst slack over all nets.
    pub fn worst_slack(&self) -> f64 {
        self.required
            .iter()
            .zip(&self.arrival)
            .map(|(r, a)| r - a)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Computes every net's capacitive load.
pub fn net_loads(nl: &Netlist, lib: &Library) -> Vec<f64> {
    let mut load = vec![0.0f64; nl.num_nets()];
    let sinks = nl.sink_map();
    for (net_idx, net_sinks) in sinks.iter().enumerate() {
        let mut c = lib.wire_cap(net_sinks.len());
        for sink in net_sinks {
            match *sink {
                netlist::ir::Sink::Pin { gate, .. } => {
                    let k = nl.gate(gate).kind;
                    c += lib.input_cap(k.cell_type, k.drive);
                }
                netlist::ir::Sink::Output(_) => c += lib.output_load(),
            }
        }
        load[net_idx] = c;
    }
    load
}

/// Runs full static timing analysis against a delay `target`.
///
/// The target only affects required times (and hence slacks); arrival times
/// and the critical delay are target-independent.
pub fn analyze(nl: &Netlist, lib: &Library, cons: &TimingConstraints, target: f64) -> TimingReport {
    let load = net_loads(nl, lib);
    let mut arrival = vec![0.0f64; nl.num_nets()];
    // Primary inputs: constraint arrival plus the input driver charging the
    // net's load.
    for (idx, &net) in nl.inputs().iter().enumerate() {
        arrival[net.index()] = cons.arrival_of(idx) + cons.input_resistance * load[net.index()];
    }
    let order = nl.topo_order();
    for &gid in &order {
        let gate = nl.gate(gid);
        let k = gate.kind;
        let out = gate.output();
        let mut worst = f64::NEG_INFINITY;
        for (pin, &in_net) in gate.inputs().iter().enumerate() {
            let d = lib.arc_delay(k.cell_type, k.drive, pin, load[out.index()]);
            worst = worst.max(arrival[in_net.index()] + d);
        }
        arrival[out.index()] = worst;
    }
    let critical_delay = nl
        .outputs()
        .iter()
        .map(|&po| arrival[po.index()])
        .fold(0.0f64, f64::max);
    // Backward pass: required times.
    let mut required = vec![f64::INFINITY; nl.num_nets()];
    for &po in nl.outputs() {
        required[po.index()] = required[po.index()].min(target);
    }
    for &gid in order.iter().rev() {
        let gate = nl.gate(gid);
        let k = gate.kind;
        let out_req = required[gate.output().index()];
        for (pin, &in_net) in gate.inputs().iter().enumerate() {
            let d = lib.arc_delay(k.cell_type, k.drive, pin, load[gate.output().index()]);
            let r = out_req - d;
            if r < required[in_net.index()] {
                required[in_net.index()] = r;
            }
        }
    }
    // Nets with no sinks keep infinite required time; clamp for tidiness.
    for r in &mut required {
        if !r.is_finite() {
            *r = target;
        }
    }
    TimingReport {
        arrival,
        required,
        load,
        critical_delay,
        target,
    }
}

/// Traces one critical path from the worst primary output back to an input,
/// returning the gate ids along it (output-side first).
pub fn critical_path(nl: &Netlist, lib: &Library, report: &TimingReport) -> Vec<netlist::GateId> {
    let mut path = Vec::new();
    let Some(&worst_po) = nl
        .outputs()
        .iter()
        .max_by(|&&a, &&b| report.arrival[a.index()].total_cmp(&report.arrival[b.index()]))
    else {
        return path;
    };
    let mut net = worst_po;
    while let Driver::Gate(gid) = nl.driver(net) {
        path.push(gid);
        let gate = nl.gate(gid);
        let k = gate.kind;
        let out_load = report.load[gate.output().index()];
        // Find the input pin that set the arrival.
        let (_, worst_in) = gate
            .inputs()
            .iter()
            .enumerate()
            .map(|(pin, &in_net)| {
                let d = lib.arc_delay(k.cell_type, k.drive, pin, out_load);
                (report.arrival[in_net.index()] + d, in_net)
            })
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .expect("gate has inputs");
        net = worst_in;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{adder, CellType, Drive};
    use prefix_graph::structures;

    fn lib() -> Library {
        Library::nangate45()
    }

    #[test]
    fn inverter_chain_delay_accumulates() {
        let lib = lib();
        let mut nl = Netlist::new("chain");
        let a = nl.add_input();
        let mut x = a;
        for _ in 0..8 {
            x = nl.add_gate(CellType::Inv, &[x]);
        }
        nl.mark_output(x);
        let r = analyze(&nl, &lib, &TimingConstraints::uniform(&lib), 1.0);
        // 8 stages, each at least the intrinsic delay.
        assert!(r.critical_delay > 8.0 * lib.intrinsic(CellType::Inv, Drive::X1));
        assert!(
            r.critical_delay < 0.5,
            "chain absurdly slow: {}",
            r.critical_delay
        );
    }

    #[test]
    fn fanout_costs_delay() {
        let lib = lib();
        let build = |fanout: usize| {
            let mut nl = Netlist::new("f");
            let a = nl.add_input();
            let x = nl.add_gate(CellType::Inv, &[a]);
            for _ in 0..fanout {
                let y = nl.add_gate(CellType::Inv, &[x]);
                nl.mark_output(y);
            }
            nl
        };
        let cons = TimingConstraints::uniform(&lib);
        let d2 = analyze(&build(2), &lib, &cons, 1.0).critical_delay;
        let d16 = analyze(&build(16), &lib, &cons, 1.0).critical_delay;
        assert!(d16 > d2 * 1.5, "fanout 16 ({d16}) vs 2 ({d2})");
    }

    #[test]
    fn upsizing_driver_reduces_delay() {
        let lib = lib();
        let mut nl = Netlist::new("s");
        let a = nl.add_input();
        let x = nl.add_gate(CellType::Nand2, &[a, a]);
        for _ in 0..8 {
            let y = nl.add_gate(CellType::Inv, &[x]);
            nl.mark_output(y);
        }
        let cons = TimingConstraints::uniform(&lib);
        let before = analyze(&nl, &lib, &cons, 1.0).critical_delay;
        let nand = nl
            .gates()
            .find(|(_, g)| g.kind.cell_type == CellType::Nand2)
            .map(|(id, _)| id)
            .unwrap();
        nl.resize(nand, Drive::new(8));
        let after = analyze(&nl, &lib, &cons, 1.0).critical_delay;
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn slack_consistency() {
        let lib = lib();
        let nl = adder::generate(&structures::sklansky(16));
        let cons = TimingConstraints::uniform(&lib);
        let r = analyze(&nl, &lib, &cons, 0.4);
        // Worst slack equals target minus critical delay (within rounding),
        // because the critical PO's required time is exactly the target.
        let expect = 0.4 - r.critical_delay;
        assert!((r.worst_slack() - expect).abs() < 1e-9);
    }

    #[test]
    fn critical_path_is_connected_and_nonempty() {
        let lib = lib();
        let nl = adder::generate(&structures::brent_kung(16));
        let cons = TimingConstraints::uniform(&lib);
        let r = analyze(&nl, &lib, &cons, 0.4);
        let path = critical_path(&nl, &lib, &r);
        assert!(!path.is_empty());
        // Consecutive gates must be connected driver→sink.
        for w in path.windows(2) {
            let (down, up) = (w[0], w[1]);
            let up_out = nl.gate(up).output();
            assert!(nl.gate(down).inputs().contains(&up_out));
        }
    }

    #[test]
    fn deeper_structure_has_longer_delay() {
        let lib = lib();
        let cons = TimingConstraints::uniform(&lib);
        let ripple = adder::generate(&prefix_graph::PrefixGraph::ripple(16));
        let sk = adder::generate(&structures::sklansky(16));
        let dr = analyze(&ripple, &lib, &cons, 1.0).critical_delay;
        let ds = analyze(&sk, &lib, &cons, 1.0).critical_delay;
        assert!(dr > ds, "ripple {dr} should be slower than sklansky {ds}");
    }

    #[test]
    fn nonuniform_arrivals_shift_critical_delay() {
        let lib = lib();
        let nl = adder::generate(&structures::kogge_stone(8));
        let uniform = analyze(&nl, &lib, &TimingConstraints::uniform(&lib), 1.0);
        let late_msb = TimingConstraints::with_arrivals(
            &lib,
            (0..16)
                .map(|i| if i == 7 || i == 15 { 0.2 } else { 0.0 })
                .collect(),
        );
        let shifted = analyze(&nl, &lib, &late_msb, 1.0);
        assert!(shifted.critical_delay >= uniform.critical_delay + 0.1);
    }
}
