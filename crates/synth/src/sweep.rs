//! Multi-target synthesis sweeps (the paper's Fig. 3 sampling).
//!
//! Each prefix-graph state is synthesized at a small number of delay targets
//! (4 in the paper) spanning relaxed to aggressive, and the achieved
//! `(delay, area)` points are PCHIP-interpolated into an
//! [`AreaDelayCurve`]. Targets are set as fractions of the state's
//! unoptimized (all-X1) critical delay, so the sweep adapts to each graph.

use crate::curve::AreaDelayCurve;
use crate::optimizer::{optimize, OptimizerConfig};
use crate::sta::{self, TimingConstraints};
use netlist::{adder, Library, Netlist};
use prefix_graph::PrefixGraph;
use serde::{Deserialize, Serialize};

/// Configuration of a synthesis sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Delay targets as fractions of the unoptimized critical delay.
    /// The paper samples 4 points per state.
    pub target_fractions: Vec<f64>,
    /// Optimizer effort per target.
    pub optimizer: OptimizerConfig,
    /// Optional nonuniform timing constraints (defaults to uniform).
    pub constraints: Option<TimingConstraints>,
}

impl SweepConfig {
    /// The paper's configuration: 4 targets, OpenPhySyn-level effort.
    pub fn paper() -> Self {
        SweepConfig {
            target_fractions: vec![0.30, 0.50, 0.75, 1.05],
            optimizer: OptimizerConfig::openphysyn(),
            constraints: None,
        }
    }

    /// Reduced effort for tests and fast RL iterations.
    pub fn fast() -> Self {
        SweepConfig {
            target_fractions: vec![0.30, 0.50, 0.75, 1.05],
            optimizer: OptimizerConfig::fast(),
            constraints: None,
        }
    }

    /// Commercial-tool effort (used for the Fig. 5 transfer experiments).
    pub fn commercial() -> Self {
        SweepConfig {
            target_fractions: vec![0.25, 0.40, 0.60, 0.85, 1.05],
            optimizer: OptimizerConfig::commercial(),
            constraints: None,
        }
    }
}

/// Sweeps an existing netlist across the configured delay targets.
pub fn sweep_netlist(nl: &Netlist, lib: &Library, cfg: &SweepConfig) -> AreaDelayCurve {
    let cons = cfg
        .constraints
        .clone()
        .unwrap_or_else(|| TimingConstraints::uniform(lib));
    let relaxed = sta::analyze(nl, lib, &cons, f64::MAX / 4.0).critical_delay;
    let mut samples = Vec::with_capacity(cfg.target_fractions.len());
    for &frac in &cfg.target_fractions {
        let out = optimize(nl, lib, &cons, relaxed * frac, &cfg.optimizer);
        samples.push((out.delay, out.area));
    }
    AreaDelayCurve::from_samples(&samples)
}

/// Emits a netlist for `graph` through `emit` and sweeps it — the sweep
/// generalized over the circuit family (adder, OR-prefix, incrementer, or
/// any other prefix computation's generator).
pub fn sweep_with(
    graph: &PrefixGraph,
    emit: impl Fn(&PrefixGraph) -> Netlist,
    lib: &Library,
    cfg: &SweepConfig,
) -> AreaDelayCurve {
    sweep_netlist(&emit(graph), lib, cfg)
}

/// Generates the adder netlist for `graph` and sweeps it — the full state
/// evaluation of the paper's PrefixRL environment (Fig. 1's "Circuit
/// Synthesis").
pub fn sweep_graph(graph: &PrefixGraph, lib: &Library, cfg: &SweepConfig) -> AreaDelayCurve {
    sweep_with(graph, adder::generate, lib, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefix_graph::structures;

    #[test]
    fn sweep_produces_usable_curve() {
        let lib = Library::nangate45();
        let curve = sweep_graph(&structures::sklansky(16), &lib, &SweepConfig::fast());
        assert!(curve.min_delay() > 0.0);
        assert!(curve.max_delay() > curve.min_delay());
        assert!(curve.area_at(curve.min_delay()) >= curve.area_at(curve.max_delay()));
    }

    #[test]
    fn structures_order_sanely_at_tight_delay() {
        // At the fast end, Kogge-Stone (shallow, low fanout) must achieve
        // lower delay than ripple (deep chain).
        let lib = Library::nangate45();
        let cfg = SweepConfig::fast();
        let ks = sweep_graph(&structures::kogge_stone(16), &lib, &cfg);
        let rp = sweep_graph(&prefix_graph::PrefixGraph::ripple(16), &lib, &cfg);
        assert!(ks.min_delay() < rp.min_delay());
    }

    #[test]
    fn tech8_curves_are_smaller_and_faster() {
        let g = structures::brent_kung(16);
        let n45 = sweep_graph(&g, &Library::nangate45(), &SweepConfig::fast());
        let t8 = sweep_graph(&g, &Library::tech8(), &SweepConfig::fast());
        assert!(t8.min_delay() < n45.min_delay());
        assert!(t8.area_at(t8.max_delay()) < n45.area_at(n45.max_delay()) / 20.0);
    }

    #[test]
    fn paper_config_has_four_targets() {
        assert_eq!(SweepConfig::paper().target_fractions.len(), 4);
    }

    #[test]
    fn sweep_with_generalizes_over_emitters() {
        let lib = Library::nangate45();
        let g = structures::sklansky(8);
        let cfg = SweepConfig::fast();
        // The adder path is exactly sweep_with over the adder generator.
        let direct = sweep_graph(&g, &lib, &cfg);
        let via = sweep_with(&g, adder::generate, &lib, &cfg);
        assert_eq!(direct.min_delay(), via.min_delay());
        // A different emitter yields a genuinely different curve: the
        // OR-prefix circuit is a fraction of the adder's area.
        let or = sweep_with(&g, netlist::prefix_or::generate, &lib, &cfg);
        assert!(or.area_at(or.max_delay()) < direct.area_at(direct.max_delay()) / 2.0);
    }
}
