//! Shared support for the figure/table harnesses in `benches/`.
//!
//! Every harness honours `PREFIXRL_SCALE`:
//!
//! - `quick` (default): CPU-sized widths and training budgets that finish in
//!   minutes and preserve the qualitative shape of each figure;
//! - `paper`: the paper's widths (32b/64b) and budgets — sized for a long
//!   unattended run.
//!
//! Results print as aligned tables and are also written as JSON under
//! `target/prefixrl-results/` for EXPERIMENTS.md bookkeeping.

use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::pareto::ParetoFront;
use std::io::Write as _;
use std::path::PathBuf;

/// Experiment scale selected by `PREFIXRL_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale reproduction preserving qualitative shape.
    Quick,
    /// The paper's full problem sizes and budgets.
    Paper,
}

/// Reads the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("PREFIXRL_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        _ => Scale::Quick,
    }
}

/// Where JSON artifacts are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/prefixrl-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON artifact.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create artifact");
    f.write_all(serde_json::to_string_pretty(value).unwrap().as_bytes())
        .expect("write artifact");
    println!("[artifact] {}", path.display());
}

/// One measured point of the actor-scaling benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Actor thread count.
    pub actors: usize,
    /// Whether greedy forwards were batched through the cross-actor
    /// inference broker (one fused forward per service cycle) or run
    /// per-actor.
    pub broker: bool,
    /// Environments stepped in lockstep per actor.
    pub envs_per_actor: usize,
    /// Environment steps executed.
    pub steps: u64,
    /// Training throughput (each environment step is one policy
    /// decision, so this is also decisions/sec).
    pub steps_per_sec: f64,
    /// Shared evaluation-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Distinct designs harvested.
    pub designs: usize,
}

/// Dumps `BENCH_scaling.json` at the workspace root: steps/sec and cache
/// hit rate vs actor count, machine-readable so future changes can track
/// the performance trajectory against this file.
pub fn write_bench_scaling(widths: u16, rows: &[ScalingRow]) {
    let value = serde_json::json!({
        "benchmark": "train_async_actor_scaling",
        "n": widths,
        "rows": rows.iter().map(|r| serde_json::json!({
            "actors": r.actors,
            "broker": r.broker,
            "envs_per_actor": r.envs_per_actor,
            "steps": r.steps,
            "steps_per_sec": r.steps_per_sec,
            "decisions_per_sec": r.steps_per_sec,
            "cache_hit_rate": r.cache_hit_rate,
            "designs": r.designs,
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scaling.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_scaling.json");
    println!("[artifact] {}", path.display());
}

/// One measured point of the sweep-scaling benchmark: a full multi-agent
/// `Experiment` at a given concurrency.
#[derive(Clone, Copy, Debug)]
pub struct SweepRow {
    /// Agents trained (one per scalarization weight).
    pub agents: usize,
    /// Concurrent agent threads (the EvalService budget).
    pub concurrency: usize,
    /// Environment steps per agent.
    pub steps_per_agent: u64,
    /// Total training throughput across agents.
    pub steps_per_sec: f64,
    /// Shared evaluation-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Points on the merged Pareto front.
    pub merged_front: usize,
    /// Distinct designs across all agents.
    pub designs: usize,
}

/// Dumps `BENCH_sweep.json` at the workspace root: experiment-session
/// throughput and shared-cache hit rate vs concurrent agent count,
/// machine-readable so future changes can track the sweep fan-out path
/// against this file.
pub fn write_bench_sweep(n: u16, rows: &[SweepRow]) {
    let value = serde_json::json!({
        "benchmark": "experiment_sweep_scaling",
        "n": n,
        "rows": rows.iter().map(|r| serde_json::json!({
            "agents": r.agents,
            "concurrency": r.concurrency,
            "steps_per_agent": r.steps_per_agent,
            "steps_per_sec": r.steps_per_sec,
            "cache_hit_rate": r.cache_hit_rate,
            "merged_front": r.merged_front,
            "designs": r.designs,
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_sweep.json");
    println!("[artifact] {}", path.display());
}

/// One measured point of the `nn_throughput` harness: the tensor compute
/// engine at a given config and thread count.
#[derive(Clone, Debug)]
pub struct NnRow {
    /// Q-network config label (e.g. `small(16)`).
    pub config: String,
    /// `nn::compute` thread budget.
    pub threads: usize,
    /// Training-mode forward throughput (samples/sec).
    pub fwd_samples_per_sec: f64,
    /// Backward + optimizer-step throughput (samples/sec).
    pub bwd_samples_per_sec: f64,
    /// Immutable-inference throughput through `QInfer` (samples/sec).
    pub infer_samples_per_sec: f64,
    /// Fused frozen-snapshot inference throughput (samples/sec).
    pub fused_infer_samples_per_sec: f64,
    /// Forward throughput of the pre-PR naive conv stack measured in the
    /// same process (samples/sec; thread-independent — the old path was
    /// single-threaded).
    pub baseline_fwd_samples_per_sec: f64,
}

/// One measured point of the raw-GEMM kernel benchmark: the SIMD lane
/// tier against the scalar engine and the naive reference at one shape
/// and thread count.
#[derive(Clone, Copy, Debug)]
pub struct GemmRow {
    /// Output rows (the im2col row-block height).
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// `nn::compute` worker threads.
    pub threads: usize,
    /// Naive reference kernel (`nn::compute::reference::gemm`) GFLOP/s.
    /// Zero for rows where re-measuring the (slow, thread-independent)
    /// reference was skipped.
    pub reference_gflops: f64,
    /// Blocked scalar engine GFLOP/s (`simd::set_enabled(false)`).
    pub scalar_gflops: f64,
    /// AVX lane tier GFLOP/s (`simd::set_enabled(true)`).
    pub simd_gflops: f64,
    /// Whether the SIMD and scalar results were bitwise identical at this
    /// shape and thread count (must always be true).
    pub bit_identical: bool,
}

/// Dumps `BENCH_nn.json` at the workspace root: compute-engine throughput
/// (forward / backward / inference / fused inference) per config and
/// thread count, against the pre-PR naive single-thread baseline, plus
/// raw-GEMM GFLOP/s rows for the SIMD lane tier vs the scalar engine vs
/// the naive reference.
pub fn write_bench_nn(batch: usize, rows: &[NnRow], gemm_rows: &[GemmRow]) {
    let value = serde_json::json!({
        "benchmark": "nn_throughput",
        "batch": batch,
        "simd_compiled": nn::simd::compiled(),
        "gemm_rows": gemm_rows.iter().map(|r| serde_json::json!({
            "m": r.m,
            "k": r.k,
            "n": r.n,
            "threads": r.threads,
            "reference_gflops": r.reference_gflops,
            "scalar_gflops": r.scalar_gflops,
            "simd_gflops": r.simd_gflops,
            "simd_speedup_vs_reference": if r.reference_gflops > 0.0 {
                r.simd_gflops / r.reference_gflops
            } else {
                0.0
            },
            "simd_speedup_vs_scalar": r.simd_gflops / r.scalar_gflops.max(1e-9),
            "bit_identical": r.bit_identical,
        })).collect::<Vec<_>>(),
        "rows": rows.iter().map(|r| serde_json::json!({
            "config": r.config,
            "threads": r.threads,
            "fwd_samples_per_sec": r.fwd_samples_per_sec,
            "bwd_samples_per_sec": r.bwd_samples_per_sec,
            "infer_samples_per_sec": r.infer_samples_per_sec,
            "fused_infer_samples_per_sec": r.fused_infer_samples_per_sec,
            "baseline_fwd_samples_per_sec": r.baseline_fwd_samples_per_sec,
            "fwd_speedup_vs_baseline":
                r.fwd_samples_per_sec / r.baseline_fwd_samples_per_sec.max(1e-9),
            "fused_speedup_vs_baseline":
                r.fused_infer_samples_per_sec / r.baseline_fwd_samples_per_sec.max(1e-9),
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_nn.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_nn.json");
    println!("[artifact] {}", path.display());
}

/// One measured point of the `task_throughput` harness: evaluation
/// throughput for a `(task, backend)` pair.
#[derive(Clone, Debug)]
pub struct TaskRow {
    /// Circuit task id (`adder`, `prefix-or`, `incrementer`).
    pub task: String,
    /// Objective backend id (`analytical`, `synthesis`, `synthesis-power`).
    pub backend: String,
    /// Distinct graphs in the evaluation pool.
    pub graphs: usize,
    /// Evaluations executed (pool × rounds).
    pub evals: u64,
    /// Cold (uncached) evaluation throughput.
    pub evals_per_sec: f64,
    /// Throughput through the sharded cache once warm.
    pub cached_evals_per_sec: f64,
}

/// Dumps `BENCH_tasks.json` at the workspace root: evaluation throughput
/// per `(task, backend)` pair, cold and cache-warm, machine-readable so
/// future changes can track the pluggable-workload path against this file.
pub fn write_bench_tasks(n: u16, rows: &[TaskRow]) {
    let value = serde_json::json!({
        "benchmark": "task_backend_eval_throughput",
        "n": n,
        "rows": rows.iter().map(|r| serde_json::json!({
            "task": r.task,
            "backend": r.backend,
            "graphs": r.graphs,
            "evals": r.evals,
            "evals_per_sec": r.evals_per_sec,
            "cached_evals_per_sec": r.cached_evals_per_sec,
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tasks.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_tasks.json");
    println!("[artifact] {}", path.display());
}

/// One measured point of the `serve_throughput` harness: the resident
/// service under a burst of submitted jobs.
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// Job worker threads.
    pub workers: usize,
    /// Jobs submitted in the burst.
    pub jobs: usize,
    /// Scalarization weights (agents) per job.
    pub weights_per_job: usize,
    /// Environment steps per agent.
    pub steps_per_agent: u64,
    /// Finished jobs per wall-clock second (submit of the first to
    /// completion of the last).
    pub jobs_per_sec: f64,
    /// Mean seconds from submit to the job's first streamed event.
    pub submit_to_first_event_sec_mean: f64,
    /// Worst-case submit-to-first-event latency in the burst.
    pub submit_to_first_event_sec_max: f64,
    /// Shared-store hit rate across *this row's* burst, computed from the
    /// hit/miss counter deltas between the burst's start and its drain —
    /// not the cumulative rate of whatever ran before on the stack.
    pub cache_hit_rate: f64,
    /// Cache hits this burst (the delta's numerator context).
    pub cache_hits: u64,
    /// Cache misses this burst.
    pub cache_misses: u64,
}

/// Dumps `BENCH_serve.json` at the workspace root: resident-service job
/// throughput and submit-to-first-event latency vs worker count,
/// machine-readable so future changes can track the serve path against
/// this file.
pub fn write_bench_serve(n: u16, rows: &[ServeRow]) {
    let value = serde_json::json!({
        "benchmark": "serve_job_throughput",
        "n": n,
        "rows": rows.iter().map(|r| serde_json::json!({
            "workers": r.workers,
            "jobs": r.jobs,
            "weights_per_job": r.weights_per_job,
            "steps_per_agent": r.steps_per_agent,
            "jobs_per_sec": r.jobs_per_sec,
            "submit_to_first_event_sec_mean": r.submit_to_first_event_sec_mean,
            "submit_to_first_event_sec_max": r.submit_to_first_event_sec_max,
            "cache_hit_rate": r.cache_hit_rate,
            "cache_hits": r.cache_hits,
            "cache_misses": r.cache_misses,
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_serve.json");
    println!("[artifact] {}", path.display());
}

/// One measured point of the `query_throughput` harness: the frontier
/// read tier (DESIGN.md §15) under concurrent lookup load.
#[derive(Clone, Debug)]
pub struct QueryRow {
    /// What was measured: `in_process_best_at_delay`,
    /// `in_process_best_at_weight`, `in_process_under_writer`,
    /// `wire_query`, or `wire_query_batch`.
    pub scenario: String,
    /// Concurrent reader threads (wire scenarios: one connection each).
    pub readers: usize,
    /// Total queries answered across all readers.
    pub queries: u64,
    /// Queries per wall-clock second, summed over readers.
    pub qps: f64,
    /// Worst single-query latency observed, µs (0 when not tracked) —
    /// the "reads never block on a merge" evidence in the writer
    /// scenario.
    pub max_latency_us: f64,
}

/// Dumps `BENCH_query.json` at the workspace root: snapshot lookup
/// throughput (in-process and wire-level) vs reader threads, plus reader
/// tail latency under a concurrent fsyncing writer — machine-readable so
/// the ≥1M lookups/sec read-tier budget is tracked against this file.
pub fn write_bench_query(points_in_front: usize, rows: &[QueryRow]) {
    let value = serde_json::json!({
        "benchmark": "frontier_query_throughput",
        "points_in_front": points_in_front,
        "rows": rows.iter().map(|r| serde_json::json!({
            "scenario": r.scenario.clone(),
            "readers": r.readers,
            "queries": r.queries,
            "qps": r.qps,
            "max_latency_us": r.max_latency_us,
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_query.json");
    println!("[artifact] {}", path.display());
}

/// One measured point of the `cluster_throughput` harness: the sharded
/// serve cluster (DESIGN.md §16) under merge, routed-query, and failover
/// load.
#[derive(Clone, Debug)]
pub struct ClusterRow {
    /// What was measured: `merge_throughput`, `router_query_batch`,
    /// `single_node_query_batch`, `single_node_wire_query`, or
    /// `failover_read`.
    pub scenario: String,
    /// Serve shards participating.
    pub shards: usize,
    /// Operations completed (merges, queries, or failover reads).
    pub ops: u64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Worst single-operation latency observed, µs (0 when not tracked).
    pub max_latency_us: f64,
    /// Operations that failed (must be 0 — failover reads included).
    pub failures: u64,
}

/// Dumps `BENCH_cluster.json` at the workspace root: aggregate merge
/// throughput vs shard count, router scatter/gather query rate vs the
/// single-node wire rate, and primary-kill failover read latency —
/// machine-readable so the ≥1.7× @ 3 shards merge-scaling budget and the
/// <1 s zero-failure failover budget are tracked against this file.
pub fn write_bench_cluster(n: u16, rows: &[ClusterRow], notes: &str) {
    let value = serde_json::json!({
        "benchmark": "cluster_throughput",
        "n": n,
        "notes": notes,
        "rows": rows.iter().map(|r| serde_json::json!({
            "scenario": r.scenario.clone(),
            "shards": r.shards,
            "ops": r.ops,
            "ops_per_sec": r.ops_per_sec,
            "max_latency_us": r.max_latency_us,
            "failures": r.failures,
        })).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json");
    std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
        .expect("write BENCH_cluster.json");
    println!("[artifact] {}", path.display());
}

/// Prints a named series of (area, delay) points as the paper's figures
/// tabulate them, in increasing delay order.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("\n== {name} ==");
    println!("{:>12} {:>12}", "area", "delay");
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (area, delay) in sorted {
        println!("{area:>12.2} {delay:>12.4}");
    }
}

/// Prints a Pareto front with labels.
pub fn print_front<T: std::fmt::Display>(name: &str, front: &ParetoFront<T>) {
    println!("\n== {name} (Pareto front, {} points) ==", front.len());
    println!("{:>12} {:>12}  design", "area", "delay");
    for (p, label) in front.iter() {
        println!("{:>12.2} {:>12.4}  {label}", p.area, p.delay);
    }
}

/// Serializes a front for artifacts.
pub fn front_json<T: std::fmt::Display>(front: &ParetoFront<T>) -> serde_json::Value {
    serde_json::Value::Array(
        front
            .iter()
            .map(|(p, label)| {
                serde_json::json!({
                    "area": p.area,
                    "delay": p.delay,
                    "label": label.to_string(),
                })
            })
            .collect(),
    )
}

/// Compares two fronts with the paper's headline metric.
pub fn report_saving<A: std::fmt::Display, B: std::fmt::Display>(
    ours_name: &str,
    ours: &ParetoFront<A>,
    base_name: &str,
    base: &ParetoFront<B>,
) {
    match ours.max_area_saving_vs(base) {
        Some((saving, delay)) => println!(
            "{ours_name} vs {base_name}: max area saving {saving:.1}% at delay {delay:.4}; dominates = {}",
            ours.pareto_dominates(base)
        ),
        None => println!("{ours_name} vs {base_name}: no overlapping delay range"),
    }
}

/// Collects points from a front.
pub fn front_points<T>(front: &ParetoFront<T>) -> Vec<(f64, f64)> {
    front.points().iter().map(|p| (p.area, p.delay)).collect()
}

/// Inserts a labelled point set into a new front.
pub fn front_of(points: &[(ObjectivePoint, String)]) -> ParetoFront<String> {
    points.iter().cloned().collect()
}

/// Selects up to `limit` front members spread evenly across the delay range
/// (taking only the fastest members would drop the small-area end).
pub fn spread_front<T: Clone>(front: &ParetoFront<T>, limit: usize) -> Vec<(ObjectivePoint, T)> {
    let all: Vec<(ObjectivePoint, T)> = front.iter().map(|(p, t)| (*p, t.clone())).collect();
    if all.len() <= limit {
        return all;
    }
    (0..limit)
        .map(|i| {
            let idx = i * (all.len() - 1) / (limit - 1);
            all[idx].clone()
        })
        .collect()
}
