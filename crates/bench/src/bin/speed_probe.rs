use prefixrl_core::env::EnvConfig;
use prefixrl_core::prelude::*;
use rl::{QInfer, QNetwork};
use std::time::Instant;

fn main() {
    for (n, c, b, batch) in [
        (8u16, 12usize, 1usize, 12usize),
        (8, 24, 2, 32),
        (16, 12, 1, 12),
        (16, 24, 2, 32),
        (32, 24, 2, 32),
    ] {
        let mut q = PrefixQNet::new(&QNetConfig {
            n,
            channels: c,
            blocks: b,
            lr: 1e-3,
            seed: 0,
        });
        let env = PrefixEnv::new(
            EnvConfig::analytical(n),
            std::sync::Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let states: Vec<&[f32]> = (0..batch).map(|_| f.as_slice()).collect();
        let t = Instant::now();
        let iters = 20;
        for _ in 0..iters {
            let _ = q.forward(&states, true);
            let grad = vec![vec![[0.1f32; 2]; q.num_actions()]; batch];
            q.apply_gradient(&grad);
        }
        println!(
            "n={n} C={c} B={b} batch={batch}: {:.1} ms/train-step",
            t.elapsed().as_secs_f64() * 1000.0 / iters as f64
        );
    }
}
