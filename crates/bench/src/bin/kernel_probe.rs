//! Kernel-level probe: GFLOP/s of the three `nn::compute` GEMM variants
//! against their preserved scalar references, on the shapes the Q-network
//! actually hits (small/tiny configs plus the paper-scale 256-channel
//! block conv). A quick sanity check when touching kernel code — the
//! end-to-end picture lives in the `nn_throughput` bench.

use nn::compute::{self, reference};
use std::time::Instant;

fn time(mut f: impl FnMut(), min_s: f64) -> f64 {
    f();
    let t0 = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        let e = t0.elapsed().as_secs_f64();
        if e > min_s && iters >= 3 {
            return e / iters as f64;
        }
    }
}

fn main() {
    // (m, k, n) as seen by `gemm` in conv forwards; the transposed
    // variants reinterpret the same volumes.
    for (m, k, n) in [
        (12usize, 300usize, 256usize), // small(16) 5×5 block conv
        (12, 108, 256),                // small(16) 3×3 stem
        (8, 200, 64),                  // tiny(8) 5×5 block conv
        (4, 12, 256),                  // small(16) 1×1 output head
        (256, 6400, 4096),             // paper(64) 5×5 block conv
    ] {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect();
        let bt: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.1).sin()).collect();
        let at: Vec<f32> = (0..k * m).map(|i| (i as f32 * 0.2).sin()).collect();
        let mut c = vec![0.0f32; m * n];
        let flop = (2 * m * k * n) as f64;
        let report = |name: &str, t_ref: f64, t_new: f64| {
            println!(
                "{name:<8} {m}x{k}x{n}: ref {:6.2} GF/s  new {:6.2} GF/s  ({:.2}x)",
                flop / t_ref / 1e9,
                flop / t_new / 1e9,
                t_ref / t_new
            );
        };
        let t_ref = time(
            || {
                c.fill(0.0);
                reference::gemm(m, k, n, &a, &b, &mut c);
            },
            0.3,
        );
        let t_new = time(
            || {
                c.fill(0.0);
                compute::gemm(m, k, n, &a, &b, &mut c);
            },
            0.3,
        );
        report("gemm", t_ref, t_new);
        let t_ref = time(
            || {
                c.fill(0.0);
                reference::gemm_a_bt(m, k, n, &a, &bt, &mut c);
            },
            0.3,
        );
        let t_new = time(
            || {
                c.fill(0.0);
                compute::gemm_a_bt(m, k, n, &a, &bt, &mut c);
            },
            0.3,
        );
        report("gemm_abt", t_ref, t_new);
        let t_ref = time(
            || {
                c.fill(0.0);
                reference::gemm_at_b(m, k, n, &at, &b, &mut c);
            },
            0.3,
        );
        let t_new = time(
            || {
                c.fill(0.0);
                compute::gemm_at_b(m, k, n, &at, &b, &mut c);
            },
            0.3,
        );
        report("gemm_atb", t_ref, t_new);
        std::hint::black_box(&c);
    }
}
