//! Fig. 4a — area-delay Pareto curves, open flow (OpenPhySyn stand-in +
//! Nangate45-inspired library): PrefixRL vs Sklansky / Kogge-Stone /
//! Brent-Kung / SA \[14\] / PS \[15\].
//!
//! Quick scale trains 8-bit agents in minutes; `PREFIXRL_SCALE=paper` runs
//! the 32-bit setting with 15 weights.

use baselines::pruned::{pruned_search, PrunedSearchConfig};
use baselines::sa::{sa_frontier, SaConfig};
use netlist::Library;
use prefix_graph::{structures, PrefixGraph};
use prefixrl_bench as support;
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::frontier::sweep_front;
use prefixrl_core::pareto::ParetoFront;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;
use synth::sweep::SweepConfig;

fn main() {
    let (n, weights, steps, targets, pool): (u16, Vec<f64>, u64, usize, usize) =
        match support::scale() {
            support::Scale::Quick => (8, vec![0.2, 0.45, 0.7, 0.9], 1200, 8, 60),
            support::Scale::Paper => (
                32,
                (0..15).map(|i| 0.10 + 0.89 * i as f64 / 14.0).collect(),
                500_000,
                40,
                1100,
            ),
        };
    let lib = Library::nangate45();
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    println!(
        "Fig. 4a reproduction: {n}-bit adders, open flow ({})",
        lib.name()
    );

    // --- PrefixRL agents, synthesis in the loop -------------------------
    let mut rl_designs: Vec<(String, PrefixGraph)> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let evaluator = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
            Adder,
            lib.clone(),
            SweepConfig::fast(),
            w,
        )));
        let mut cfg = AgentConfig::small(n, w as f32, steps);
        cfg.env = prefixrl_core::env::EnvConfig::synthesis(n);
        cfg.seed = 100 + i as u64;
        let result = TrainLoop::run(&cfg, evaluator.clone());
        println!(
            "  agent w_area={w:.2}: {} designs, cache hit rate {:.0}%",
            result.designs.len(),
            100.0 * evaluator.hit_rate()
        );
        for (k, (_, g)) in support::spread_front(&result.front(), 12)
            .iter()
            .enumerate()
        {
            rl_designs.push((format!("PrefixRL(w={w:.2})#{k}"), g.clone()));
        }
    }

    // --- Baselines -------------------------------------------------------
    let regulars: Vec<(String, PrefixGraph)> = [
        ("Sklansky", structures::sklansky as fn(u16) -> PrefixGraph),
        ("KoggeStone", structures::kogge_stone),
        ("BrentKung", structures::brent_kung),
    ]
    .iter()
    .map(|(name, ctor)| (name.to_string(), ctor(n)))
    .collect();
    let sa: Vec<(String, PrefixGraph)> = sa_frontier(
        n,
        &weights.iter().map(|w| 1.0 - w).collect::<Vec<_>>(),
        &SaConfig::default(),
        7,
    )
    .into_iter()
    .enumerate()
    .map(|(i, g)| (format!("SA#{i}"), g))
    .collect();
    let mut ps_cfg = match support::scale() {
        support::Scale::Quick => PrunedSearchConfig::fast(),
        support::Scale::Paper => PrunedSearchConfig::default(),
    };
    ps_cfg.pool_limit = pool;
    let ps: Vec<(String, PrefixGraph)> = pruned_search(n, &ps_cfg)
        .into_iter()
        .enumerate()
        .take(24) // synthesize a bounded PS subset
        .map(|(i, g)| (format!("PS#{i}"), g))
        .collect();

    // --- Synthesize everything at many delay targets and bin -------------
    let cfg = SweepConfig::paper();
    let fronts: Vec<(&str, ParetoFront<String>)> = vec![
        (
            "PrefixRL",
            sweep_front(&rl_designs, &lib, &cfg, targets, threads),
        ),
        (
            "Regular",
            sweep_front(&regulars, &lib, &cfg, targets, threads),
        ),
        ("SA", sweep_front(&sa, &lib, &cfg, targets, threads)),
        ("PS", sweep_front(&ps, &lib, &cfg, targets, threads)),
    ];
    for (name, front) in &fronts {
        support::print_front(name, front);
    }
    let rl = &fronts[0].1;
    for (name, front) in fronts.iter().skip(1) {
        support::report_saving("PrefixRL", rl, name, front);
    }
    support::write_json(
        "fig4a",
        &serde_json::json!({
            "n": n,
            "series": fronts.iter().map(|(name, f)| {
                serde_json::json!({"name": name, "front": support::front_json(f)})
            }).collect::<Vec<_>>(),
        }),
    );
}
