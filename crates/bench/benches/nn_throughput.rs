//! Tensor-compute-engine throughput: Q-network forward/backward/inference
//! samples/sec across `nn::compute` thread counts, against the pre-PR
//! naive single-thread conv path (preserved in `nn::compute::reference`),
//! plus raw-GEMM GFLOP/s for the SIMD lane tier vs the blocked scalar
//! engine vs the naive reference (with a bitwise SIMD/scalar identity
//! check at every thread count). Dumps `BENCH_nn.json` at the workspace
//! root.
//!
//! ```sh
//! cargo bench -p prefixrl-bench --bench nn_throughput
//! PREFIXRL_SCALE=paper cargo bench -p prefixrl-bench --bench nn_throughput
//! ```

use nn::compute::{self, reference, ThreadPool};
use nn::simd;
use prefixrl_bench as support;
use prefixrl_core::qnet::{PrefixQNet, QNetConfig};
use rand::prelude::*;
use rl::{QInfer, QNetwork};
use std::time::Instant;

/// Times `f` until `min_secs` of wall clock have accumulated (at least two
/// calls) and returns seconds per call.
fn time_per_call(mut f: impl FnMut(), min_secs: f64) -> f64 {
    f(); // warm-up (scratch arenas, caches)
    let t0 = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed >= min_secs && iters >= 2 {
            return elapsed / iters as f64;
        }
    }
}

/// The conv shapes a [`QNetConfig`] instantiates, in network order.
fn conv_shapes(cfg: &QNetConfig) -> Vec<(usize, usize, usize)> {
    let c = cfg.channels;
    let mut shapes = vec![(4, c, 3)];
    for _ in 0..cfg.blocks {
        shapes.push((c, c, 5));
        shapes.push((c, c, 5));
    }
    shapes.push((c, c, 1));
    shapes.push((c, 4, 1));
    shapes
}

/// Forward throughput of the pre-PR network path, single-threaded: every
/// convolution through the preserved naive im2col + scalar-GEMM oracle
/// (`nn::compute::reference`), interleaved with the same batch-norm /
/// LReLU / residual arithmetic the Fig. 2 body applies. This is the
/// baseline every engine row is compared to.
fn baseline_fwd_samples_per_sec(cfg: &QNetConfig, batch: usize, min_secs: f64) -> f64 {
    use nn::{BatchNorm2d, Layer, LeakyReLU};
    let n = cfg.n as usize;
    let mut rng = StdRng::seed_from_u64(7);
    let weights: Vec<(usize, usize, usize, Vec<f32>)> = conv_shapes(cfg)
        .into_iter()
        .map(|(in_c, out_c, k)| {
            let w: Vec<f32> = (0..out_c * in_c * k * k)
                .map(|_| rng.random::<f32>() * 0.2 - 0.1)
                .collect();
            (in_c, out_c, k, w)
        })
        .collect();
    let out_bias: Vec<f32> = vec![0.0; 4];
    // One BN after every conv except the output head; one activation after
    // every BN (distinct instances: each caches its own mask, as the old
    // path did).
    let mut bns: Vec<BatchNorm2d> = (0..weights.len() - 1)
        .map(|i| BatchNorm2d::new(weights[i].1))
        .collect();
    let mut acts: Vec<LeakyReLU> = (0..weights.len() - 1)
        .map(|_| LeakyReLU::default())
        .collect();
    let x0 = nn::Tensor::from_vec(
        [batch, 4, n, n],
        (0..batch * 4 * n * n)
            .map(|_| rng.random::<f32>())
            .collect(),
    );
    let secs = time_per_call(
        || {
            // Stem.
            let (in_c, out_c, k, w) = &weights[0];
            let mut cur = reference::conv2d_forward(*in_c, *out_c, *k, w, None, &x0).out;
            cur = bns[0].forward(&cur, true);
            cur = acts[0].forward(&cur, true);
            // Residual blocks (conv-BN-act-conv-BN, skip, act).
            for b in 0..cfg.blocks {
                let skip = cur.clone();
                for half in 0..2 {
                    let idx = 1 + 2 * b + half;
                    let (in_c, out_c, k, w) = &weights[idx];
                    cur = reference::conv2d_forward(*in_c, *out_c, *k, w, None, &cur).out;
                    cur = bns[idx].forward(&cur, true);
                    if half == 0 {
                        cur = acts[idx].forward(&cur, true);
                    }
                }
                cur.add_assign(&skip);
                cur = acts[2 * b + 2].forward(&cur, true);
            }
            // Head conv-BN-act, then the 4-channel output conv.
            let head = weights.len() - 2;
            let (in_c, out_c, k, w) = &weights[head];
            cur = reference::conv2d_forward(*in_c, *out_c, *k, w, None, &cur).out;
            cur = bns[head].forward(&cur, true);
            cur = acts[head].forward(&cur, true);
            let (in_c, out_c, k, w) = &weights[head + 1];
            cur = reference::conv2d_forward(*in_c, *out_c, *k, w, Some(&out_bias), &cur).out;
            std::hint::black_box(&cur);
        },
        min_secs,
    );
    batch as f64 / secs
}

/// Raw-GEMM GFLOP/s of the SIMD lane tier vs the scalar engine vs the
/// naive reference at one shape, across thread counts, verifying bitwise
/// SIMD/scalar identity at each. The reference kernel (single-threaded by
/// construction) is measured once per shape.
fn gemm_rows(
    m: usize,
    k: usize,
    n: usize,
    threads_list: &[usize],
    min_secs: f64,
) -> Vec<support::GemmRow> {
    let mut rng = StdRng::seed_from_u64(29);
    let a: Vec<f32> = (0..m * k).map(|_| rng.random::<f32>() - 0.5).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.random::<f32>() - 0.5).collect();
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let mut c = vec![0.0f32; m * n];
    let reference_secs = time_per_call(
        || {
            c.fill(0.0);
            reference::gemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        },
        min_secs,
    );
    let simd_was_on = simd::enabled();
    let mut rows = Vec::new();
    for (ti, &threads) in threads_list.iter().enumerate() {
        let pool = ThreadPool::new(threads);
        let mut measure = |vectors: bool| {
            simd::set_enabled(vectors);
            let secs = time_per_call(
                || {
                    c.fill(0.0);
                    compute::gemm_rows_parallel(&pool, m, k, n, &a, &b, &mut c);
                    std::hint::black_box(&c);
                },
                min_secs,
            );
            (flops / secs / 1e9, c.clone())
        };
        let (scalar_gflops, scalar_c) = measure(false);
        let (simd_gflops, simd_c) = measure(true);
        rows.push(support::GemmRow {
            m,
            k,
            n,
            threads,
            // The reference kernel has no threading axis; report it on
            // the first row of the shape only.
            reference_gflops: if ti == 0 {
                flops / reference_secs / 1e9
            } else {
                0.0
            },
            scalar_gflops,
            simd_gflops,
            bit_identical: scalar_c == simd_c,
        });
    }
    simd::set_enabled(simd_was_on);
    rows
}

fn main() {
    let (batch, threads_list, min_secs) = match support::scale() {
        support::Scale::Quick => (32usize, vec![1usize, 2, 4], 0.4f64),
        support::Scale::Paper => (96, vec![1, 2, 4, 8], 2.0),
    };
    let configs = [
        ("tiny(8)", QNetConfig::tiny(8)),
        ("small(16)", QNetConfig::small(16)),
    ];
    println!(
        "nn_throughput (batch {batch}, host cpus {}, simd compiled: {}, enabled: {})\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        simd::compiled(),
        simd::enabled(),
    );

    // Raw GEMM kernels first: the paper-scale im2col product (one 5×5
    // residual convolution at C=256 on the 32×32 grid packs to
    // m=256, k=6400, n=1024) and the small(16) training shape.
    println!(
        "{:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "m", "k", "n", "threads", "ref", "scalar", "simd", "simd/ref", "bitexact"
    );
    let mut gemm_table = Vec::new();
    for &(m, k, n) in &[(256usize, 6400usize, 1024usize), (12, 300, 256)] {
        let rows = gemm_rows(m, k, n, &threads_list, min_secs);
        let reference = rows[0].reference_gflops;
        for r in &rows {
            println!(
                "{:>6} {:>6} {:>6} {:>8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}x {:>9}",
                r.m,
                r.k,
                r.n,
                r.threads,
                reference,
                r.scalar_gflops,
                r.simd_gflops,
                r.simd_gflops / reference.max(1e-9),
                r.bit_identical,
            );
            assert!(r.bit_identical, "SIMD diverged from scalar at {r:?}");
        }
        gemm_table.extend(rows);
    }
    println!();

    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>9}",
        "config", "threads", "fwd/s", "bwd/s", "infer/s", "fused/s", "baseline fwd/s", "speedup"
    );

    let saved_threads = compute::threads();
    let mut rows = Vec::new();
    for (label, cfg) in &configs {
        let n = cfg.n as usize;
        let feat = 4 * n * n;
        let mut rng = StdRng::seed_from_u64(17);
        let states: Vec<Vec<f32>> = (0..batch)
            .map(|_| (0..feat).map(|_| f32::from(rng.random::<bool>())).collect())
            .collect();
        let refs: Vec<&[f32]> = states.iter().map(Vec::as_slice).collect();
        let baseline = baseline_fwd_samples_per_sec(cfg, batch, min_secs);
        for &threads in &threads_list {
            compute::set_threads(threads);
            let mut q = PrefixQNet::new(cfg);
            let num_actions = q.num_actions();
            // Training-mode forward.
            let fwd_secs = time_per_call(
                || {
                    std::hint::black_box(q.forward(&refs, true));
                },
                min_secs,
            );
            // Full gradient step (forward + backward + Adam), from which
            // the backward-only share is derived.
            let mut grad = vec![vec![[0.0f32; 2]; num_actions]; batch];
            for row in &mut grad {
                row[3] = [0.01, -0.01];
            }
            let step_secs = time_per_call(
                || {
                    std::hint::black_box(q.forward(&refs, true));
                    q.apply_gradient(&grad);
                },
                min_secs,
            );
            let bwd_secs = (step_secs - fwd_secs).max(1e-9);
            // Immutable inference and the fused frozen snapshot.
            let mut scratch = nn::Scratch::new();
            let infer_secs = time_per_call(
                || {
                    std::hint::black_box(q.infer(&refs, &mut scratch));
                },
                min_secs,
            );
            let frozen = q.frozen();
            let fused_secs = time_per_call(
                || {
                    std::hint::black_box(frozen.infer(&refs, &mut scratch));
                },
                min_secs,
            );
            let row = support::NnRow {
                config: label.to_string(),
                threads,
                fwd_samples_per_sec: batch as f64 / fwd_secs,
                bwd_samples_per_sec: batch as f64 / bwd_secs,
                infer_samples_per_sec: batch as f64 / infer_secs,
                fused_infer_samples_per_sec: batch as f64 / fused_secs,
                baseline_fwd_samples_per_sec: baseline,
            };
            println!(
                "{:>10} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>14.1} {:>8.2}x",
                row.config,
                row.threads,
                row.fwd_samples_per_sec,
                row.bwd_samples_per_sec,
                row.infer_samples_per_sec,
                row.fused_infer_samples_per_sec,
                row.baseline_fwd_samples_per_sec,
                row.fwd_samples_per_sec / row.baseline_fwd_samples_per_sec.max(1e-9),
            );
            rows.push(row);
        }
    }
    compute::set_threads(saved_threads);
    support::write_bench_nn(batch, &rows, &gemm_table);
}
