//! Fig. 5a/5b — cross-library generalization: PrefixRL adders trained on
//! the open 45 nm flow are re-synthesized with the "commercial" effort
//! optimizer on the 8 nm-class library, against regular adders and the
//! tool's own architecture choices.

use baselines::commercial::commercial_sweep;
use netlist::Library;
use prefix_graph::{structures, PrefixGraph};
use prefixrl_bench as support;
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::frontier::sweep_front;
use prefixrl_core::pareto::ParetoFront;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;
use synth::optimizer::OptimizerConfig;
use synth::sweep::SweepConfig;

fn run(n: u16, weights: &[f64], steps: u64, targets: usize, tag: &str) {
    let train_lib = Library::nangate45();
    let target_lib = Library::tech8();
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    println!(
        "\nFig. 5 ({tag}): train on {}, evaluate on {}",
        train_lib.name(),
        target_lib.name()
    );

    // Train on the OPEN library (as the paper does)…
    let mut rl_designs: Vec<(String, PrefixGraph)> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let evaluator = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
            Adder,
            train_lib.clone(),
            SweepConfig::fast(),
            w,
        )));
        let mut cfg = AgentConfig::small(n, w as f32, steps);
        cfg.env = prefixrl_core::env::EnvConfig::synthesis(n);
        cfg.seed = 300 + i as u64;
        let result = TrainLoop::run(&cfg, evaluator);
        // The paper picks 7 Pareto-optimal adders to transfer.
        for (k, (_, g)) in support::spread_front(&result.front(), 4).iter().enumerate() {
            rl_designs.push((format!("PrefixRL(w={w:.2})#{k}"), g.clone()));
        }
    }
    rl_designs.truncate(7);
    println!(
        "  transferring {} Pareto-optimal PrefixRL adders",
        rl_designs.len()
    );

    // …then synthesize everything with the commercial-effort flow on tech8.
    let commercial_cfg = SweepConfig {
        optimizer: OptimizerConfig::commercial(),
        ..SweepConfig::commercial()
    };
    let rl_front = sweep_front(&rl_designs, &target_lib, &commercial_cfg, targets, threads);
    let regulars: Vec<(String, PrefixGraph)> = [
        ("Sklansky", structures::sklansky as fn(u16) -> PrefixGraph),
        ("KoggeStone", structures::kogge_stone),
        ("BrentKung", structures::brent_kung),
    ]
    .iter()
    .map(|(name, ctor)| (name.to_string(), ctor(n)))
    .collect();
    let reg_front = sweep_front(&regulars, &target_lib, &commercial_cfg, targets, threads);

    // The tool's own adders ("Commercial"): best architecture per target.
    let choices = commercial_sweep(n, &target_lib, &OptimizerConfig::commercial(), targets);
    let mut tool_front: ParetoFront<String> = ParetoFront::new();
    for c in &choices {
        tool_front.insert(
            ObjectivePoint {
                area: c.area,
                delay: c.delay,
            },
            format!("Commercial[{}]", c.architecture),
        );
    }

    support::print_front("PrefixRL (transferred)", &rl_front);
    support::print_front("Regular", &reg_front);
    support::print_front("Commercial", &tool_front);
    support::report_saving("PrefixRL", &rl_front, "Regular", &reg_front);
    support::report_saving("PrefixRL", &rl_front, "Commercial", &tool_front);
    support::write_json(
        &format!("fig5_{tag}"),
        &serde_json::json!({
            "n": n,
            "prefixrl": support::front_json(&rl_front),
            "regular": support::front_json(&reg_front),
            "commercial": support::front_json(&tool_front),
        }),
    );
}

fn main() {
    match support::scale() {
        support::Scale::Quick => {
            run(8, &[0.3, 0.7], 800, 10, "32b_quick");
            run(16, &[0.3, 0.7], 600, 10, "64b_quick");
        }
        support::Scale::Paper => {
            let w: Vec<f64> = (0..15).map(|i| 0.10 + 0.89 * i as f64 / 14.0).collect();
            run(32, &w, 500_000, 12, "32b");
            run(64, &w, 500_000, 12, "64b");
        }
    }
}
