//! Criterion micro-benchmarks for the core primitives: environment steps,
//! legalization, synthesis (Table I's synthesis-time row), Q-network
//! training iterations (Table I's train-iteration row), replay sampling,
//! PCHIP evaluation and Pareto maintenance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netlist::Library;
use prefix_graph::{structures, Action, Node, PrefixGraph};
use prefixrl_core::env::{EnvConfig, PrefixEnv};
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::pareto::ParetoFront;
use prefixrl_core::qnet::{PrefixQNet, QNetConfig};
use prefixrl_core::task::{Adder, TaskEvaluator};
use rand::SeedableRng;
use rl::{QInfer, QNetwork};
use std::hint::black_box;
use std::sync::Arc;
use synth::sweep::{sweep_graph, SweepConfig};

fn bench_graph_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_graph");
    for n in [16u16, 32, 64] {
        g.bench_function(format!("legalize_add_{n}b"), |b| {
            let base = PrefixGraph::ripple(n);
            b.iter_batched(
                || base.clone(),
                |mut graph| {
                    graph
                        .apply(Action::Add(Node::new(n - 2, 2)))
                        .expect("legal");
                    black_box(graph)
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("features_{n}b"), |b| {
            let graph = structures::sklansky(n);
            b.iter(|| black_box(prefix_graph::features::extract(&graph)))
        });
        g.bench_function(format!("analytical_eval_{n}b"), |b| {
            let graph = structures::kogge_stone(n);
            b.iter(|| black_box(prefix_graph::analytical::evaluate(&graph)))
        });
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let lib = Library::nangate45();
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);
    for n in [16u16, 32, 64] {
        let graph = structures::sklansky(n);
        g.bench_function(format!("sweep4_sklansky_{n}b"), |b| {
            b.iter(|| black_box(sweep_graph(&graph, &lib, &SweepConfig::paper())))
        });
    }
    g.finish();
}

fn bench_env_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("env");
    g.bench_function("step_analytical_16b", |b| {
        let env = PrefixEnv::new(
            EnvConfig::analytical(16),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        b.iter_batched(
            || {
                let mut e = PrefixEnv::new(
                    EnvConfig::analytical(16),
                    Arc::new(TaskEvaluator::analytical(Adder)),
                );
                let _ = &env;
                e.reset(&mut rand::rngs::StdRng::seed_from_u64(0));
                e
            },
            |mut e| {
                let mask = e.action_mask();
                let a = mask.iter().position(|&m| m).unwrap();
                black_box(e.step_flat(a))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_qnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("qnet");
    g.sample_size(10);
    for (n, batch) in [(8u16, 12usize), (16, 12)] {
        let mut q = PrefixQNet::new(&QNetConfig::small(n));
        let env = PrefixEnv::new(
            EnvConfig::analytical(n),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        g.bench_function(format!("train_iteration_{n}b_batch{batch}"), |b| {
            b.iter(|| {
                let states: Vec<&[f32]> = (0..batch).map(|_| f.as_slice()).collect();
                let _ = q.forward(&states, true);
                let grad = vec![vec![[1e-3f32; 2]; q.num_actions()]; batch];
                q.apply_gradient(&grad);
            })
        });
        g.bench_function(format!("forward_single_{n}b"), |b| {
            b.iter(|| black_box(q.forward(&[f.as_slice()], false)))
        });
    }
    g.finish();
}

fn bench_replay_and_curve(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut g = c.benchmark_group("support");
    g.bench_function("replay_sample_64", |b| {
        let mut buf = rl::ReplayBuffer::new(10_000);
        for i in 0..5_000 {
            buf.push(rl::Transition {
                state: vec![i as f32; 64],
                action: i % 10,
                reward: [0.0, 0.0],
                next_state: vec![0.0; 64],
                next_mask: vec![true; 10],
                done: false,
            });
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        b.iter(|| black_box(buf.sample(&mut rng, 64)))
    });
    g.bench_function("pchip_query", |b| {
        let curve = synth::AreaDelayCurve::from_samples(&[
            (0.3, 4000.0),
            (0.35, 3200.0),
            (0.45, 2800.0),
            (0.6, 2500.0),
        ]);
        b.iter(|| black_box(curve.area_at(0.42)))
    });
    g.bench_function("pareto_insert_1000", |b| {
        b.iter(|| {
            let mut front: ParetoFront<usize> = ParetoFront::new();
            for i in 0..1000usize {
                let x = (i % 97) as f64;
                front.insert(
                    ObjectivePoint {
                        area: 100.0 + (x * 13.0) % 311.0,
                        delay: 1.0 + ((x * 7.0) % 101.0) / 50.0,
                    },
                    i,
                );
            }
            black_box(front)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_graph_ops,
    bench_synthesis,
    bench_env_step,
    bench_qnet,
    bench_replay_and_curve
);
criterion_main!(benches);
