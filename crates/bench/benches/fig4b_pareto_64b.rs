//! Fig. 4b — the "larger width" Pareto comparison: PrefixRL vs regular
//! adders and the cross-layer ML baseline (CL, ref. \[10\]).
//!
//! Quick scale uses 16-bit adders (double the Fig. 4a width, as 64b doubles
//! 32b in the paper); `PREFIXRL_SCALE=paper` uses 64 bits.

use baselines::crosslayer::{cross_layer, CrossLayerConfig};
use netlist::Library;
use prefix_graph::{structures, PrefixGraph};
use prefixrl_bench as support;
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::frontier::sweep_front;
use prefixrl_core::pareto::ParetoFront;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;
use synth::sweep::SweepConfig;

fn main() {
    let (n, weights, steps, targets): (u16, Vec<f64>, u64, usize) = match support::scale() {
        support::Scale::Quick => (16, vec![0.3, 0.6, 0.85], 900, 8),
        support::Scale::Paper => (
            64,
            (0..15).map(|i| 0.10 + 0.89 * i as f64 / 14.0).collect(),
            500_000,
            40,
        ),
    };
    let lib = Library::nangate45();
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    println!(
        "Fig. 4b reproduction: {n}-bit adders, open flow ({})",
        lib.name()
    );

    let mut rl_designs: Vec<(String, PrefixGraph)> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let evaluator = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
            Adder,
            lib.clone(),
            SweepConfig::fast(),
            w,
        )));
        let mut cfg = AgentConfig::small(n, w as f32, steps);
        cfg.env = prefixrl_core::env::EnvConfig::synthesis(n);
        cfg.seed = 200 + i as u64;
        let result = TrainLoop::run(&cfg, evaluator.clone());
        println!(
            "  agent w_area={w:.2}: {} designs, cache hit rate {:.0}%",
            result.designs.len(),
            100.0 * evaluator.hit_rate()
        );
        for (k, (_, g)) in support::spread_front(&result.front(), 12)
            .iter()
            .enumerate()
        {
            rl_designs.push((format!("PrefixRL(w={w:.2})#{k}"), g.clone()));
        }
    }

    let regulars: Vec<(String, PrefixGraph)> = [
        ("Sklansky", structures::sklansky as fn(u16) -> PrefixGraph),
        ("KoggeStone", structures::kogge_stone),
        ("BrentKung", structures::brent_kung),
    ]
    .iter()
    .map(|(name, ctor)| (name.to_string(), ctor(n)))
    .collect();

    // CL baseline: the synthesized knots of its selected designs form the
    // CL series directly.
    let cl = cross_layer(n, &lib, &CrossLayerConfig::fast());
    let mut cl_front: ParetoFront<String> = ParetoFront::new();
    for (i, d) in cl.iter().enumerate() {
        for &(area, delay) in &d.synthesized {
            cl_front.insert(ObjectivePoint { area, delay }, format!("CL#{i}"));
        }
    }

    let cfg = SweepConfig::paper();
    let rl_front = sweep_front(&rl_designs, &lib, &cfg, targets, threads);
    let reg_front = sweep_front(&regulars, &lib, &cfg, targets, threads);
    support::print_front("PrefixRL", &rl_front);
    support::print_front("Regular", &reg_front);
    support::print_front("CL", &cl_front);
    support::report_saving("PrefixRL", &rl_front, "Regular", &reg_front);
    support::report_saving("PrefixRL", &rl_front, "CL", &cl_front);
    support::write_json(
        "fig4b",
        &serde_json::json!({
            "n": n,
            "prefixrl": support::front_json(&rl_front),
            "regular": support::front_json(&reg_front),
            "cl": support::front_json(&cl_front),
        }),
    );
}
