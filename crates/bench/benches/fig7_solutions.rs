//! Fig. 7 — sample learned PrefixRL solutions, rendered as ASCII diagrams
//! (and DOT files under target/prefixrl-results/ for graphical rendering).

use prefixrl_bench as support;
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;

fn main() {
    let (n, steps) = match support::scale() {
        support::Scale::Quick => (16u16, 2500u64),
        support::Scale::Paper => (64u16, 100_000u64),
    };
    println!("Fig. 7 reproduction: learned {n}-bit PrefixRL solutions\n");
    let evaluator = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
    let mut shown = 0;
    for (i, w) in [0.25f32, 0.6, 0.9].into_iter().enumerate() {
        let mut cfg = AgentConfig::small(n, w, steps);
        cfg.seed = 600 + i as u64;
        let result = TrainLoop::run(&cfg, evaluator.clone());
        if let Some((g, p)) = result.best_scalarized(w as f64, 0.05, 0.25) {
            println!(
                "--- agent w_area={w}: size {}, depth {}, fanout {}, area {:.0}, delay {:.1} ---",
                g.size(),
                g.depth(),
                g.max_fanout(),
                p.area,
                p.delay
            );
            println!("{}", prefix_graph::render::ascii(g));
            let dot = prefix_graph::render::dot(g);
            let path = support::results_dir().join(format!("fig7_w{w}.dot"));
            std::fs::write(&path, dot).expect("write dot");
            println!("[artifact] {}\n", path.display());
            shown += 1;
        }
    }
    assert!(shown > 0, "no solutions rendered");
}
