//! Evaluation throughput per `(task, backend)` pair — the cost surface of
//! the pluggable workload layer (DESIGN.md §12).
//!
//! For every registered [`CircuitTask`] × objective backend, a mixed pool
//! of graphs is evaluated cold (straight through the `TaskEvaluator`) and
//! warm (through the sharded cache, after a priming round), yielding the
//! `BENCH_tasks.json` artifact. Analytical backends run thousands of times
//! faster than synthesis ones — the same gap that motivates the paper's
//! Section IV-D caching — and the non-adder tasks synthesize faster than
//! the adder because their netlists are a fraction of the size.
//!
//! ```sh
//! cargo bench -p prefixrl-bench --bench task_throughput
//! PREFIXRL_SCALE=paper cargo bench -p prefixrl-bench --bench task_throughput
//! ```

use netlist::Library;
use prefix_graph::{structures, PrefixGraph};
use prefixrl_bench::{scale, write_bench_tasks, Scale, TaskRow};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::evaluator::Evaluator;
use prefixrl_core::task::{
    self, AnalyticalBackend, ObjectiveBackend, SynthesisBackend, TaskEvaluator,
};
use std::sync::Arc;
use std::time::Instant;

fn pool(n: u16) -> Vec<PrefixGraph> {
    let mut graphs = vec![
        PrefixGraph::ripple(n),
        structures::sklansky(n),
        structures::kogge_stone(n),
        structures::brent_kung(n),
        structures::han_carlson(n),
        structures::ladner_fischer(n),
    ];
    // A few irregular mid-episode states so the pool is not all-regular.
    for (i, base) in [structures::sklansky(n), PrefixGraph::ripple(n)]
        .into_iter()
        .enumerate()
    {
        let mut g = base;
        for step in 0..6usize {
            let acts = g.legal_actions();
            if acts.is_empty() {
                break;
            }
            let a = acts[(i * 7 + step * 3) % acts.len()];
            g.apply(a).expect("legal action applies");
        }
        graphs.push(g);
    }
    graphs
}

fn measure(evaluator: &dyn Evaluator, graphs: &[PrefixGraph], rounds: usize) -> (u64, f64) {
    let t0 = Instant::now();
    let mut evals = 0u64;
    for _ in 0..rounds {
        for g in graphs {
            std::hint::black_box(evaluator.evaluate(g));
            evals += 1;
        }
    }
    (evals, evals as f64 / t0.elapsed().as_secs_f64().max(1e-9))
}

fn main() {
    let n: u16 = match scale() {
        Scale::Quick => 16,
        Scale::Paper => 32,
    };
    let graphs = pool(n);
    let lib = Library::nangate45();
    let backends: Vec<Arc<dyn ObjectiveBackend>> = vec![
        Arc::new(AnalyticalBackend),
        Arc::new(SynthesisBackend::new(
            lib.clone(),
            synth::sweep::SweepConfig::fast(),
            0.5,
        )),
        Arc::new(
            SynthesisBackend::new(lib, synth::sweep::SweepConfig::fast(), 0.5)
                .with_power_annotation(),
        ),
    ];

    let mut rows = Vec::new();
    println!(
        "{:<12} {:<16} {:>8} {:>14} {:>18}",
        "task", "backend", "graphs", "evals/s", "cached evals/s"
    );
    for name in task::TASK_NAMES {
        let task = task::by_name(name).expect("registered");
        for backend in &backends {
            let ev = TaskEvaluator::new(Arc::clone(&task), Arc::clone(backend));
            let analytical = backend.backend_id() == "analytical";
            let cold_rounds = if analytical { 200 } else { 1 };
            let (evals, cold) = measure(&ev, &graphs, cold_rounds);
            let cached = CachedEvaluator::new(ev);
            cached.evaluate_many(&graphs); // prime
            let warm_rounds = if analytical { 500 } else { 50 };
            let (_, warm) = measure(&cached, &graphs, warm_rounds);
            println!(
                "{:<12} {:<16} {:>8} {:>14.1} {:>18.1}",
                name,
                backend.backend_id(),
                graphs.len(),
                cold,
                warm
            );
            rows.push(TaskRow {
                task: name.to_string(),
                backend: backend.backend_id().to_string(),
                graphs: graphs.len(),
                evals,
                evals_per_sec: cold,
                cached_evals_per_sec: warm,
            });
        }
    }
    write_bench_tasks(n, &rows);
}
