//! Table I — comparison of 16b, 32b and 64b PrefixRL adder design:
//! action-space size |A|, per-state synthesis time (Sklansky at 4 timing
//! constraints, as the paper footnotes), per-gradient-step training time,
//! and the model configuration rows.

use netlist::Library;
use prefix_graph::structures;
use prefixrl_bench as support;
use prefixrl_core::env::EnvConfig;
use prefixrl_core::qnet::{PrefixQNet, QNetConfig};
use prefixrl_core::task::{Adder, TaskEvaluator};
use rl::{QInfer, QNetwork};
use std::sync::Arc;
use std::time::Instant;
use synth::sweep::{sweep_graph, SweepConfig};

fn main() {
    let lib = Library::nangate45();
    let scale = support::scale();
    let widths: [u16; 3] = [16, 32, 64];
    println!("Table I reproduction ({scale:?} scale)\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "Statistic", "16b", "32b", "64b"
    );

    // |A| — exact, matches the paper (105 / 465 / 1953).
    let a: Vec<String> = widths
        .iter()
        .map(|&n| {
            prefix_graph::PrefixGraph::ripple(n)
                .interior_positions()
                .to_string()
        })
        .collect();
    println!("{:<28} {:>12} {:>12} {:>12}", "|A|", a[0], a[1], a[2]);

    // Synthesis time: Sklansky evaluated at 4 timing constraints.
    let mut synth_ms = Vec::new();
    for &n in &widths {
        let g = structures::sklansky(n);
        let reps = if n == 64 { 3 } else { 5 };
        let t = Instant::now();
        for _ in 0..reps {
            let _ = sweep_graph(&g, &lib, &SweepConfig::paper());
        }
        synth_ms.push(t.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    }
    println!(
        "{:<28} {:>11.1}ms {:>11.1}ms {:>11.1}ms",
        "Synthesis time", synth_ms[0], synth_ms[1], synth_ms[2]
    );

    // Train iteration time at this reproduction's scales (paper ran B=32,
    // C=256 on GPUs; quick scale uses the CPU config, paper scale builds
    // the full network for 16b only to keep runtime sane).
    let mut train_ms = Vec::new();
    let mut model_rows: Vec<(usize, usize, usize)> = Vec::new(); // (B, C, batch)
    for &n in &widths {
        let (qcfg, batch) = match scale {
            support::Scale::Quick => (QNetConfig::small(n), if n == 64 { 4 } else { 12 }),
            support::Scale::Paper => (QNetConfig::paper(n), if n == 64 { 6 } else { 96 }),
        };
        model_rows.push((qcfg.blocks, qcfg.channels, batch));
        let mut q = PrefixQNet::new(&qcfg);
        let env = prefixrl_core::env::PrefixEnv::new(
            EnvConfig::analytical(n),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let states: Vec<&[f32]> = (0..batch).map(|_| f.as_slice()).collect();
        let reps = if n == 64 { 2 } else { 4 };
        let t = Instant::now();
        for _ in 0..reps {
            let _ = q.forward(&states, true);
            let grad = vec![vec![[1e-3f32; 2]; q.num_actions()]; batch];
            q.apply_gradient(&grad);
        }
        train_ms.push(t.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    }
    println!(
        "{:<28} {:>11.1}ms {:>11.1}ms {:>11.1}ms",
        "Train iteration time", train_ms[0], train_ms[1], train_ms[2]
    );
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "# of residual blocks", model_rows[0].0, model_rows[1].0, model_rows[2].0
    );
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "channels", model_rows[0].1, model_rows[1].1, model_rows[2].1
    );
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "per-batch size", model_rows[0].2, model_rows[1].2, model_rows[2].2
    );
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "# of data-parallel GPUs", "n/a (CPU)", "n/a (CPU)", "n/a (CPU)"
    );
    support::write_json(
        "table1",
        &serde_json::json!({
            "widths": widths,
            "action_space": [105, 465, 1953],
            "synthesis_ms": synth_ms,
            "train_iteration_ms": train_ms,
        }),
    );
}
