//! Fig. 6a/6b — the importance of synthesis in the loop.
//!
//! (a) Train Analytical-PrefixRL agents on the analytical model of \[14\] and
//!     compare against SA and PS under analytical metrics: RL dominates.
//! (b) Push the same designs through timing-driven synthesis: the ordering
//!     changes — PS/regulars synthesize better than analytically-optimized
//!     designs, while synthesis-in-the-loop PrefixRL (Fig. 4) leads.

use baselines::pruned::{pruned_search, PrunedSearchConfig};
use baselines::sa::{sa_frontier, SaConfig};
use netlist::Library;
use prefix_graph::{analytical, PrefixGraph};
use prefixrl_bench as support;
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::frontier::sweep_front;
use prefixrl_core::pareto::ParetoFront;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;
use synth::sweep::SweepConfig;

fn analytical_front(designs: &[(String, PrefixGraph)]) -> ParetoFront<String> {
    designs
        .iter()
        .map(|(label, g)| {
            let m = analytical::evaluate(g);
            (
                ObjectivePoint {
                    area: m.area,
                    delay: m.delay,
                },
                label.clone(),
            )
        })
        .collect()
}

fn main() {
    let (n, weights, steps, targets): (u16, Vec<f64>, u64, usize) = match support::scale() {
        support::Scale::Quick => (12, vec![0.1, 0.25, 0.45, 0.7], 3500, 8),
        support::Scale::Paper => (
            32,
            (0..15).map(|i| 0.10 + 0.89 * i as f64 / 14.0).collect(),
            100_000,
            40,
        ),
    };
    println!("Fig. 6 reproduction: {n}-bit adders");
    let lib = Library::nangate45();
    let threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);

    // Analytical-PrefixRL agents (trained on [14]'s model).
    let evaluator = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
    let mut rl_designs: Vec<(String, PrefixGraph)> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let mut cfg = AgentConfig::small(n, w as f32, steps);
        cfg.seed = 400 + i as u64;
        let result = TrainLoop::run(&cfg, evaluator.clone());
        for (k, (_, g)) in support::spread_front(&result.front(), 10)
            .iter()
            .enumerate()
        {
            rl_designs.push((format!("AnalyticalRL(w={w:.2})#{k}"), g.clone()));
        }
        println!(
            "  agent w_area={w:.2} done ({} designs)",
            result.designs.len()
        );
    }

    // SA [14] and PS [15] design sets.
    let sa: Vec<(String, PrefixGraph)> = sa_frontier(
        n,
        &[0.05, 0.15, 0.3, 0.5, 0.7, 0.9],
        &SaConfig::default(),
        13,
    )
    .into_iter()
    .enumerate()
    .map(|(i, g)| (format!("SA#{i}"), g))
    .collect();
    let ps: Vec<(String, PrefixGraph)> = pruned_search(n, &PrunedSearchConfig::fast())
        .into_iter()
        .take(24)
        .enumerate()
        .map(|(i, g)| (format!("PS#{i}"), g))
        .collect();

    // --- Fig. 6a: analytical metrics -------------------------------------
    let rl_a = analytical_front(&rl_designs);
    let sa_a = analytical_front(&sa);
    let ps_a = analytical_front(&ps);
    support::print_front("Fig6a Analytical-PrefixRL (analytical)", &rl_a);
    support::print_front("Fig6a SA (analytical)", &sa_a);
    support::print_front("Fig6a PS (analytical)", &ps_a);
    support::report_saving("Analytical-PrefixRL", &rl_a, "SA", &sa_a);
    support::report_saving("Analytical-PrefixRL", &rl_a, "PS", &ps_a);

    // --- Fig. 6b: the same designs after synthesis -----------------------
    let cfg = SweepConfig::paper();
    let rl_s = sweep_front(&rl_designs, &lib, &cfg, targets, threads);
    let sa_s = sweep_front(&sa, &lib, &cfg, targets, threads);
    let ps_s = sweep_front(&ps, &lib, &cfg, targets, threads);
    // Synthesis-in-the-loop PrefixRL reference (one mid-weight agent).
    let mut loop_designs: Vec<(String, PrefixGraph)> = Vec::new();
    {
        let ev = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
            Adder,
            lib.clone(),
            SweepConfig::fast(),
            0.5,
        )));
        let mut cfg_rl = AgentConfig::small(n, 0.5, steps.min(900));
        cfg_rl.env = prefixrl_core::env::EnvConfig::synthesis(n);
        cfg_rl.seed = 500;
        let result = TrainLoop::run(&cfg_rl, ev);
        for (k, (_, g)) in support::spread_front(&result.front(), 10)
            .iter()
            .enumerate()
        {
            loop_designs.push((format!("PrefixRL#{k}"), g.clone()));
        }
    }
    let loop_s = sweep_front(&loop_designs, &lib, &cfg, targets, threads);
    support::print_front("Fig6b Analytical-PrefixRL (synthesized)", &rl_s);
    support::print_front("Fig6b SA (synthesized)", &sa_s);
    support::print_front("Fig6b PS (synthesized)", &ps_s);
    support::print_front("Fig6b PrefixRL synthesis-in-loop (synthesized)", &loop_s);
    println!("\nFig. 6b orderings (min achievable delay):");
    for (name, f) in [
        ("Analytical-PrefixRL", &rl_s),
        ("SA", &sa_s),
        ("PS", &ps_s),
        ("PrefixRL-in-loop", &loop_s),
    ] {
        if let Some(p) = f.points().first() {
            println!(
                "  {name:<22} fastest delay {:.4} at area {:.1}",
                p.delay, p.area
            );
        }
    }
    support::write_json(
        "fig6",
        &serde_json::json!({
            "n": n,
            "analytical": {
                "rl": support::front_json(&rl_a),
                "sa": support::front_json(&sa_a),
                "ps": support::front_json(&ps_a),
            },
            "synthesized": {
                "rl_analytical": support::front_json(&rl_s),
                "sa": support::front_json(&sa_s),
                "ps": support::front_json(&ps_s),
                "rl_in_loop": support::front_json(&loop_s),
            },
        }),
    );
}
