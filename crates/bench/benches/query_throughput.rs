//! Frontier query-tier throughput: lock-free snapshot lookups vs reader
//! threads, in-process and over the wire (DESIGN.md §15).
//!
//! Builds a large synthetic Pareto front, then measures (a) in-process
//! `snapshot()` + `best_at_delay` / `best_at_weight` lookups per second
//! for 1/2/4 reader threads, (b) reader throughput and worst single-query
//! latency while a writer thread merges and fsyncs concurrently — the
//! "reads never block on a merge" evidence, and (c) wire-level `query`
//! and `query_batch` throughput over persistent pipelined connections.
//! Writes the `BENCH_query.json` artifact; the read tier's ≥1M
//! lookups/sec budget is tracked against the in-process rows.
//!
//! ```sh
//! cargo bench -p prefixrl-bench --bench query_throughput
//! PREFIXRL_SCALE=paper cargo bench -p prefixrl-bench --bench query_throughput
//! ```

use prefix_graph::PrefixGraph;
use prefixrl_bench::{scale, write_bench_query, QueryRow, Scale};
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_serve::{Client, FrontierStore, ServeConfig, Server};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const TASK: &str = "adder";
const BACKEND: &str = "analytical";
const N: u16 = 8;

/// Merges one strictly-tradeoff front of `points` mutually non-dominated
/// designs: point `i` has `delay = i + 1`, `area = points - i`.
fn merge_front(store: &FrontierStore, points: usize) {
    let designs: Vec<(PrefixGraph, ObjectivePoint)> = (0..points)
        .map(|i| {
            (
                PrefixGraph::ripple(N),
                ObjectivePoint {
                    area: (points - i) as f64,
                    delay: (i + 1) as f64,
                },
            )
        })
        .collect();
    store.merge(TASK, BACKEND, N, &designs).expect("merge");
}

/// Delay targets cycling across the front's span (plus under/overshoot).
fn delay_targets(points: usize) -> Vec<f64> {
    (0..1024)
        .map(|i| (points + 2) as f64 * (i as f64 / 1023.0))
        .collect()
}

/// `readers` threads each run `per_reader` snapshot lookups; returns the
/// row plus the worst single-query latency when `track_latency` is set.
fn run_in_process(
    store: &Arc<FrontierStore>,
    scenario: &str,
    readers: usize,
    per_reader: u64,
    points: usize,
    track_latency: bool,
) -> QueryRow {
    let targets = Arc::new(delay_targets(points));
    let by_weight = scenario.contains("weight");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let store = Arc::clone(store);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                let mut max_latency_ns = 0u128;
                for i in 0..per_reader {
                    let pick = ((i as usize) * 31 + r * 7) % targets.len();
                    let t1 = track_latency.then(Instant::now);
                    let snapshot = store.snapshot();
                    let view = snapshot.front(TASK, BACKEND, N).expect("merged key");
                    if by_weight {
                        black_box(view.best_at_weight(targets[pick] / (points + 2) as f64));
                    } else {
                        black_box(view.best_at_delay(targets[pick]));
                    }
                    if let Some(t1) = t1 {
                        max_latency_ns = max_latency_ns.max(t1.elapsed().as_nanos());
                    }
                }
                max_latency_ns
            })
        })
        .collect();
    let max_latency_ns = handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .max()
        .unwrap_or(0);
    let elapsed = t0.elapsed().as_secs_f64();
    let queries = per_reader * readers as u64;
    QueryRow {
        scenario: scenario.to_string(),
        readers,
        queries,
        qps: queries as f64 / elapsed.max(1e-9),
        max_latency_us: max_latency_ns as f64 / 1e3,
    }
}

/// One persistent pipelined connection: writes a request line, reads the
/// response line, `rounds` times. Each request carries `per_request`
/// queries (1 ⇒ bare `query`, else `query_batch`).
fn wire_reader(addr: &str, rounds: u64, per_request: usize, points: usize) -> u64 {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    let targets = delay_targets(points);
    let mut answered = 0u64;
    for i in 0..rounds {
        let one = |j: u64| {
            format!(
                "\"task\":\"{TASK}\",\"backend\":\"{BACKEND}\",\"n\":{N},\
                 \"mode\":\"best_at_delay\",\"delay\":{}",
                targets[((i * per_request as u64 + j) as usize * 31) % targets.len()]
            )
        };
        let request = if per_request == 1 {
            format!("{{\"cmd\":\"query\",{}}}\n", one(0))
        } else {
            let queries: Vec<String> = (0..per_request as u64)
                .map(|j| format!("{{{}}}", one(j)))
                .collect();
            format!(
                "{{\"cmd\":\"query_batch\",\"queries\":[{}]}}\n",
                queries.join(",")
            )
        };
        writer.write_all(request.as_bytes()).expect("send");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response line");
        assert!(
            response.starts_with("{\"ok\":true"),
            "query failed: {response}"
        );
        answered += per_request as u64;
    }
    answered
}

fn run_wire(
    addr: &str,
    scenario: &str,
    readers: usize,
    rounds: u64,
    per_request: usize,
    points: usize,
) -> QueryRow {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let addr = addr.to_string();
            std::thread::spawn(move || wire_reader(&addr, rounds, per_request, points))
        })
        .collect();
    let queries: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("wire reader"))
        .sum();
    let elapsed = t0.elapsed().as_secs_f64();
    QueryRow {
        scenario: scenario.to_string(),
        readers,
        queries,
        qps: queries as f64 / elapsed.max(1e-9),
        max_latency_us: 0.0,
    }
}

fn main() {
    let (points, lookups, scan_lookups, wire_rounds, batch_rounds): (usize, u64, u64, u64, u64) =
        match scale() {
            Scale::Quick => (512, 400_000, 50_000, 3_000, 200),
            Scale::Paper => (4096, 2_000_000, 200_000, 20_000, 1_000),
        };
    let mut rows = Vec::new();
    println!(
        "{:>28} {:>8} {:>12} {:>14} {:>16}",
        "scenario", "readers", "queries", "qps", "max latency (µs)"
    );
    let mut push = |row: QueryRow| {
        println!(
            "{:>28} {:>8} {:>12} {:>14.0} {:>16.1}",
            row.scenario, row.readers, row.queries, row.qps, row.max_latency_us
        );
        rows.push(row);
    };

    // (a) In-process snapshot lookups on a quiescent store.
    let store = Arc::new(FrontierStore::in_memory());
    merge_front(&store, points);
    for readers in [1usize, 2, 4] {
        push(run_in_process(
            &store,
            "in_process_best_at_delay",
            readers,
            lookups,
            points,
            false,
        ));
    }
    push(run_in_process(
        &store,
        "in_process_best_at_weight",
        1,
        scan_lookups,
        points,
        false,
    ));

    // (b) Readers vs a concurrently merging, fsyncing writer: reader
    // latency stays flat because `merge` publishes the snapshot before it
    // touches the WAL.
    let dir = std::env::temp_dir().join(format!("prefixrl-query-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    {
        let disk_store =
            Arc::new(FrontierStore::open_with(&dir.join("frontier.json"), 64).expect("open store"));
        merge_front(&disk_store, points);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let store = Arc::clone(&disk_store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Each merge extends the front with one fresh non-dominated
                // point, forcing a snapshot publish plus a WAL fsync.
                let mut m = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let point = ObjectivePoint {
                        area: 1.0 / (m + 2) as f64,
                        delay: (points as u64 + 2 + m) as f64,
                    };
                    store
                        .merge(TASK, BACKEND, N, &[(PrefixGraph::ripple(N), point)])
                        .expect("writer merge");
                    m += 1;
                }
                m
            })
        };
        push(run_in_process(
            &disk_store,
            "in_process_under_writer",
            2,
            lookups / 2,
            points,
            true,
        ));
        stop.store(true, Ordering::Relaxed);
        let merges = writer.join().expect("writer thread");
        assert!(merges > 0, "writer never merged — no contention measured");
    }
    std::fs::remove_dir_all(&dir).ok();

    // (c) Wire-level: persistent pipelined connections into a live server.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server boots");
    let addr = server.local_addr().to_string();
    merge_front(server.jobs().store(), points);
    let server_thread = std::thread::spawn(move || server.run());
    for readers in [1usize, 2, 4] {
        push(run_wire(
            &addr,
            "wire_query",
            readers,
            wire_rounds,
            1,
            points,
        ));
    }
    push(run_wire(
        &addr,
        "wire_query_batch",
        1,
        batch_rounds,
        256,
        points,
    ));
    Client::new(addr).shutdown().expect("shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("clean exit");

    write_bench_query(points, &rows);
}
