//! Sharded serve-cluster throughput: partitioned merge scaling, fan-out
//! routed queries, and primary-kill failover latency (DESIGN.md §16).
//!
//! Three scenarios, all over real TCP against in-process shard servers:
//! (a) aggregate merge throughput at 1 vs 3 shards — merge durability is
//! fsync-bound, and the per-shard preallocated WALs turn each record's
//! fsync into pure data writeback that the shards overlap, where a
//! single node serializes every fsync behind one store mutex (the ≥1.7×
//! @ 3 shards budget); (b) router scatter/gather `query_batch` across
//! 3 shards vs the single-node wire query rate and the same batch
//! against one single-node server — all three recorded, because on one
//! core the scatter's extra round trips are pure overhead while real
//! deployments parse and answer the sub-batches in parallel; (c) read
//! failover: kill one primary and time reads of its keys served by the
//! ring follower (the <1 s, zero-failure budget). Writes the
//! `BENCH_cluster.json` artifact.
//!
//! ```sh
//! cargo bench -p prefixrl-bench --bench cluster_throughput
//! PREFIXRL_SCALE=paper cargo bench -p prefixrl-bench --bench cluster_throughput
//! ```

use prefix_graph::PrefixGraph;
use prefixrl_bench::{scale, write_bench_cluster, ClusterRow, Scale};
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_serve::cluster::shard_of;
use prefixrl_serve::store::key_of;
use prefixrl_serve::{Client, Router, ServeConfig, Server, ServerHandle, Topology};
use serde_json::Value;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TASK: &str = "adder";
const BACKEND: &str = "analytical";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prefixrl-cluster-bench-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    dir
}

/// Reserves `k` distinct ephemeral ports (the servers rebind them with
/// `SO_REUSEADDR`).
fn reserve_ports(k: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..k)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn shard_config(
    shard_id: usize,
    peers: &[String],
    replicas: usize,
    state_dir: Option<PathBuf>,
) -> ServeConfig {
    ServeConfig {
        addr: peers[shard_id].clone(),
        workers: 1,
        state_dir,
        cluster: Some(Topology::new(shard_id, peers.to_vec(), replicas).expect("topology")),
        ..ServeConfig::default()
    }
}

/// The first width in `4..=100` whose key is owned by `shard` in a
/// `num_shards`-way split.
fn width_owned_by(shard: usize, num_shards: usize) -> u16 {
    (4..=100)
        .find(|&n| shard_of(&key_of(TASK, BACKEND, n), num_shards) == shard)
        .expect("some width in the range hashes to every shard")
}

fn wait_ready(addr: &str) {
    Client::new(addr.to_string())
        .wait_until_ready(Duration::from_secs(10))
        .expect("shard ready");
}

/// Merges one strictly-tradeoff front of `points` mutually non-dominated
/// designs under width `n`.
fn merge_front(handle: &ServerHandle, n: u16, points: usize) {
    let designs: Vec<(PrefixGraph, ObjectivePoint)> = (0..points)
        .map(|i| {
            (
                PrefixGraph::ripple(n),
                ObjectivePoint {
                    area: (points - i) as f64,
                    delay: (i + 1) as f64,
                },
            )
        })
        .collect();
    handle
        .jobs()
        .store()
        .merge(TASK, BACKEND, n, &designs)
        .expect("merge front");
}

/// Aggregate merge throughput: `writers` concurrent writer threads, each
/// extending its own key's front one fresh non-dominated point at a time
/// (every merge publishes a snapshot and fsyncs one preallocated-WAL
/// record). With 1 shard all writers serialize on one store — one mutex,
/// one WAL file, one fsync stream; with `shards` shards each writer
/// lands on its key's owning shard and the per-shard WAL fsyncs — pure
/// data writeback thanks to preallocation — overlap. The same widths
/// (drawn from the 3-way split) are used at both shard counts so the
/// workload is identical and only the partitioning varies.
fn merge_scaling(shards: usize, writers: usize, merges_per_writer: u64, rep: usize) -> ClusterRow {
    let peers = reserve_ports(shards);
    let dirs: Vec<PathBuf> = (0..shards)
        .map(|s| temp_dir(&format!("merge-{shards}shard-s{s}-r{rep}")))
        .collect();
    // Replication off: this row isolates the partitioned write path; the
    // failover row covers replication.
    let handles: Vec<ServerHandle> = (0..shards)
        .map(|s| Server::spawn(shard_config(s, &peers, 0, Some(dirs[s].clone()))).expect("spawn"))
        .collect();
    for addr in &peers {
        wait_ready(addr);
    }

    let widths: Vec<u16> = (0..writers).map(|w| width_owned_by(w % 3, 3)).collect();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for &n in &widths {
            let shard = shard_of(&key_of(TASK, BACKEND, n), shards);
            let store = handles[shard].jobs().store();
            scope.spawn(move || {
                // Steady-refinement workload: every merge lands a strictly
                // better point at the key's delay target, so every merge
                // is accepted — and thus WAL-fsynced — while the front
                // holds at one point and per-merge CPU stays flat. The
                // durability fsync dominates, which is exactly the term
                // per-shard WAL files let the cluster overlap.
                for m in 0..merges_per_writer {
                    let remaining = (merges_per_writer - m) as f64;
                    let point = ObjectivePoint {
                        area: remaining,
                        delay: remaining,
                    };
                    store
                        .merge(TASK, BACKEND, n, &[(PrefixGraph::ripple(n), point)])
                        .expect("writer merge");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    for handle in handles {
        handle.shutdown().expect("shutdown");
    }
    for dir in dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
    let ops = merges_per_writer * writers as u64;
    ClusterRow {
        scenario: "merge_throughput".to_string(),
        shards,
        ops,
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
        max_latency_us: 0.0,
        failures: 0,
    }
}

/// One `query_batch` payload: `batch_size` best-at-delay queries cycling
/// across the cluster's three keys and a spread of delay targets.
fn batch(widths: &[u16], batch_size: usize, round: u64, points: usize) -> Vec<Value> {
    (0..batch_size)
        .map(|j| {
            let n = widths[j % widths.len()];
            let pick = (round as usize * batch_size + j) * 31 % 1024;
            let delay = (points + 2) as f64 * (pick as f64 / 1023.0);
            serde_json::json!({
                "task": TASK, "backend": BACKEND, "n": n,
                "mode": "best_at_delay", "delay": delay,
            })
        })
        .collect()
}

fn main() {
    #[allow(clippy::type_complexity)]
    let (writers, merges_per_writer, points, batch_size, batch_rounds, wire_rounds, failover_reads): (
        usize,
        u64,
        usize,
        usize,
        u64,
        u64,
        u64,
    ) = match scale() {
        Scale::Quick => (3, 1000, 512, 96, 150, 3_000, 50),
        Scale::Paper => (3, 2000, 2048, 96, 1000, 20_000, 200),
    };
    let mut rows = Vec::new();
    println!(
        "{:>24} {:>7} {:>10} {:>14} {:>18} {:>9}",
        "scenario", "shards", "ops", "ops/s", "max latency (µs)", "failures"
    );
    let mut push = |row: ClusterRow| {
        println!(
            "{:>24} {:>7} {:>10} {:>14.1} {:>18.1} {:>9}",
            row.scenario, row.shards, row.ops, row.ops_per_sec, row.max_latency_us, row.failures
        );
        rows.push(row);
    };

    // (a) Merge scaling: identical workload at 1 shard vs 3 shards. The
    // shared-host disk's flush latency wanders, so the two shard counts
    // run interleaved five times and each reports its median — noise
    // reduction, never selection between configurations.
    let median = |mut runs: Vec<ClusterRow>| {
        runs.sort_by(|a, b| {
            a.ops_per_sec
                .partial_cmp(&b.ops_per_sec)
                .expect("finite rates")
        });
        runs.swap_remove(runs.len() / 2)
    };
    let (mut single, mut sharded) = (Vec::new(), Vec::new());
    for rep in 0..5 {
        single.push(merge_scaling(1, writers, merges_per_writer, rep));
        sharded.push(merge_scaling(3, writers, merges_per_writer, rep));
    }
    push(median(single));
    push(median(sharded));

    // (b) Routed scatter/gather queries over a live 3-shard cluster with
    // one follower per primary.
    let peers = reserve_ports(3);
    let mut handles: Vec<ServerHandle> = (0..3)
        .map(|s| Server::spawn(shard_config(s, &peers, 1, None)).expect("spawn"))
        .collect();
    for addr in &peers {
        wait_ready(addr);
    }
    let widths: Vec<u16> = (0..3).map(|s| width_owned_by(s, 3)).collect();
    for (shard, &n) in widths.iter().enumerate() {
        merge_front(&handles[shard], n, points);
    }
    let router = Router::new(Topology::new(0, peers.clone(), 1).expect("topology"))
        .expect("router")
        .with_retry(3, Duration::from_millis(10));
    {
        let t0 = Instant::now();
        for round in 0..batch_rounds {
            let gathered = router
                .query_batch(batch(&widths, batch_size, round, points))
                .expect("routed batch");
            assert_eq!(
                gathered
                    .get("results")
                    .and_then(Value::as_array)
                    .map(<[Value]>::len),
                Some(batch_size),
                "routed batch dropped results"
            );
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let ops = batch_rounds * batch_size as u64;
        push(ClusterRow {
            scenario: "router_query_batch".to_string(),
            shards: 3,
            ops,
            ops_per_sec: ops as f64 / elapsed.max(1e-9),
            max_latency_us: 0.0,
            failures: 0,
        });
    }

    // The single-node baseline: the same fronts and the same batches
    // against one classic (non-cluster) server over one persistent
    // connection.
    {
        let single = Server::spawn(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("single-node server");
        for &n in &widths {
            merge_front(&single, n, points);
        }
        let client = Client::new(single.addr().to_string());
        client
            .wait_until_ready(Duration::from_secs(10))
            .expect("single node ready");
        let t0 = Instant::now();
        for round in 0..batch_rounds {
            let request = Value::Object(vec![
                (
                    "proto".to_string(),
                    Value::String("prefixrl.serve.v1".to_string()),
                ),
                ("cmd".to_string(), Value::String("query_batch".to_string())),
                (
                    "queries".to_string(),
                    Value::Array(batch(&widths, batch_size, round, points)),
                ),
            ]);
            let gathered = client.request(&request).expect("single-node batch");
            assert_eq!(
                gathered
                    .get("results")
                    .and_then(Value::as_array)
                    .map(<[Value]>::len),
                Some(batch_size),
                "single-node batch dropped results"
            );
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let ops = batch_rounds * batch_size as u64;
        push(ClusterRow {
            scenario: "single_node_query_batch".to_string(),
            shards: 1,
            ops,
            ops_per_sec: ops as f64 / elapsed.max(1e-9),
            max_latency_us: 0.0,
            failures: 0,
        });

        // The per-query wire rate on the same node and fronts: one
        // request/response round trip per query over the persistent
        // connection — the rate a client gets *without* batching, and
        // the bar the routed batch has to clear.
        let t0 = Instant::now();
        for i in 0..wire_rounds {
            let n = widths[i as usize % widths.len()];
            let pick = (i as usize * 31) % 1024;
            let delay = (points + 2) as f64 * (pick as f64 / 1023.0);
            let response = client
                .query_best_at_delay(TASK, BACKEND, n, delay)
                .expect("wire query");
            assert_eq!(
                response.get("result").and_then(|r| r.get("found")),
                Some(&Value::Bool(true)),
                "wire query missed"
            );
        }
        let elapsed = t0.elapsed().as_secs_f64();
        single.shutdown().expect("shutdown");
        push(ClusterRow {
            scenario: "single_node_wire_query".to_string(),
            shards: 1,
            ops: wire_rounds,
            ops_per_sec: wire_rounds as f64 / elapsed.max(1e-9),
            max_latency_us: 0.0,
            failures: 0,
        });
    }

    // (c) Failover: kill shard 1 and read its key through the router —
    // served by its ring follower (shard 2). The first read eats the
    // reconnect, so its latency is the row's max; every read must answer.
    let victim = 1usize;
    let follower = 2usize;
    let n = widths[victim];
    let want = serde_json::to_string(
        &handles[victim]
            .jobs()
            .store()
            .front_json(TASK, BACKEND, n, false),
    )
    .expect("front json");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = serde_json::to_string(
            &handles[follower]
                .jobs()
                .store()
                .front_json(TASK, BACKEND, n, false),
        )
        .expect("front json");
        if got == want {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(20));
    }
    handles.remove(victim).shutdown().expect("kill victim");

    let mut failures = 0u64;
    let mut max_latency_us: f64 = 0.0;
    let t0 = Instant::now();
    for i in 0..failover_reads {
        let t1 = Instant::now();
        let response = router.query(
            TASK,
            BACKEND,
            n,
            "best_at_delay",
            vec![(
                "delay".to_string(),
                Value::Number(serde_json::Number::Float(1e9)),
            )],
        );
        let us = t1.elapsed().as_secs_f64() * 1e6;
        max_latency_us = max_latency_us.max(us);
        match response {
            Ok(v) if v.get("result").and_then(|r| r.get("found")) == Some(&Value::Bool(true)) => {}
            other => {
                failures += 1;
                eprintln!("failover read {i} failed: {other:?}");
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(failures, 0, "failover reads must never fail");
    assert!(
        max_latency_us < 1e6,
        "slowest failover read took {max_latency_us}µs (must be < 1s)"
    );
    push(ClusterRow {
        scenario: "failover_read".to_string(),
        shards: 3,
        ops: failover_reads,
        ops_per_sec: failover_reads as f64 / elapsed.max(1e-9),
        max_latency_us,
        failures,
    });

    for handle in handles {
        handle.shutdown().expect("shutdown");
    }

    let merge_ratio = rows[1].ops_per_sec / rows[0].ops_per_sec;
    write_bench_cluster(
        *widths.iter().max().expect("widths"),
        &rows,
        &format!(
            "merge_throughput rows (replication off; median of five interleaved \
             runs per shard count, reducing shared-host disk noise) measure one \
             preallocated-WAL record fsync per merge: a single node serializes \
             every fsync behind one store mutex, per-shard WALs overlap them as \
             pure data writeback. Merge scaling this run: {merge_ratio:.2}x at \
             3 shards; the ratio is bounded by the host device's concurrent \
             flush parallelism, which wandered between ~1.5x and ~2.0x across \
             tuning sessions on this shared single-disk VM. \
             router_query_batch pipelines per-shard sub-batches over \
             persistent connections; single_node_wire_query is the unbatched \
             per-query rate the routed batch must beat, and \
             single_node_query_batch (one node parsing the whole batch in one \
             request) is recorded for transparency — on this single-core host \
             the scatter's extra round trips make exceeding it impossible, \
             while multi-core deployments answer the sub-batches in parallel. \
             failover_read runs the full replicated path.",
        ),
    );
}
