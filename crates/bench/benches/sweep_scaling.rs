//! Experiment-session scaling: multi-weight sweeps fanned out over the
//! shared EvalService/cache stack (the Section IV-D ensemble shape behind
//! the new `Experiment` API). Measures total steps/sec and shared-cache
//! hit rate as the number of concurrently training agents grows, and dumps
//! `BENCH_sweep.json` at the workspace root.
//!
//! ```sh
//! cargo bench -p prefixrl-bench --bench sweep_scaling
//! PREFIXRL_SCALE=paper cargo bench -p prefixrl-bench --bench sweep_scaling
//! ```

use prefixrl_bench as support;
use prefixrl_core::agent::AgentConfig;
use prefixrl_core::experiment::{Experiment, Weights};
use std::time::Instant;

fn main() {
    let (n, steps, agents) = match support::scale() {
        support::Scale::Quick => (8u16, 400u64, 6usize),
        support::Scale::Paper => (16, 5_000, 15),
    };
    println!("Experiment sweep scaling (n={n}, {steps} steps/agent, {agents} agents)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>13} {:>9}",
        "threads", "elapsed(s)", "steps/sec", "cache hit(%)", "merged front", "designs"
    );

    let mut rows = Vec::new();
    for concurrency in [1usize, 2, 4, agents] {
        let mut base = AgentConfig::tiny(n, 0.5);
        base.total_steps = steps;
        let experiment = Experiment::builder()
            .n(n)
            .weights(Weights::linspace(0.10, 0.99, agents))
            .steps(steps)
            .base_config(base)
            .eval_threads(concurrency)
            .build();
        let t0 = Instant::now();
        let result = experiment.run_quiet().expect("sweep");
        let elapsed = t0.elapsed().as_secs_f64();
        let total_steps = result.total_steps();
        let designs: usize = result.records.iter().map(|r| r.designs.len()).sum();
        let row = support::SweepRow {
            agents,
            concurrency,
            steps_per_agent: steps,
            steps_per_sec: total_steps as f64 / elapsed.max(1e-9),
            cache_hit_rate: result.cache.hit_rate,
            merged_front: result.merged_front().len(),
            designs,
        };
        println!(
            "{:>8} {:>12.2} {:>14.1} {:>14.1} {:>13} {:>9}",
            row.concurrency,
            elapsed,
            row.steps_per_sec,
            100.0 * row.cache_hit_rate,
            row.merged_front,
            row.designs
        );
        rows.push(row);
    }
    support::write_bench_sweep(n, &rows);
}
