//! Resident-service throughput: jobs/sec and submit-to-first-event
//! latency under a burst of sweep jobs (DESIGN.md §13).
//!
//! Boots an in-process `prefixrl-serve` server per worker count, submits a
//! burst of small jobs across all three circuit tasks, waits for the
//! queue to drain, and measures end-to-end job throughput plus the
//! latency from submit to each job's first streamed event — the two
//! numbers that gate interactive use of the service. Writes the
//! `BENCH_serve.json` artifact.
//!
//! ```sh
//! cargo bench -p prefixrl-bench --bench serve_throughput
//! PREFIXRL_SCALE=paper cargo bench -p prefixrl-bench --bench serve_throughput
//! ```

use prefixrl_bench::{scale, write_bench_serve, Scale, ServeRow};
use prefixrl_serve::{Client, JobSpec, ServeConfig, Server};
use serde_json::Value;
use std::time::{Duration, Instant};

fn num(v: &Value) -> f64 {
    match v {
        Value::Number(n) => n.as_f64(),
        other => panic!("expected a number, got {other:?}"),
    }
}

fn main() {
    let (n, jobs, steps): (u16, usize, u64) = match scale() {
        Scale::Quick => (8, 6, 120),
        Scale::Paper => (16, 12, 1000),
    };
    let weights = vec![0.3, 0.7];
    let tasks = ["adder", "prefix-or", "incrementer"];

    let mut rows = Vec::new();
    println!(
        "{:>8} {:>6} {:>12} {:>22} {:>22} {:>10}",
        "workers", "jobs", "jobs/s", "first-event mean (s)", "first-event max (s)", "hit rate"
    );
    for workers in [1usize, 2, 4] {
        let handle = Server::spawn(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            ..ServeConfig::default()
        })
        .expect("server boots");
        let client = Client::new(handle.addr().to_string());
        client
            .wait_until_ready(Duration::from_secs(10))
            .expect("server ready");

        // Counter snapshot before the burst: the row's hit rate is the
        // delta across this burst only, not whatever accumulated on the
        // stack beforehand.
        let ping0 = client.ping().expect("ping");
        let hits0 = num(ping0.get("cache").unwrap().get("hits").unwrap());
        let misses0 = num(ping0.get("cache").unwrap().get("misses").unwrap());

        let t0 = Instant::now();
        let ids: Vec<u64> = (0..jobs)
            .map(|i| {
                client
                    .submit(&JobSpec {
                        task: tasks[i % tasks.len()].to_string(),
                        backend: "analytical".to_string(),
                        n,
                        weights: weights.clone(),
                        steps,
                        // Row-distinct seed block, so each configuration's
                        // burst is an independently seeded workload and the
                        // per-row hit rate is genuinely per-row.
                        seed: (workers * jobs + i) as u64,
                    })
                    .expect("submit accepted")
            })
            .collect();
        let mut latencies = Vec::new();
        for id in &ids {
            let snapshot = client
                .wait_for_phase(*id, &["done", "failed"], Duration::from_secs(600))
                .expect("job finishes");
            assert_eq!(
                snapshot.get("phase").unwrap(),
                &Value::String("done".into()),
                "job {id} failed"
            );
            latencies.push(num(snapshot.get("submit_to_first_event_sec").unwrap()));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let ping = client.ping().expect("ping");
        let hits = num(ping.get("cache").unwrap().get("hits").unwrap()) - hits0;
        let misses = num(ping.get("cache").unwrap().get("misses").unwrap()) - misses0;
        handle.shutdown().expect("graceful shutdown");

        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let max = latencies.iter().copied().fold(0.0, f64::max);
        let row = ServeRow {
            workers,
            jobs,
            weights_per_job: weights.len(),
            steps_per_agent: steps,
            jobs_per_sec: jobs as f64 / elapsed.max(1e-9),
            submit_to_first_event_sec_mean: mean,
            submit_to_first_event_sec_max: max,
            cache_hit_rate: hits / (hits + misses).max(1.0),
            cache_hits: hits as u64,
            cache_misses: misses as u64,
        };
        println!(
            "{:>8} {:>6} {:>12.2} {:>22.4} {:>22.4} {:>9.0}%",
            row.workers,
            row.jobs,
            row.jobs_per_sec,
            row.submit_to_first_event_sec_mean,
            row.submit_to_first_event_sec_max,
            100.0 * row.cache_hit_rate
        );
        rows.push(row);
    }
    write_bench_serve(n, &rows);
}
