//! Section V-C / IV-D systems claims: parallel synthesis speedup (the paper
//! reports 8× from its asynchronous infrastructure) and synthesis-cache hit
//! rates during training (50% at 32b, 10% at 64b in the paper).

use netlist::Library;
use prefix_graph::{Action, Node, PrefixGraph};
use prefixrl_bench as support;
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::CachedEvaluator;
use prefixrl_core::evalsvc::EvalService;
use prefixrl_core::evaluator::Evaluator;
use prefixrl_core::experiment::AsyncRunner;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;
use std::time::Instant;
use synth::sweep::SweepConfig;

fn main() {
    let lib = Library::nangate45();
    let (n, jobs, steps) = match support::scale() {
        support::Scale::Quick => (16u16, 32usize, 600u64),
        support::Scale::Paper => (32u16, 192, 20_000),
    };
    println!("Scaling reproduction (n={n})\n");

    // --- Parallel synthesis speedup --------------------------------------
    // A batch of distinct graphs (ripple + random shortcut patterns).
    let graphs: Vec<PrefixGraph> = (0..jobs)
        .map(|i| {
            let mut g = PrefixGraph::ripple(n);
            let m = 2 + (i as u16 * 3) % (n - 2);
            let l = 1 + (i as u16) % m.max(2).min(n - 2).max(1);
            let node = Node::new(m.max(l + 1), l.min(m.max(l + 1) - 1));
            let _ = g.apply(Action::Add(node));
            g
        })
        .collect();
    let evaluator: Arc<dyn Evaluator> = Arc::new(TaskEvaluator::synthesis(
        Adder,
        lib.clone(),
        SweepConfig::fast(),
        0.5,
    ));
    let mut base_ms = 0.0;
    println!("parallel synthesis of {jobs} states:");
    let max_threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(8);
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > max_threads * 2 {
            break;
        }
        let service = EvalService::new(Arc::clone(&evaluator), threads);
        let t = Instant::now();
        let _ = service.evaluate_many(&graphs);
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        if threads == 1 {
            base_ms = ms;
        }
        println!(
            "  {threads:>2} workers: {ms:>8.1} ms  speedup {:.2}x",
            base_ms / ms
        );
    }

    // --- Cache hit rate during training -----------------------------------
    println!("\ncache hit rate during synthesis-in-loop training:");
    for width in [8u16, 12, 16] {
        let ev = Arc::new(CachedEvaluator::new(TaskEvaluator::synthesis(
            Adder,
            lib.clone(),
            SweepConfig::fast(),
            0.5,
        )));
        let mut cfg = AgentConfig::small(width, 0.5, steps);
        cfg.env = prefixrl_core::env::EnvConfig::synthesis(width);
        let _ = TrainLoop::run(&cfg, ev.clone());
        println!(
            "  {width:>2}b: {:>5.1}% hits over {} evaluations ({} unique states)",
            100.0 * ev.hit_rate(),
            ev.hits() + ev.misses(),
            ev.unique_states()
        );
    }

    // --- Async actor/learner throughput ----------------------------------
    // Each actor count runs twice: greedy forwards routed through the
    // cross-actor inference broker (one fused, memoized Q-network forward
    // over the unique pending states per service cycle — the default) and
    // per-actor. Each environment step is one policy decision, so
    // env-steps/s is decisions/s. The analytical evaluator keeps this
    // section *inference-bound* — it isolates the decision path the
    // broker batches, where the synthesis sections above already measure
    // the oracle-bound path.
    println!("\nasync actor/learner (paper Sec. IV-D architecture):");
    let mut rows = Vec::new();
    for actors in [1usize, 2, 4, 8] {
        for broker in [false, true] {
            let ev = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
            let cfg = AgentConfig::small(16, 0.5, steps);
            let runner = AsyncRunner {
                actors,
                batched_inference: broker,
            };
            let t = Instant::now();
            let result = runner.train(&cfg, ev.clone());
            let steps_per_sec = steps as f64 / t.elapsed().as_secs_f64();
            println!(
                "  {actors} actors, broker {:>3}: {steps_per_sec:>6.1} decisions/s \
                 ({} designs, hit rate {:.0}%)",
                if broker { "on" } else { "off" },
                result.designs.len(),
                100.0 * ev.hit_rate(),
            );
            rows.push(support::ScalingRow {
                actors,
                broker,
                envs_per_actor: cfg.envs_per_actor,
                steps,
                steps_per_sec,
                cache_hit_rate: ev.hit_rate(),
                designs: result.designs.len(),
            });
        }
    }
    support::write_bench_scaling(16, &rows);
}
