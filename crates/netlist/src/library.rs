//! Calibrated cell-library models.
//!
//! A [`Library`] supplies, per cell type and drive strength: cell area,
//! per-pin input capacitance, intrinsic delay, per-pin delay offsets (for
//! pin swapping) and drive resistance. Arc delay follows the linear delay
//! model `d = intrinsic + pin_offset + R_drive · C_load`, with load the sum
//! of sink pin capacitances plus a fanout-proportional wire capacitance.
//!
//! Two calibrations are provided:
//!
//! - [`Library::nangate45`] — values inspired by the open-source Nangate45
//!   (FreePDK45) library the paper trains with: X1 NAND2 ≈ 0.8 µm²,
//!   FO4 inverter delay ≈ 25 ps;
//! - [`Library::tech8`] — a scaled stand-in for the paper's industrial 8 nm
//!   library (~100× smaller area, faster cells, more drive options), used
//!   for the Fig. 5 cross-library generalization experiments.
//!
//! Absolute accuracy against the real libraries is *not* the goal (the paper
//! itself only compares shapes across tools); responding to structure the
//! way real synthesis does — fanout costs load, load costs delay, upsizing
//! buys delay with area — is.

use crate::cell::{CellType, Drive};
use serde::{Deserialize, Serialize};

/// Timing/area parameters for one cell type at drive X1.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CellParams {
    /// Cell area at X1, µm².
    pub area: f64,
    /// Input pin capacitance at X1, fF.
    pub input_cap: f64,
    /// Intrinsic (zero-load) delay, ns.
    pub intrinsic: f64,
    /// Output drive resistance at X1, ns/fF.
    pub resistance: f64,
}

/// A technology library: per-cell-type parameters plus global scaling rules.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Library {
    name: String,
    params: Vec<(CellType, CellParams)>,
    /// Maximum available drive strength.
    max_drive: Drive,
    /// Wire capacitance added per fanout connection, fF.
    wire_cap_per_fanout: f64,
    /// Output load seen by primary outputs, fF.
    output_load: f64,
    /// Area growth per drive doubling relative to X1
    /// (`area(d) = area · (1 + area_slope·(d-1))`).
    area_slope: f64,
    /// Intrinsic delay growth per drive step (larger cells are slightly
    /// slower unloaded).
    intrinsic_slope: f64,
}

impl Library {
    /// The Nangate45-inspired 45 nm calibration (the paper's open flow).
    pub fn nangate45() -> Library {
        use CellType::*;
        let p = |area, input_cap, intrinsic, resistance| CellParams {
            area,
            input_cap,
            intrinsic,
            resistance,
        };
        Library {
            name: "nangate45".to_string(),
            params: vec![
                (Inv, p(0.532, 1.6, 0.008, 0.0027)),
                (Buf, p(0.798, 1.5, 0.016, 0.0025)),
                (Nand2, p(0.798, 1.6, 0.010, 0.0035)),
                (Nor2, p(0.798, 1.7, 0.012, 0.0045)),
                (And2, p(1.064, 1.5, 0.018, 0.0030)),
                (Or2, p(1.064, 1.5, 0.020, 0.0032)),
                (Xor2, p(1.596, 2.2, 0.024, 0.0050)),
                (Xnor2, p(1.596, 2.2, 0.024, 0.0050)),
                (Aoi21, p(1.064, 1.8, 0.013, 0.0045)),
                (Oai21, p(1.064, 1.8, 0.014, 0.0048)),
            ],
            max_drive: Drive::new(16),
            wire_cap_per_fanout: 0.9,
            output_load: 3.2,
            area_slope: 0.75,
            intrinsic_slope: 0.04,
        }
    }

    /// The scaled 8 nm-class calibration standing in for the paper's
    /// industrial library (Fig. 5): ~100× smaller cells, faster intrinsics,
    /// lower capacitances and a deeper drive ladder, as a leading-edge
    /// commercial library offers.
    pub fn tech8() -> Library {
        let mut lib = Library::nangate45();
        lib.name = "tech8".to_string();
        for (_, p) in &mut lib.params {
            p.area /= 90.0;
            p.input_cap /= 8.0;
            p.intrinsic /= 1.45;
            p.resistance *= 7.2;
        }
        lib.max_drive = Drive::new(32);
        lib.wire_cap_per_fanout /= 8.0;
        lib.output_load /= 8.0;
        lib.area_slope = 0.85;
        lib
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The strongest drive available for any cell.
    pub fn max_drive(&self) -> Drive {
        self.max_drive
    }

    /// Wire capacitance model: extra load per fanout connection, fF.
    pub fn wire_cap(&self, fanout: usize) -> f64 {
        self.wire_cap_per_fanout * fanout as f64
    }

    /// Capacitive load presented by a primary output, fF.
    pub fn output_load(&self) -> f64 {
        self.output_load
    }

    fn x1(&self, ct: CellType) -> &CellParams {
        &self
            .params
            .iter()
            .find(|(t, _)| *t == ct)
            .expect("all cell types present")
            .1
    }

    /// Cell area at the given drive, µm².
    pub fn area(&self, ct: CellType, drive: Drive) -> f64 {
        let base = self.x1(ct).area;
        base * (1.0 + self.area_slope * (drive.x() as f64 - 1.0))
    }

    /// Input pin capacitance at the given drive, fF.
    ///
    /// Scales linearly with drive (larger input transistors).
    pub fn input_cap(&self, ct: CellType, drive: Drive) -> f64 {
        self.x1(ct).input_cap * drive.x() as f64
    }

    /// Intrinsic delay at the given drive, ns.
    pub fn intrinsic(&self, ct: CellType, drive: Drive) -> f64 {
        self.x1(ct).intrinsic * (1.0 + self.intrinsic_slope * (drive.x() as f64 - 1.0).ln_1p())
    }

    /// Per-pin extra delay, ns — later pins are closer to the output stack
    /// and faster, which is what pin swapping exploits.
    pub fn pin_offset(&self, ct: CellType, pin: usize) -> f64 {
        let arity = ct.arity();
        debug_assert!(pin < arity);
        // First pin slowest; last pin fastest. Scale with intrinsic.
        let step = self.x1(ct).intrinsic * 0.18;
        (arity - 1 - pin) as f64 * step
    }

    /// Output drive resistance at the given drive, ns/fF.
    pub fn resistance(&self, ct: CellType, drive: Drive) -> f64 {
        self.x1(ct).resistance / drive.x() as f64
    }

    /// Arc delay through `pin` of a cell driving `load` fF, ns.
    pub fn arc_delay(&self, ct: CellType, drive: Drive, pin: usize, load: f64) -> f64 {
        self.intrinsic(ct, drive) + self.pin_offset(ct, pin) + self.resistance(ct, drive) * load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fo4_inverter_delay_is_plausible_45nm() {
        // FO4: an inverter driving 4 inverter inputs ≈ 20–35 ps in 45 nm.
        let lib = Library::nangate45();
        let load = 4.0 * lib.input_cap(CellType::Inv, Drive::X1) + lib.wire_cap(4);
        let d = lib.arc_delay(CellType::Inv, Drive::X1, 0, load);
        assert!((0.015..=0.040).contains(&d), "FO4 = {d} ns");
    }

    #[test]
    fn upsizing_trades_area_for_resistance() {
        let lib = Library::nangate45();
        let x1 = Drive::X1;
        let x4 = Drive::new(4);
        assert!(lib.area(CellType::Nand2, x4) > 2.0 * lib.area(CellType::Nand2, x1));
        assert!(lib.resistance(CellType::Nand2, x4) < lib.resistance(CellType::Nand2, x1) / 2.0);
        assert!(lib.input_cap(CellType::Nand2, x4) > lib.input_cap(CellType::Nand2, x1));
    }

    #[test]
    fn tech8_is_much_smaller_and_faster() {
        let n45 = Library::nangate45();
        let t8 = Library::tech8();
        for ct in CellType::all() {
            assert!(t8.area(ct, Drive::X1) < n45.area(ct, Drive::X1) / 50.0);
            assert!(t8.intrinsic(ct, Drive::X1) < n45.intrinsic(ct, Drive::X1));
        }
        assert!(t8.max_drive() > n45.max_drive());
    }

    #[test]
    fn pin_offsets_decrease_toward_last_pin() {
        let lib = Library::nangate45();
        let a = lib.pin_offset(CellType::Aoi21, 0);
        let b = lib.pin_offset(CellType::Aoi21, 1);
        let c = lib.pin_offset(CellType::Aoi21, 2);
        assert!(a > b && b > c);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn all_cell_types_have_params() {
        let lib = Library::nangate45();
        for ct in CellType::all() {
            assert!(lib.area(ct, Drive::X1) > 0.0);
            assert!(lib.input_cap(ct, Drive::X1) > 0.0);
            assert!(lib.resistance(ct, Drive::X1) > 0.0);
        }
    }

    #[test]
    fn arc_delay_monotone_in_load() {
        let lib = Library::nangate45();
        let d1 = lib.arc_delay(CellType::Oai21, Drive::X1, 2, 2.0);
        let d2 = lib.arc_delay(CellType::Oai21, Drive::X1, 2, 8.0);
        assert!(d2 > d1);
    }
}
