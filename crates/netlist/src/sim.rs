//! Functional simulation of netlists.
//!
//! Used throughout the test suite to verify that generated and optimized
//! adder netlists still compute `a + b` — the equivalence oracle for every
//! structural transform (sizing and buffering must be logic-preserving,
//! and the generator itself is checked against `u128` addition).

use crate::ir::Netlist;

/// Evaluates the netlist on the given primary input values.
///
/// Returns primary output values in declaration order.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn eval(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    assert_eq!(inputs.len(), nl.inputs().len(), "input width mismatch");
    let mut values = vec![false; nl.num_nets()];
    for (&net, &v) in nl.inputs().iter().zip(inputs) {
        values[net.index()] = v;
    }
    for id in nl.topo_order() {
        let gate = nl.gate(id);
        let ins: Vec<bool> = gate.inputs().iter().map(|&n| values[n.index()]).collect();
        values[gate.output().index()] = gate.kind.cell_type.eval(&ins);
    }
    nl.outputs().iter().map(|&n| values[n.index()]).collect()
}

/// Evaluates an adder netlist (as produced by [`crate::adder::generate`])
/// on operands `a` and `b`, returning the full `N+1`-bit sum.
///
/// # Panics
///
/// Panics if the netlist does not have `2N` inputs and `N+1` outputs, if
/// `N > 64`, or if the operands do not fit in `N` bits.
pub fn add(nl: &Netlist, a: u64, b: u64) -> u128 {
    let n = nl.inputs().len() / 2;
    assert_eq!(nl.inputs().len(), 2 * n, "expected 2N adder inputs");
    assert_eq!(nl.outputs().len(), n + 1, "expected N+1 adder outputs");
    assert!(n <= 64, "operand width {n} too large");
    if n < 64 {
        assert!(a < (1 << n) && b < (1 << n), "operands exceed {n} bits");
    }
    let mut inputs = Vec::with_capacity(2 * n);
    for i in 0..n {
        inputs.push((a >> i) & 1 == 1);
    }
    for i in 0..n {
        inputs.push((b >> i) & 1 == 1);
    }
    let out = eval(nl, &inputs);
    let mut sum: u128 = 0;
    for (i, &bit) in out.iter().enumerate() {
        if bit {
            sum |= 1 << i;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellType;

    #[test]
    fn eval_simple_gate() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        let b = nl.add_input();
        let y = nl.add_gate(CellType::Xor2, &[a, b]);
        nl.mark_output(y);
        assert_eq!(eval(&nl, &[true, false]), vec![true]);
        assert_eq!(eval(&nl, &[true, true]), vec![false]);
    }

    #[test]
    fn eval_handles_buffer_chains() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        let mut x = a;
        for _ in 0..5 {
            x = nl.add_gate(CellType::Buf, &[x]);
        }
        nl.mark_output(x);
        assert_eq!(eval(&nl, &[true]), vec![true]);
    }

    #[test]
    fn eval_follows_drivers_not_insertion_order() {
        // Insert a buffer after consumers exist: topo order must still work.
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        let inv = nl.add_gate(CellType::Inv, &[a]);
        let out = nl.add_gate(CellType::Inv, &[inv]);
        nl.mark_output(out);
        let sinks = nl.sink_map()[inv.index()].clone();
        nl.insert_buffer(inv, crate::cell::Drive::X1, &sinks);
        nl.validate().unwrap();
        assert_eq!(eval(&nl, &[true]), vec![true]);
        assert_eq!(eval(&nl, &[false]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn eval_checks_width() {
        let mut nl = Netlist::new("t");
        let _ = nl.add_input();
        eval(&nl, &[]);
    }

    #[test]
    fn add_matches_reference_on_edge_cases() {
        let nl = crate::adder::generate(&prefix_graph::structures::sklansky(64));
        let cases = [
            (0u64, 0u64),
            (u64::MAX, 1),
            (u64::MAX, u64::MAX),
            (0x8000_0000_0000_0000, 0x8000_0000_0000_0000),
            (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
        ];
        for (a, b) in cases {
            assert_eq!(add(&nl, a, b), a as u128 + b as u128, "{a}+{b}");
        }
    }
}
