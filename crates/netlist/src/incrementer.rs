//! AND-prefix incrementers.
//!
//! The second non-adder application from the paper's introduction: an
//! incrementer `s = a + 1` needs the carry `c_i = a_i & a_{i-1} & … & a_0`,
//! i.e. an AND-prefix network, followed by `s_i = a_i ⊕ c_{i-1}`. The same
//! prefix graphs drive it, with NAND on odd levels and NOR on even levels
//! (`NOR(!a, !b) = a & b`).

use crate::cell::CellType;
use crate::ir::{NetId, Netlist};
use prefix_graph::{Node, PrefixGraph};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pol {
    True,
    Comp,
}

struct AndNet {
    net: NetId,
    pol: Pol,
    inv: Option<NetId>,
}

/// Generates the incrementer netlist of `graph`: inputs `a₀…a_{N-1}`,
/// outputs `s₀…s_{N-1}, cout` with `s = a + 1`.
///
/// # Example
///
/// ```
/// use prefix_graph::structures;
/// use netlist::{incrementer, sim};
///
/// let nl = incrementer::generate(&structures::sklansky(8));
/// assert_eq!(incrementer::increment(&nl, 41), 42);
/// assert_eq!(incrementer::increment(&nl, 255), 256); // carries out
/// ```
pub fn generate(graph: &PrefixGraph) -> Netlist {
    let n = graph.n() as usize;
    let mut nl = Netlist::new(format!("incrementer_{n}b"));
    let a: Vec<NetId> = (0..n).map(|_| nl.add_input()).collect();
    let idx = |node: Node| node.msb() as usize * n + node.lsb() as usize;
    let mut vals: Vec<Option<AndNet>> = (0..n * n).map(|_| None).collect();
    for (i, &ai) in a.iter().enumerate() {
        vals[i * n + i] = Some(AndNet {
            net: ai,
            pol: Pol::True,
            inv: None,
        });
    }
    fn get(nl: &mut Netlist, vals: &mut [Option<AndNet>], i: usize, want: Pol) -> NetId {
        let e = vals[i].as_ref().expect("parent before child");
        if e.pol == want {
            return e.net;
        }
        if let Some(inv) = e.inv {
            return inv;
        }
        let src = e.net;
        let inv = nl.add_gate(CellType::Inv, &[src]);
        vals[i].as_mut().unwrap().inv = Some(inv);
        inv
    }
    for m in 0..graph.n() {
        for l in (0..m).rev() {
            let node = Node::new(m, l);
            if !graph.contains(node) {
                continue;
            }
            let level = graph.level(node).expect("present");
            let up = idx(graph.up(node).expect("op"));
            let lp = idx(graph.lp(node).expect("op"));
            // Odd levels: NAND(a, b) = !(a & b) over true inputs.
            // Even levels: NOR(!a, !b) = a & b over complemented inputs.
            let (want, cell, out_pol) = if level % 2 == 1 {
                (Pol::True, CellType::Nand2, Pol::Comp)
            } else {
                (Pol::Comp, CellType::Nor2, Pol::True)
            };
            let x = get(&mut nl, &mut vals, up, want);
            let y = get(&mut nl, &mut vals, lp, want);
            let net = nl.add_gate(cell, &[x, y]);
            vals[idx(node)] = Some(AndNet {
                net,
                pol: out_pol,
                inv: None,
            });
        }
    }
    // s_0 = !a_0 ; s_i = a_i ⊕ c_{i-1} with c = AND-prefix; cout = c_{N-1}.
    let s0 = get(&mut nl, &mut vals, 0, Pol::Comp);
    let mut outs = vec![s0];
    for (i, &a_i) in a.iter().enumerate().take(n).skip(1) {
        let c_idx = (i - 1) * n;
        let pol = vals[c_idx].as_ref().unwrap().pol;
        let s = match pol {
            // XOR(a, c) directly; with complemented carry use XNOR.
            Pol::True => {
                let c = get(&mut nl, &mut vals, c_idx, Pol::True);
                nl.add_gate(CellType::Xor2, &[a_i, c])
            }
            Pol::Comp => {
                let cb = get(&mut nl, &mut vals, c_idx, Pol::Comp);
                nl.add_gate(CellType::Xnor2, &[a_i, cb])
            }
        };
        outs.push(s);
    }
    let cout = get(&mut nl, &mut vals, (n - 1) * n, Pol::True);
    for s in outs {
        nl.mark_output(s);
    }
    nl.mark_output(cout);
    nl.prune_dead();
    nl
}

/// The word-level golden model for testing: `a + 1` over an `n`-bit
/// operand, carry-out included in the result (mirrors
/// [`crate::prefix_or::reference`]; the bit-level generalization lives on
/// `prefixrl_core::task::Incrementer`).
///
/// # Panics
///
/// Panics if `n > 63` or the operand exceeds `n` bits.
pub fn reference(a: u64, n: usize) -> u64 {
    assert!(n <= 63, "width too large");
    assert!(a < (1u64 << n), "operand exceeds {n} bits");
    a + 1
}

/// Evaluates an incrementer netlist, returning `a + 1` (with carry-out as
/// the top bit).
///
/// # Panics
///
/// Panics if the netlist shape is not `N` inputs / `N+1` outputs, `N > 63`,
/// or the operand exceeds `N` bits.
pub fn increment(nl: &Netlist, a: u64) -> u64 {
    let n = nl.inputs().len();
    assert_eq!(nl.outputs().len(), n + 1, "expected N+1 outputs");
    assert!(n <= 63, "width too large");
    assert!(a < (1u64 << n), "operand exceeds {n} bits");
    let inputs: Vec<bool> = (0..n).map(|i| (a >> i) & 1 == 1).collect();
    let out = crate::sim::eval(nl, &inputs);
    out.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefix_graph::structures;

    #[test]
    fn increments_exhaustive_8b() {
        for (_, ctor) in structures::all_regular() {
            let nl = generate(&ctor(8));
            for a in 0..256u64 {
                assert_eq!(increment(&nl, a), reference(a, 8));
            }
        }
    }

    #[test]
    fn increments_random_32b() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        let nl = generate(&structures::han_carlson(32));
        for _ in 0..100 {
            let a = rng.random::<u64>() & 0xFFFF_FFFF;
            assert_eq!(increment(&nl, a), a + 1);
        }
    }

    #[test]
    fn carry_chain_overflow() {
        let nl = generate(&structures::brent_kung(16));
        assert_eq!(increment(&nl, 0xFFFF), 0x10000);
    }

    #[test]
    fn cheaper_than_full_adder() {
        let g = structures::sklansky(16);
        assert!(generate(&g).num_gates() < crate::adder::generate(&g).num_gates());
    }
}
