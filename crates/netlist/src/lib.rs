//! Gate-level netlist IR, cell-library models and prefix-adder generation.
//!
//! This crate provides the circuit substrate under the PrefixRL environment:
//!
//! - [`cell`]: logic cell types (NAND/NOR/AOI/OAI/XNOR/INV/BUF/…) with
//!   functional semantics and drive strengths;
//! - [`library`]: calibrated cell libraries — a Nangate45-inspired 45 nm
//!   library (the paper's open-source flow) and a scaled "tech8" library
//!   standing in for the paper's industrial 8 nm library;
//! - [`ir`]: a mutable gate-level [`ir::Netlist`] with topological
//!   traversal, gate resizing and buffer insertion (the operations the
//!   synthesis optimizer performs);
//! - [`adder`]: generation of prefix-adder netlists from
//!   [`PrefixGraph`](prefix_graph::PrefixGraph)s in the alternating-polarity
//!   style of Zimmermann used by the paper (NAND/NOR, OAI/AOI, XNOR, INV);
//! - [`sim`]: functional simulation for equivalence checking against `u128`
//!   reference addition;
//! - [`verilog`]: structural Verilog export.
//!
//! # Example
//!
//! ```
//! use prefix_graph::structures;
//! use netlist::{adder, sim};
//!
//! let graph = structures::brent_kung(8);
//! let nl = adder::generate(&graph);
//! let sum = sim::add(&nl, 25, 17);
//! assert_eq!(sum, 42);
//! ```

#![warn(missing_docs)]

pub mod adder;
pub mod cell;
pub mod incrementer;
pub mod ir;
pub mod library;
pub mod prefix_or;
pub mod sim;
pub mod verilog;

pub use cell::{CellKind, CellType, Drive};
pub use ir::{Gate, GateId, NetId, Netlist};
pub use library::Library;
