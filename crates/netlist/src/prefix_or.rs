//! OR-prefix circuits: priority encoders and leading-zero logic.
//!
//! The paper's introduction motivates prefix graphs beyond adders: any
//! associative operator fits the same networks. With `∘ = OR`, the outputs
//! `y_i = x_i | x_{i-1} | … | x_0` form the spine of priority encoders and
//! leading-zero detectors. This generator maps a prefix graph to an
//! OR-prefix netlist using the same alternating-polarity discipline as the
//! adder (NOR on odd levels, NAND on even levels, INV for parity fixes), so
//! every synthesis and RL code path exercises non-adder circuits too.

use crate::cell::CellType;
use crate::ir::{NetId, Netlist};
use prefix_graph::{Node, PrefixGraph};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pol {
    True,
    Comp,
}

struct OrNet {
    net: NetId,
    pol: Pol,
    inv: Option<NetId>,
}

/// Generates the OR-prefix netlist of `graph`: inputs `x₀…x_{N-1}`,
/// outputs `y_i = x_i | … | x₀` for every bit.
///
/// # Example
///
/// ```
/// use prefix_graph::structures;
/// use netlist::{prefix_or, sim};
///
/// let nl = prefix_or::generate(&structures::brent_kung(8));
/// // Highest set bit of 0b0010_0000 propagates to all higher outputs.
/// let out = sim::eval(&nl, &[false, false, false, false, false, true, false, false]);
/// assert_eq!(out, vec![false, false, false, false, false, true, true, true]);
/// ```
pub fn generate(graph: &PrefixGraph) -> Netlist {
    let n = graph.n() as usize;
    let mut nl = Netlist::new(format!("prefix_or_{n}b"));
    let x: Vec<NetId> = (0..n).map(|_| nl.add_input()).collect();
    let idx = |node: Node| node.msb() as usize * n + node.lsb() as usize;
    let mut vals: Vec<Option<OrNet>> = (0..n * n).map(|_| None).collect();
    for (i, &xi) in x.iter().enumerate() {
        vals[i * n + i] = Some(OrNet {
            net: xi,
            pol: Pol::True,
            inv: None,
        });
    }
    fn get(nl: &mut Netlist, vals: &mut [Option<OrNet>], i: usize, want: Pol) -> NetId {
        let e = vals[i].as_ref().expect("parent before child");
        if e.pol == want {
            return e.net;
        }
        if let Some(inv) = e.inv {
            return inv;
        }
        let src = e.net;
        let inv = nl.add_gate(CellType::Inv, &[src]);
        vals[i].as_mut().unwrap().inv = Some(inv);
        inv
    }
    for m in 0..graph.n() {
        for l in (0..m).rev() {
            let node = Node::new(m, l);
            if !graph.contains(node) {
                continue;
            }
            let level = graph.level(node).expect("present");
            let up = idx(graph.up(node).expect("op"));
            let lp = idx(graph.lp(node).expect("op"));
            // Odd levels: NOR over true inputs → complemented output.
            // Even levels: NAND over complemented inputs → true output
            // (NAND(!a, !b) = a | b).
            let (want, cell, out_pol) = if level % 2 == 1 {
                (Pol::True, CellType::Nor2, Pol::Comp)
            } else {
                (Pol::Comp, CellType::Nand2, Pol::True)
            };
            let a = get(&mut nl, &mut vals, up, want);
            let b = get(&mut nl, &mut vals, lp, want);
            let net = nl.add_gate(cell, &[a, b]);
            vals[idx(node)] = Some(OrNet {
                net,
                pol: out_pol,
                inv: None,
            });
        }
    }
    for i in 0..n {
        let out = get(&mut nl, &mut vals, i * n, Pol::True);
        nl.mark_output(out);
    }
    nl.prune_dead();
    nl
}

/// Evaluates the reference OR-prefix for testing.
pub fn reference(x: u64, n: usize) -> u64 {
    let mut y = 0u64;
    let mut acc = false;
    for i in 0..n {
        acc |= (x >> i) & 1 == 1;
        if acc {
            y |= 1 << i;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;
    use prefix_graph::structures;

    fn eval_bits(nl: &Netlist, x: u64, n: usize) -> u64 {
        let inputs: Vec<bool> = (0..n).map(|i| (x >> i) & 1 == 1).collect();
        let out = sim::eval(nl, &inputs);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn matches_reference_exhaustive_6b() {
        for (_, ctor) in structures::all_regular() {
            let nl = generate(&ctor(6));
            for x in 0..64u64 {
                assert_eq!(eval_bits(&nl, x, 6), reference(x, 6));
            }
        }
    }

    #[test]
    fn matches_reference_random_32b() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let nl = generate(&structures::kogge_stone(32));
        for _ in 0..100 {
            let x = rng.random::<u64>() & 0xFFFF_FFFF;
            assert_eq!(eval_bits(&nl, x, 32), reference(x, 32));
        }
    }

    #[test]
    fn uses_only_inverting_gates() {
        let nl = generate(&structures::sklansky(16));
        for (ct, _) in nl.cell_histogram() {
            assert!(
                matches!(ct, CellType::Nand2 | CellType::Nor2 | CellType::Inv),
                "unexpected cell {ct}"
            );
        }
    }

    #[test]
    fn or_prefix_is_cheaper_than_adder() {
        // One gate per node instead of G/P pairs plus pre/postprocessing.
        let g = structures::brent_kung(16);
        let or = generate(&g);
        let add = crate::adder::generate(&g);
        assert!(or.num_gates() < add.num_gates() / 2);
    }
}
