//! Prefix-adder netlist generation from prefix graphs.
//!
//! Implements the adder construction the paper uses (Section V-A, after
//! Zimmermann's *Binary adder architectures for cell-based VLSI*):
//! inverting logic with **alternating polarity per level**, so that back-to-
//! back inverters never occur on the carry path:
//!
//! - preprocessing produces *complemented* generate/propagate:
//!   `ḡᵢ = NAND2(aᵢ, bᵢ)`, `p̄ᵢ = XNOR2(aᵢ, bᵢ)`;
//! - odd prefix levels consume complemented signals and produce true ones:
//!   `G = OAI21(p̄_hi, ḡ_lo, ḡ_hi)`, `P = NOR2(p̄_hi, p̄_lo)`;
//! - even levels consume true signals and produce complemented ones:
//!   `Ḡ = AOI21(p_hi, g_lo, g_hi)`, `P̄ = NAND2(p_hi, p_lo)`;
//! - when a parent sits an even number of levels below its child the
//!   polarities mismatch and a (memoized) `INV` is inserted;
//! - sums are `XNOR2` of the propagate and the incoming carry, choosing the
//!   operand polarities so exactly one XNOR per output suffices.
//!
//! The resulting cell mix — NAND/NOR, OAI/AOI, XNOR, INV — is precisely the
//! gate set the paper reports.

use crate::cell::CellType;
use crate::ir::{NetId, Netlist};
use prefix_graph::{Node, PrefixGraph};

/// Signal polarity tracked per prefix node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Pol {
    True,
    Comp,
}

/// Per-node generate/propagate nets with lazily created inverted copies.
struct GpNets {
    g: NetId,
    p: NetId,
    pol: Pol,
    g_inv: Option<NetId>,
    p_inv: Option<NetId>,
}

/// Generates the gate-level netlist of the adder described by `graph`.
///
/// Primary inputs are `a₀…a_{N-1}, b₀…b_{N-1}`; primary outputs are
/// `s₀…s_{N-1}, cout`. Dead logic (e.g. unused propagates of the most
/// significant output) is pruned, as a real synthesis flow would sweep it.
///
/// # Example
///
/// ```
/// use prefix_graph::structures;
/// use netlist::{adder, sim};
///
/// let nl = adder::generate(&structures::sklansky(16));
/// assert_eq!(nl.inputs().len(), 32);
/// assert_eq!(nl.outputs().len(), 17);
/// assert_eq!(sim::add(&nl, 40_000, 30_000), 70_000);
/// ```
pub fn generate(graph: &PrefixGraph) -> Netlist {
    let n = graph.n() as usize;
    let mut nl = Netlist::new(format!("prefix_adder_{n}b"));
    let a: Vec<NetId> = (0..n).map(|_| nl.add_input()).collect();
    let b: Vec<NetId> = (0..n).map(|_| nl.add_input()).collect();

    let idx = |node: Node| node.msb() as usize * n + node.lsb() as usize;
    let mut gp: Vec<Option<GpNets>> = (0..n * n).map(|_| None).collect();

    // Preprocessing: complemented generate/propagate per input bit.
    for i in 0..n {
        let gbar = nl.add_gate(CellType::Nand2, &[a[i], b[i]]);
        let pbar = nl.add_gate(CellType::Xnor2, &[a[i], b[i]]);
        gp[i * n + i] = Some(GpNets {
            g: gbar,
            p: pbar,
            pol: Pol::Comp,
            g_inv: None,
            p_inv: None,
        });
    }

    // Helper: fetch a node's G or P at the wanted polarity, inverting once
    // and memoizing if needed.
    fn get(nl: &mut Netlist, gp: &mut [Option<GpNets>], i: usize, want: Pol, is_g: bool) -> NetId {
        let e = gp[i].as_mut().expect("parent computed before child");
        if e.pol == want {
            return if is_g { e.g } else { e.p };
        }
        let cached = if is_g { e.g_inv } else { e.p_inv };
        if let Some(net) = cached {
            return net;
        }
        let src = if is_g { e.g } else { e.p };
        let inv = nl.add_gate(CellType::Inv, &[src]);
        let e = gp[i].as_mut().unwrap();
        if is_g {
            e.g_inv = Some(inv);
        } else {
            e.p_inv = Some(inv);
        }
        inv
    }

    // Prefix levels: rows ascending, LSBs descending gives topological order.
    for m in 0..graph.n() {
        for l in (0..m).rev() {
            let node = Node::new(m, l);
            if !graph.contains(node) {
                continue;
            }
            let level = graph.level(node).expect("present");
            let up = graph.up(node).expect("op node");
            let lp = graph.lp(node).expect("op node");
            let (want, g_cell, p_cell, out_pol) = if level % 2 == 1 {
                (Pol::Comp, CellType::Oai21, CellType::Nor2, Pol::True)
            } else {
                (Pol::True, CellType::Aoi21, CellType::Nand2, Pol::Comp)
            };
            let p_hi = get(&mut nl, &mut gp, idx(up), want, false);
            let g_hi = get(&mut nl, &mut gp, idx(up), want, true);
            let g_lo = get(&mut nl, &mut gp, idx(lp), want, true);
            let p_lo = get(&mut nl, &mut gp, idx(lp), want, false);
            // OAI21(p̄_hi, ḡ_lo, ḡ_hi) = G ; AOI21(p_hi, g_lo, g_hi) = Ḡ.
            let g = nl.add_gate(g_cell, &[p_hi, g_lo, g_hi]);
            let p = nl.add_gate(p_cell, &[p_hi, p_lo]);
            gp[idx(node)] = Some(GpNets {
                g,
                p,
                pol: out_pol,
                g_inv: None,
                p_inv: None,
            });
        }
    }

    // Postprocessing: s₀ = p₀; sᵢ = pᵢ ⊕ c_{i-1}; cout = c_{N-1}.
    // One XNOR2 per sum: with a true carry use the natural complemented
    // propagate (XNOR(p̄, c) = p ⊕ c); with a complemented carry use the true
    // propagate (XNOR(p, c̄) = p ⊕ c).
    let s0 = get(&mut nl, &mut gp, 0, Pol::True, false);
    let mut sums = vec![s0];
    for i in 1..n {
        let carry_idx = (i - 1) * n; // output node (i-1, 0)
        let carry_pol = gp[carry_idx].as_ref().expect("carry computed").pol;
        let (p_net, c_net) = match carry_pol {
            Pol::True => {
                let c = get(&mut nl, &mut gp, carry_idx, Pol::True, true);
                let p = get(&mut nl, &mut gp, i * n + i, Pol::Comp, false);
                (p, c)
            }
            Pol::Comp => {
                let c = get(&mut nl, &mut gp, carry_idx, Pol::Comp, true);
                let p = get(&mut nl, &mut gp, i * n + i, Pol::True, false);
                (p, c)
            }
        };
        sums.push(nl.add_gate(CellType::Xnor2, &[p_net, c_net]));
    }
    let cout = get(&mut nl, &mut gp, (n - 1) * n, Pol::True, true);
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(cout);
    nl.prune_dead();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;
    use prefix_graph::structures;

    #[test]
    fn io_counts() {
        let nl = generate(&structures::sklansky(8));
        assert_eq!(nl.inputs().len(), 16);
        assert_eq!(nl.outputs().len(), 9);
        nl.validate().unwrap();
    }

    #[test]
    fn adds_correctly_exhaustive_4b() {
        for (_, ctor) in structures::all_regular() {
            let nl = generate(&ctor(4));
            for a in 0..16u64 {
                for b in 0..16u64 {
                    assert_eq!(sim::add(&nl, a, b), (a + b) as u128);
                }
            }
        }
    }

    #[test]
    fn adds_correctly_random_32b() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for (name, ctor) in structures::all_regular() {
            let nl = generate(&ctor(32));
            for _ in 0..50 {
                let a = rng.random::<u64>() & 0xFFFF_FFFF;
                let b = rng.random::<u64>() & 0xFFFF_FFFF;
                assert_eq!(sim::add(&nl, a, b), a as u128 + b as u128, "{name} {a}+{b}");
            }
        }
    }

    #[test]
    fn carry_out_works() {
        let nl = generate(&structures::brent_kung(8));
        assert_eq!(sim::add(&nl, 255, 255), 510);
        assert_eq!(sim::add(&nl, 255, 1), 256);
        assert_eq!(sim::add(&nl, 0, 0), 0);
    }

    #[test]
    fn uses_paper_gate_set() {
        // The generator must produce the paper's cell mix and nothing else:
        // NAND/NOR, OAI/AOI, XNOR, INV (no AND/OR/XOR/BUF before synthesis).
        let nl = generate(&structures::kogge_stone(16));
        for (ct, count) in nl.cell_histogram() {
            assert!(count > 0);
            assert!(
                matches!(
                    ct,
                    CellType::Nand2
                        | CellType::Nor2
                        | CellType::Aoi21
                        | CellType::Oai21
                        | CellType::Xnor2
                        | CellType::Inv
                ),
                "unexpected cell type {ct}"
            );
        }
    }

    #[test]
    fn deeper_graphs_use_fewer_gates() {
        // Ripple (minimum nodes) must produce fewer gates than Kogge-Stone
        // (maximum nodes) after pruning.
        let ripple = generate(&prefix_graph::PrefixGraph::ripple(32));
        let ks = generate(&structures::kogge_stone(32));
        assert!(ripple.num_gates() < ks.num_gates());
    }

    #[test]
    fn polarity_inverters_are_memoized() {
        // Generating twice from the same graph is deterministic, and the
        // inverter count stays bounded: at most two per prefix node.
        let g = structures::brent_kung(16);
        let nl = generate(&g);
        let invs = nl
            .cell_histogram()
            .iter()
            .find(|(ct, _)| *ct == CellType::Inv)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        assert!(
            invs <= 2 * g.size() + g.n() as usize,
            "too many inverters: {invs}"
        );
    }
}
