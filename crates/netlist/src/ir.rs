//! Mutable gate-level netlist IR.
//!
//! A [`Netlist`] is a DAG of [`Gate`]s connected by nets. It supports the
//! three structural operations the timing-driven optimizer performs — gate
//! resizing, buffer insertion, and commutative pin swapping — plus
//! dead-logic pruning and validation.

use crate::cell::{CellKind, CellType, Drive};
use crate::library::Library;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a net (wire).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub(crate) u32);

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl NetId {
    /// The raw index, for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The raw index, for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Driver {
    /// Driven by the primary input with this index.
    Input(u32),
    /// Driven by a gate's output.
    Gate(GateId),
}

/// A gate instance: a sized cell with input nets and one output net.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gate {
    /// The sized cell implementing this gate.
    pub kind: CellKind,
    ins: [NetId; 3],
    arity: u8,
    out: NetId,
}

impl Gate {
    /// The input nets, in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.ins[..self.arity as usize]
    }

    /// The output net.
    #[inline]
    pub fn output(&self) -> NetId {
        self.out
    }
}

/// A connection point: a gate input pin or a primary output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sink {
    /// Pin `pin` of gate `gate`.
    Pin {
        /// The consuming gate.
        gate: GateId,
        /// The pin index on that gate.
        pin: u8,
    },
    /// The primary output with this index.
    Output(u32),
}

/// A mutable gate-level netlist.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, CellType};
///
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input();
/// let b = nl.add_input();
/// let y = nl.add_gate(CellType::Nand2, &[a, b]);
/// nl.mark_output(y);
/// assert_eq!(nl.num_gates(), 1);
/// nl.validate().unwrap();
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    drivers: Vec<Driver>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            drivers: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist's name (used as the Verilog module name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its net.
    pub fn add_input(&mut self) -> NetId {
        let net = NetId(self.drivers.len() as u32);
        self.drivers.push(Driver::Input(self.inputs.len() as u32));
        self.inputs.push(net);
        net
    }

    /// Adds a minimum-drive gate of `cell_type` and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != cell_type.arity()` or an input net does
    /// not exist.
    pub fn add_gate(&mut self, cell_type: CellType, inputs: &[NetId]) -> NetId {
        self.add_sized_gate(CellKind::x1(cell_type), inputs)
    }

    /// Adds a gate with an explicit drive strength.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Netlist::add_gate`].
    pub fn add_sized_gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.cell_type.arity(),
            "{} expects {} inputs",
            kind,
            kind.cell_type.arity()
        );
        for &i in inputs {
            assert!(i.index() < self.drivers.len(), "input net {i:?} missing");
        }
        let out = NetId(self.drivers.len() as u32);
        let gate_id = GateId(self.gates.len() as u32);
        self.drivers.push(Driver::Gate(gate_id));
        let mut ins = [NetId(0); 3];
        ins[..inputs.len()].copy_from_slice(inputs);
        self.gates.push(Gate {
            kind,
            ins,
            arity: inputs.len() as u8,
            out,
        });
        out
    }

    /// Marks a net as a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn mark_output(&mut self, net: NetId) {
        assert!(net.index() < self.drivers.len(), "net {net:?} missing");
        self.outputs.push(net);
    }

    /// The number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The number of nets (inputs plus gate outputs).
    pub fn num_nets(&self) -> usize {
        self.drivers.len()
    }

    /// Primary input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(GateId, &Gate)` pairs.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// What drives `net`.
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// Changes a gate's drive strength (the sizing move).
    pub fn resize(&mut self, gate: GateId, drive: Drive) {
        self.gates[gate.index()].kind.drive = drive;
    }

    /// Swaps two input pins of a gate (the pin-swapping move).
    ///
    /// # Panics
    ///
    /// Panics if either pin index is out of range. The caller is responsible
    /// for only swapping logically commutative pins (e.g. A/B of NAND2 or
    /// AOI21, but never C).
    pub fn swap_pins(&mut self, gate: GateId, pin_a: usize, pin_b: usize) {
        let g = &mut self.gates[gate.index()];
        assert!(pin_a < g.arity as usize && pin_b < g.arity as usize);
        g.ins.swap(pin_a, pin_b);
    }

    /// Inserts a buffer driven by `net` and reconnects the given sinks to
    /// the buffer's output (the buffering move). Returns the new net.
    ///
    /// # Panics
    ///
    /// Panics if any sink is not currently connected to `net`.
    pub fn insert_buffer(&mut self, net: NetId, drive: Drive, sinks: &[Sink]) -> NetId {
        let buf_out = self.add_sized_gate(CellKind::new(CellType::Buf, drive), &[net]);
        for &sink in sinks {
            match sink {
                Sink::Pin { gate, pin } => {
                    let g = &mut self.gates[gate.index()];
                    assert!(
                        (pin as usize) < g.arity as usize && g.ins[pin as usize] == net,
                        "sink {gate:?}/{pin} not on net {net:?}"
                    );
                    g.ins[pin as usize] = buf_out;
                }
                Sink::Output(idx) => {
                    assert!(
                        self.outputs[idx as usize] == net,
                        "output {idx} not on net {net:?}"
                    );
                    self.outputs[idx as usize] = buf_out;
                }
            }
        }
        buf_out
    }

    /// Computes the sink list of every net.
    pub fn sink_map(&self) -> Vec<Vec<Sink>> {
        let mut sinks = vec![Vec::new(); self.num_nets()];
        for (id, gate) in self.gates() {
            for (pin, &net) in gate.inputs().iter().enumerate() {
                sinks[net.index()].push(Sink::Pin {
                    gate: id,
                    pin: pin as u8,
                });
            }
        }
        for (idx, &net) in self.outputs.iter().enumerate() {
            sinks[net.index()].push(Sink::Output(idx as u32));
        }
        sinks
    }

    /// Gates in topological order (every gate after its input drivers).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (cannot be
    /// constructed through this API, but guards against corrupted data).
    pub fn topo_order(&self) -> Vec<GateId> {
        let mut indegree: Vec<u32> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs()
                    .iter()
                    .filter(|&&n| matches!(self.drivers[n.index()], Driver::Gate(_)))
                    .count() as u32
            })
            .collect();
        let sinks = self.sink_map();
        let mut queue: Vec<GateId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| GateId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &s in &sinks[self.gates[id.index()].out.index()] {
                if let Sink::Pin { gate, .. } = s {
                    indegree[gate.index()] -= 1;
                    if indegree[gate.index()] == 0 {
                        queue.push(gate);
                    }
                }
            }
        }
        assert_eq!(order.len(), self.gates.len(), "combinational cycle");
        order
    }

    /// Total cell area under `lib`, µm².
    pub fn area(&self, lib: &Library) -> f64 {
        self.gates
            .iter()
            .map(|g| lib.area(g.kind.cell_type, g.kind.drive))
            .sum()
    }

    /// Removes gates whose outputs reach no primary output, compacting ids.
    ///
    /// Returns the number of gates removed. Net ids are *not* stable across
    /// this call; callers should re-derive any side tables.
    pub fn prune_dead(&mut self) -> usize {
        let mut live_net = vec![false; self.num_nets()];
        let mut stack: Vec<NetId> = self.outputs.clone();
        while let Some(net) = stack.pop() {
            if std::mem::replace(&mut live_net[net.index()], true) {
                continue;
            }
            if let Driver::Gate(g) = self.drivers[net.index()] {
                for &i in self.gates[g.index()].inputs() {
                    if !live_net[i.index()] {
                        stack.push(i);
                    }
                }
            }
        }
        let dead = self
            .gates
            .iter()
            .filter(|g| !live_net[g.out.index()])
            .count();
        if dead == 0 {
            return 0;
        }
        // Rebuild with only live gates, remapping net ids.
        let mut net_map = vec![NetId(u32::MAX); self.num_nets()];
        let mut rebuilt = Netlist::new(self.name.clone());
        for &pi in &self.inputs {
            let new = rebuilt.add_input();
            net_map[pi.index()] = new;
        }
        for id in self.topo_order() {
            let g = &self.gates[id.index()];
            if !live_net[g.out.index()] {
                continue;
            }
            let ins: Vec<NetId> = g.inputs().iter().map(|&n| net_map[n.index()]).collect();
            let out = rebuilt.add_sized_gate(g.kind, &ins);
            net_map[g.out.index()] = out;
        }
        for &po in &self.outputs {
            rebuilt.mark_output(net_map[po.index()]);
        }
        *self = rebuilt;
        dead
    }

    /// Validates structural invariants: pin arities, net references, and
    /// acyclicity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (id, g) in self.gates() {
            if g.inputs().len() != g.kind.cell_type.arity() {
                return Err(format!("{id:?} arity mismatch"));
            }
            for &n in g.inputs() {
                if n.index() >= self.num_nets() {
                    return Err(format!("{id:?} references missing net {n:?}"));
                }
            }
            if self.drivers[g.out.index()] != Driver::Gate(id) {
                return Err(format!("{id:?} output driver table corrupt"));
            }
        }
        for &po in &self.outputs {
            if po.index() >= self.num_nets() {
                return Err(format!("missing output net {po:?}"));
            }
        }
        // topo_order panics on cycles; validate reports instead.
        let mut seen = vec![false; self.num_nets()];
        for &pi in &self.inputs {
            seen[pi.index()] = true;
        }
        let order = self.topo_order();
        for id in order {
            let g = &self.gates[id.index()];
            for &n in g.inputs() {
                if !seen[n.index()] {
                    return Err(format!("{id:?} consumes net {n:?} before definition"));
                }
            }
            seen[g.out.index()] = true;
        }
        Ok(())
    }

    /// Histogram of cell types, for reporting.
    pub fn cell_histogram(&self) -> Vec<(CellType, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.kind.cell_type).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Netlist, NetId, NetId, NetId) {
        let mut nl = Netlist::new("toy");
        let a = nl.add_input();
        let b = nl.add_input();
        let y = nl.add_gate(CellType::Nand2, &[a, b]);
        let z = nl.add_gate(CellType::Inv, &[y]);
        nl.mark_output(z);
        (nl, a, b, y)
    }

    #[test]
    fn construction_and_validation() {
        let (nl, ..) = toy();
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.num_nets(), 4);
        nl.validate().unwrap();
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (nl, ..) = toy();
        let order = nl.topo_order();
        assert_eq!(order.len(), 2);
        // NAND must precede INV.
        assert!(order[0].index() == 0 && order[1].index() == 1);
    }

    #[test]
    fn resize_changes_kind() {
        let (mut nl, ..) = toy();
        nl.resize(GateId(0), Drive::new(4));
        assert_eq!(nl.gate(GateId(0)).kind.drive, Drive::new(4));
    }

    #[test]
    fn buffer_insertion_reroutes_sinks() {
        let mut nl = Netlist::new("fanout");
        let a = nl.add_input();
        let x = nl.add_gate(CellType::Inv, &[a]);
        let y1 = nl.add_gate(CellType::Inv, &[x]);
        let y2 = nl.add_gate(CellType::Inv, &[x]);
        let y3 = nl.add_gate(CellType::Inv, &[x]);
        for y in [y1, y2, y3] {
            nl.mark_output(y);
        }
        // Buffer two of the three sinks.
        let sinks = [
            Sink::Pin {
                gate: GateId(2),
                pin: 0,
            },
            Sink::Pin {
                gate: GateId(3),
                pin: 0,
            },
        ];
        let buf_net = nl.insert_buffer(x, Drive::X1, &sinks);
        nl.validate().unwrap();
        assert_eq!(nl.gate(GateId(2)).inputs()[0], buf_net);
        assert_eq!(nl.gate(GateId(3)).inputs()[0], buf_net);
        assert_eq!(nl.gate(GateId(1)).inputs()[0], x, "unbuffered sink kept");
        let sm = nl.sink_map();
        assert_eq!(sm[x.index()].len(), 2, "gate 1 and buffer");
    }

    #[test]
    fn pin_swap() {
        let (mut nl, a, b, _) = toy();
        nl.swap_pins(GateId(0), 0, 1);
        assert_eq!(nl.gate(GateId(0)).inputs(), &[b, a]);
        nl.validate().unwrap();
    }

    #[test]
    fn area_accumulates() {
        let (nl, ..) = toy();
        let lib = Library::nangate45();
        let expect = lib.area(CellType::Nand2, Drive::X1) + lib.area(CellType::Inv, Drive::X1);
        assert!((nl.area(&lib) - expect).abs() < 1e-12);
    }

    #[test]
    fn prune_dead_removes_unobserved_logic() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input();
        let live = nl.add_gate(CellType::Inv, &[a]);
        let dead = nl.add_gate(CellType::Inv, &[a]);
        let _deader = nl.add_gate(CellType::Inv, &[dead]);
        nl.mark_output(live);
        assert_eq!(nl.prune_dead(), 2);
        assert_eq!(nl.num_gates(), 1);
        nl.validate().unwrap();
        assert_eq!(nl.prune_dead(), 0, "idempotent");
    }

    #[test]
    fn sink_map_includes_outputs() {
        let (nl, ..) = toy();
        let sm = nl.sink_map();
        let z = nl.outputs()[0];
        assert_eq!(sm[z.index()], vec![Sink::Output(0)]);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_enforced() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input();
        nl.add_gate(CellType::Nand2, &[a]);
    }
}
