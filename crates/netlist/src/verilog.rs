//! Structural Verilog export.
//!
//! Emits a gate-level module using library cell names
//! (`NAND2_X1`, `AOI21_X2`, …) with generic pin names `A`/`B`/`C` and output
//! `Y`, suitable for inspection or for feeding an external flow.

use crate::ir::{Driver, Netlist};
use std::fmt::Write as _;

/// Renders the netlist as structural Verilog.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, CellType, verilog};
/// let mut nl = Netlist::new("inv1");
/// let a = nl.add_input();
/// let y = nl.add_gate(CellType::Inv, &[a]);
/// nl.mark_output(y);
/// let v = verilog::export(&nl);
/// assert!(v.contains("module inv1"));
/// assert!(v.contains("INV_X1"));
/// ```
pub fn export(nl: &Netlist) -> String {
    let mut out = String::new();
    let pi_count = nl.inputs().len();
    let po_count = nl.outputs().len();
    let _ = writeln!(out, "module {} (", nl.name());
    let ports: Vec<String> = (0..pi_count)
        .map(|i| format!("pi{i}"))
        .chain((0..po_count).map(|i| format!("po{i}")))
        .collect();
    let _ = writeln!(out, "  {}", ports.join(", "));
    let _ = writeln!(out, ");");
    for i in 0..pi_count {
        let _ = writeln!(out, "  input pi{i};");
    }
    for i in 0..po_count {
        let _ = writeln!(out, "  output po{i};");
    }
    // Net naming: inputs alias their port; gate outputs get wire names.
    let name_of = |net: crate::ir::NetId| -> String {
        match nl.driver(net) {
            Driver::Input(i) => format!("pi{i}"),
            Driver::Gate(g) => format!("w{}", g.index()),
        }
    };
    for (id, _) in nl.gates() {
        let _ = writeln!(out, "  wire w{};", id.index());
    }
    const PIN_NAMES: [&str; 3] = ["A", "B", "C"];
    for (id, gate) in nl.gates() {
        let mut pins: Vec<String> = gate
            .inputs()
            .iter()
            .enumerate()
            .map(|(pin, &n)| format!(".{}({})", PIN_NAMES[pin], name_of(n)))
            .collect();
        pins.push(format!(".Y(w{})", id.index()));
        let _ = writeln!(
            out,
            "  {} g{} ({});",
            gate.kind,
            id.index(),
            pins.join(", ")
        );
    }
    for (i, &po) in nl.outputs().iter().enumerate() {
        let _ = writeln!(out, "  assign po{i} = {};", name_of(po));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder;
    use prefix_graph::structures;

    #[test]
    fn exports_adder_with_all_ports() {
        let nl = adder::generate(&structures::brent_kung(8));
        let v = export(&nl);
        assert!(v.contains("module prefix_adder_8b"));
        for i in 0..16 {
            assert!(v.contains(&format!("input pi{i};")));
        }
        for i in 0..9 {
            assert!(v.contains(&format!("output po{i};")));
        }
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn gate_lines_match_gate_count() {
        let nl = adder::generate(&structures::sklansky(8));
        let v = export(&nl);
        let inst_lines = v
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_uppercase()))
            .count();
        assert_eq!(inst_lines, nl.num_gates());
    }
}
