//! Logic cell types, drive strengths and functional semantics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The logic function of a standard cell.
///
/// This is the gate set the paper's adder implementation uses (Section V-A,
/// after Zimmermann): inverting prefix cells (`Aoi21`/`Oai21` for generate,
/// `Nand2`/`Nor2` for propagate), `Xnor2`/`Xor2` for pre/post-processing,
/// `Inv` for polarity fixes, and `Buf` for fanout buffering inserted by the
/// synthesis optimizer. `And2`/`Or2` are included for completeness of the
/// library model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellType {
    /// Inverter: `!A`.
    Inv,
    /// Buffer: `A`.
    Buf,
    /// 2-input NAND: `!(A & B)`.
    Nand2,
    /// 2-input NOR: `!(A | B)`.
    Nor2,
    /// 2-input AND: `A & B`.
    And2,
    /// 2-input OR: `A | B`.
    Or2,
    /// 2-input XOR: `A ^ B`.
    Xor2,
    /// 2-input XNOR: `!(A ^ B)`.
    Xnor2,
    /// AND-OR-invert: `!((A & B) | C)`.
    Aoi21,
    /// OR-AND-invert: `!((A | B) & C)`.
    Oai21,
}

impl CellType {
    /// Number of input pins.
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            CellType::Inv | CellType::Buf => 1,
            CellType::Aoi21 | CellType::Oai21 => 3,
            _ => 2,
        }
    }

    /// Evaluates the cell's logic function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "{self:?} arity mismatch");
        match self {
            CellType::Inv => !inputs[0],
            CellType::Buf => inputs[0],
            CellType::Nand2 => !(inputs[0] & inputs[1]),
            CellType::Nor2 => !(inputs[0] | inputs[1]),
            CellType::And2 => inputs[0] & inputs[1],
            CellType::Or2 => inputs[0] | inputs[1],
            CellType::Xor2 => inputs[0] ^ inputs[1],
            CellType::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellType::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellType::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
        }
    }

    /// All cell types, for library construction and tests.
    pub fn all() -> [CellType; 10] {
        [
            CellType::Inv,
            CellType::Buf,
            CellType::Nand2,
            CellType::Nor2,
            CellType::And2,
            CellType::Or2,
            CellType::Xor2,
            CellType::Xnor2,
            CellType::Aoi21,
            CellType::Oai21,
        ]
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellType::Inv => "INV",
            CellType::Buf => "BUF",
            CellType::Nand2 => "NAND2",
            CellType::Nor2 => "NOR2",
            CellType::And2 => "AND2",
            CellType::Or2 => "OR2",
            CellType::Xor2 => "XOR2",
            CellType::Xnor2 => "XNOR2",
            CellType::Aoi21 => "AOI21",
            CellType::Oai21 => "OAI21",
        };
        f.write_str(s)
    }
}

/// A cell drive strength (X1, X2, X4, …).
///
/// Stronger drives have proportionally lower output resistance but larger
/// area and input capacitance — the fundamental trade the timing-driven
/// sizing optimizer exploits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Drive(u8);

impl Drive {
    /// X1, the minimum drive.
    pub const X1: Drive = Drive(1);

    /// Creates a drive strength.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is a power of two in `1..=32`.
    pub fn new(x: u8) -> Self {
        assert!(
            x.is_power_of_two() && x <= 32,
            "drive X{x} must be a power of two ≤ 32"
        );
        Drive(x)
    }

    /// The drive multiple (1, 2, 4, …).
    #[inline]
    pub fn x(self) -> u8 {
        self.0
    }

    /// The next stronger drive, if below `max`.
    pub fn upsized(self, max: Drive) -> Option<Drive> {
        (self.0 < max.0).then(|| Drive(self.0 * 2))
    }

    /// The next weaker drive, if above X1.
    pub fn downsized(self) -> Option<Drive> {
        (self.0 > 1).then_some(Drive(self.0 / 2))
    }
}

impl Default for Drive {
    fn default() -> Self {
        Drive::X1
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A sized cell: logic function plus drive strength.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellKind {
    /// The logic function.
    pub cell_type: CellType,
    /// The drive strength.
    pub drive: Drive,
}

impl CellKind {
    /// Creates a sized cell at the given drive.
    pub fn new(cell_type: CellType, drive: Drive) -> Self {
        CellKind { cell_type, drive }
    }

    /// Creates a minimum-drive (X1) cell.
    pub fn x1(cell_type: CellType) -> Self {
        CellKind::new(cell_type, Drive::X1)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.cell_type, self.drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use CellType::*;
        assert!(Inv.eval(&[false]));
        assert!(!Inv.eval(&[true]));
        assert!(Buf.eval(&[true]));
        assert!(Nand2.eval(&[true, false]));
        assert!(!Nand2.eval(&[true, true]));
        assert!(Nor2.eval(&[false, false]));
        assert!(!Nor2.eval(&[true, false]));
        assert!(And2.eval(&[true, true]));
        assert!(Or2.eval(&[false, true]));
        assert!(Xor2.eval(&[true, false]));
        assert!(!Xor2.eval(&[true, true]));
        assert!(Xnor2.eval(&[true, true]));
        // AOI21(A,B,C) = !((A&B)|C)
        assert!(Aoi21.eval(&[false, true, false]));
        assert!(!Aoi21.eval(&[true, true, false]));
        assert!(!Aoi21.eval(&[false, false, true]));
        // OAI21(A,B,C) = !((A|B)&C)
        assert!(Oai21.eval(&[true, false, false]));
        assert!(!Oai21.eval(&[true, false, true]));
        assert!(Oai21.eval(&[false, false, true]));
    }

    #[test]
    fn aoi_oai_are_dual_on_complemented_inputs() {
        // OAI21(!a, !b, !c) == !AOI21(a, b, c) — the polarity-alternation
        // identity the adder generator relies on.
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(
                        CellType::Oai21.eval(&[!a, !b, !c]),
                        !CellType::Aoi21.eval(&[a, b, c])
                    );
                }
            }
        }
    }

    #[test]
    fn arities() {
        assert_eq!(CellType::Inv.arity(), 1);
        assert_eq!(CellType::Nand2.arity(), 2);
        assert_eq!(CellType::Aoi21.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn eval_checks_arity() {
        CellType::Nand2.eval(&[true]);
    }

    #[test]
    fn drive_progression() {
        let x1 = Drive::X1;
        let x8 = Drive::new(8);
        assert_eq!(x1.upsized(x8), Some(Drive::new(2)));
        assert_eq!(x8.upsized(x8), None);
        assert_eq!(x1.downsized(), None);
        assert_eq!(Drive::new(4).downsized(), Some(Drive::new(2)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_drive_panics() {
        Drive::new(3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CellKind::x1(CellType::Aoi21).to_string(), "AOI21_X1");
        assert_eq!(
            CellKind::new(CellType::Inv, Drive::new(16)).to_string(),
            "INV_X16"
        );
    }
}
