//! Offline stand-in for `serde` (see DESIGN.md §9).
//!
//! The build environment has no crates.io access, so this crate provides
//! the serialization surface the workspace uses: `Serialize` /
//! `Deserialize` traits with `#[derive(...)]` support (including the
//! `#[serde(into = "...", from = "...")]` container attribute) over a JSON
//! value tree. Unlike real serde there is no `Serializer`/`Visitor`
//! indirection — types convert to and from [`Value`] directly, and
//! `serde_json` in this workspace renders/parses that tree.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error (a human-readable message).
pub type Error = String;

/// A JSON-style number: integer variants preserve 64-bit precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer (exact integral
    /// floats are accepted).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::UInt(v) => Some(v),
            Number::Int(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` if it fits (exact integral floats are accepted).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// A JSON-style dynamically-typed value (the serialization data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Looks up a required field in object entries (used by derived code).
///
/// # Errors
///
/// Fails if `key` is absent.
pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

/// Conversion into the serialization data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the serialization data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Fails when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {v:?}")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                }
                .ok_or_else(|| format!(concat!("expected ", stringify!($t), ", got {:?}"), v))?;
                <$t>::try_from(n).map_err(|_| {
                    format!(concat!("value {} out of range for ", stringify!($t)), n)
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::UInt(v as u64))
                } else {
                    Value::Number(Number::Int(v))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| format!(concat!("expected ", stringify!($t), ", got {:?}"), v))?;
                <$t>::try_from(n).map_err(|_| {
                    format!(concat!("value {} out of range for ", stringify!($t)), n)
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(format!(concat!("expected ", stringify!($t), ", got {:?}"), v)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(format!("expected string, got {v:?}")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(format!("expected array, got {v:?}")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {len}"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("expected tuple array, got {v:?}"))?;
                if items.len() != LEN {
                    return Err(format!("expected {LEN}-tuple, got {} items", items.len()));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
