//! Offline stand-in for `crossbeam` (see DESIGN.md §9).
//!
//! Provides `crossbeam::channel::bounded` backed by
//! `std::sync::mpsc::sync_channel`. Multi-producer/single-consumer covers
//! this workspace's actor→learner topology; crossbeam's multi-consumer
//! capability is not reproduced.

/// Bounded MPSC channels with crossbeam's module layout.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of a bounded channel; cloneable across producers.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Fails when all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty and all senders have dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Receives a message if one is immediately available.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_and_disconnect() {
        let (tx, rx) = channel::bounded::<usize>(8);
        std::thread::scope(|s| {
            for i in 0..3 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2]);
            assert!(rx.try_recv().is_err(), "disconnected after senders drop");
        });
    }
}
