//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.9 API it actually uses (see
//! DESIGN.md §9): `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `random::<T>()` / `random_range(range)` / `random_bool(p)`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — not the real
//! crate's ChaCha12 — so streams differ from upstream `rand`, but every
//! consumer in this workspace only relies on determinism under a fixed
//! seed, which this implementation provides.

/// Concrete RNG types.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    /// A deterministic xoshiro256** generator (stand-in for rand's
    /// `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The raw 256-bit generator state (checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`],
        /// continuing the stream exactly where the capture left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types samplable uniformly over their "natural" range (rand's
/// `StandardUniform` distribution).
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// The generator interface (subset of rand's `Rng`).
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its natural uniform distribution.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// One-stop imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v: u16 = rng.random_range(3..7);
            assert!((3..7).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all values must be reachable");
        for _ in 0..100 {
            let v: usize = rng.random_range(0..1);
            assert_eq!(v, 0);
            let w: u16 = rng.random_range(4..=6);
            assert!((4..=6).contains(&w));
        }
    }

    #[test]
    fn bools_mix() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!(trues > 350 && trues < 650, "{trues}");
    }
}
