//! Offline stand-in for `serde_json` (see DESIGN.md §9).
//!
//! Renders and parses the `serde` shim's [`Value`] tree as JSON text and
//! provides the [`json!`] construction macro (objects, arrays, `null`, and
//! arbitrary `Serialize` expressions, including nested bare `{...}` /
//! `[...]` literals).

pub use serde::{Number, Value};

/// Serialization/deserialization error (a human-readable message).
pub type Error = serde::Error;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for this shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at offset {}", parser.pos));
    }
    T::from_value(&value)
}

// ------------------------------------------------------------- rendering

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), out, indent, depth, ('[', ']'), |v, out, d| {
                write_value(v, out, indent, d)
            })
        }
        Value::Object(entries) => write_seq(
            entries.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, v), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, d);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(item, out, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    }
    out.push(brackets.1);
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => out.push_str(&format!("{v}")),
        // JSON has no NaN/inf; match serde_json's `null`.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of JSON".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' if self.eat_literal("null") => Ok(Value::Null),
            b't' if self.eat_literal("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_literal("false") => Ok(Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        c => return Err(format!("unexpected `{}` in array", c as char)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        c => return Err(format!("unexpected `{}` in object", c as char)),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?,
                            );
                        }
                        c => return Err(format!("invalid escape `\\{}`", c as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let number = if is_float {
            Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?)
        } else if text.starts_with('-') {
            Number::Int(text.parse::<i64>().map_err(|e| e.to_string())?)
        } else {
            Number::UInt(text.parse::<u64>().map_err(|e| e.to_string())?)
        };
        Ok(Value::Number(number))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ----------------------------------------------------------------- json!

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports object literals with string-literal keys, array literals,
/// `null`, and arbitrary `Serialize` expressions as values (including
/// nested bare `{...}` / `[...]` literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        // `unused_mut` matters only when this crate lints its own
        // expansions: empty objects leave `entries` unmutated.
        #[allow(unused_mut)]
        let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::__json_object!(entries; $($body)*);
        $crate::Value::Object(entries)
    }};
    ([ $($elems:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elems) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Appends one object entry (used by the [`json!`] expansion; a free
/// function rather than `Vec::push` so expansions stay clean under this
/// crate's own clippy run).
#[doc(hidden)]
pub fn __push_entry(entries: &mut Vec<(String, Value)>, key: &str, value: Value) {
    entries.push((key.to_string(), value));
}

/// Internal muncher for [`json!`] object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($entries:ident;) => {};
    ($entries:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::__push_entry(&mut $entries, $key, $crate::Value::Null);
        $crate::__json_object!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::__push_entry(&mut $entries, $key, $crate::json!({ $($inner)* }));
        $crate::__json_object!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::__push_entry(&mut $entries, $key, $crate::json!([ $($inner)* ]));
        $crate::__json_object!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::__push_entry(&mut $entries, $key, $crate::to_value(&$value));
        $crate::__json_object!($entries; $($rest)*);
    };
    ($entries:ident; $key:literal : $value:expr) => {
        $crate::__push_entry(&mut $entries, $key, $crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-5", "3.25", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn large_u64_preserved() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Value::Number(Number::UInt(u64::MAX)));
        let back: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 8u16;
        let v = json!({
            "n": n,
            "nested": { "xs": [1, 2, 3], "t": true },
            "list": [json!({"a": 1}), json!(null)],
            "s": "str",
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"n":8,"nested":{"xs":[1,2,3],"t":true},"list":[{"a":1},null],"s":"str"}"#
        );
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_prints_with_indent() {
        let v = json!({"a": [1], "b": {}});
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn tuples_and_vecs() {
        let spec = vec![(1u16, 2u16), (3, 4)];
        let text = to_string(&spec).unwrap();
        assert_eq!(text, "[[1,2],[3,4]]");
        let back: Vec<(u16, u16)> = from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Value::String("héllo ⊕ wörld".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
