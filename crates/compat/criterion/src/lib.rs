//! Offline stand-in for `criterion` (see DESIGN.md §9).
//!
//! Provides the API shape the micro-benchmarks use (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`) with a simple
//! median-of-short-runs timer instead of criterion's statistical engine.
//! Results print one line per benchmark; there is no HTML report, warmup
//! configuration, or outlier analysis.

use std::time::{Duration, Instant};

/// Per-run measurement budget.
const BUDGET: Duration = Duration::from_millis(200);
/// Maximum timed samples per benchmark.
const MAX_SAMPLES: u32 = 25;

/// Entry point for declaring benchmarks (shim for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.into(), &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_bench(name: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    let start = Instant::now();
    while bencher.samples.len() < MAX_SAMPLES as usize && start.elapsed() < BUDGET {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {name:<48} {:>12.1} ns/iter ({} samples)",
        median.as_nanos() as f64,
        bencher.samples.len()
    );
}

/// Measures one routine (shim for `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t = Instant::now();
        let out = routine();
        self.samples.push(t.elapsed());
        drop(out);
    }

    /// Times `routine` on a fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t = Instant::now();
        let out = routine(input);
        self.samples.push(t.elapsed());
        drop(out);
    }
}

/// Batch sizing hint (accepted for API compatibility, unused by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
