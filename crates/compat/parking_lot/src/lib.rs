//! Offline stand-in for `parking_lot` (see DESIGN.md §9).
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API: `lock()`
//! / `read()` / `write()` return guards directly, recovering from poisoning
//! (a poisoned std lock only indicates a panicked holder; the data is still
//! structurally sound for our workloads, which match parking_lot's
//! no-poisoning semantics).

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning (API subset of
/// `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning (API subset of
/// `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_reads() {
        let l = Arc::new(RwLock::new(7));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || assert_eq!(*l.read(), 7));
            }
        });
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
