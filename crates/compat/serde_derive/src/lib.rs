//! Offline stand-in for `serde_derive` (see DESIGN.md §9).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-tree model of this workspace's `serde` shim, without `syn` or
//! `quote` (neither is available offline): the derive input is parsed
//! directly from the [`proc_macro::TokenStream`] and the impl is emitted as
//! source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! - structs with named fields (serialized as objects);
//! - tuple structs (arity 1 as the inner value, arity ≥ 2 as arrays);
//! - enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"` / `{"Variant": ...}`);
//! - at most simple type generics (each parameter is bound by the derived
//!   trait);
//! - the container attribute `#[serde(into = "T", from = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated impl parses")
}

struct Input {
    name: String,
    /// Type-parameter identifiers (lifetimes/const params unsupported).
    generics: Vec<String>,
    kind: Kind,
    /// `#[serde(into = "T")]`: serialize by converting into `T`.
    into: Option<String>,
    /// `#[serde(from = "T")]`: deserialize by converting from `T`.
    from: Option<String>,
}

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut into = None;
    let mut from = None;

    // Outer attributes, harvesting #[serde(...)].
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_serde_attr(g.stream(), &mut into, &mut from);
        }
        i += 2;
    }
    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("derive expects struct or enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    // Generics: collect top-level parameter idents between < and >.
    let mut generics = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expecting_param = true;
        while depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    panic!("lifetime parameters are not supported by the serde shim derive")
                }
                TokenTree::Ident(id) if depth == 1 && expecting_param => {
                    generics.push(id.to_string());
                    expecting_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Optional where-clause: skip to the body/semicolon.
    while !matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() != Delimiter::Bracket)
        && !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ';')
    {
        i += 1;
        if i >= tokens.len() {
            panic!("derive input for {name} ended before a body");
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Punct(_) => Kind::Unit,
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                Kind::Named(parse_named_fields(g.stream()))
            }
        }
        other => panic!("unexpected token {other} in derive input for {name}"),
    };

    Input {
        name,
        generics,
        kind,
        into,
        from,
    }
}

fn parse_serde_attr(attr: TokenStream, into: &mut Option<String>, from: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(args)] = &tokens[..] else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) = (args.get(j), args.get(j + 1), args.get(j + 2))
        {
            if eq.as_char() == '=' {
                let value = lit.to_string().trim_matches('"').to_string();
                match key.to_string().as_str() {
                    "into" => *into = Some(value),
                    "from" => *from = Some(value),
                    other => panic!("unsupported #[serde({other} = ...)] in shim derive"),
                }
                j += 3;
                continue;
            }
        }
        j += 1;
    }
}

/// Counts comma-separated fields at angle-bracket depth 0.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    fields - usize::from(trailing_comma)
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes and doc comments.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("expected field name, found {other}"),
        }
        i += 1; // name
        i += 1; // ':'
                // Skip the type up to the next depth-0 comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next variant (handles discriminants, trailing comma).
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------ generation

impl Input {
    /// `("<T: ::serde::Serialize>", "<T>")` — impl generics and type args.
    fn generics_for(&self, bound: &str) -> (String, String) {
        if self.generics.is_empty() {
            return (String::new(), String::new());
        }
        let bounded: Vec<String> = self
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("<{}>", self.generics.join(", ")),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = input.generics_for("::serde::Serialize");
    let name = &input.name;
    let body = if let Some(into) = &input.into {
        format!(
            "let converted: {into} = \
             ::std::convert::Into::into(<Self as ::std::clone::Clone>::clone(self));\n\
             ::serde::Serialize::to_value(&converted)"
        )
    } else {
        match &input.kind {
            Kind::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            Kind::Unit => "::serde::Value::Null".to_string(),
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Unit => format!(
                                "{name}::{vn} => \
                                 ::serde::Value::String(::std::string::String::from(\"{vn}\"))"
                            ),
                            VariantKind::Tuple(1) => format!(
                                "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Serialize::to_value(f0))])"
                            ),
                            VariantKind::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                    .collect();
                                format!(
                                    "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vn}\"), \
                                     ::serde::Value::Array(::std::vec![{}]))])",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            VariantKind::Struct(fields) => {
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from(\"{f}\"), \
                                             ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vn}\"), \
                                     ::serde::Value::Object(::std::vec![{}]))])",
                                    fields.join(", "),
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(", "))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = input.generics_for("::serde::Deserialize");
    let name = &input.name;
    let body = if let Some(from) = &input.from {
        format!(
            "let converted: {from} = ::serde::Deserialize::from_value(v)?;\n\
             ::std::result::Result::Ok(::std::convert::Into::into(converted))"
        )
    } else {
        match &input.kind {
            Kind::Named(fields) => gen_de_named(name, fields, "v"),
            Kind::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Kind::Tuple(n) => gen_de_tuple(name, *n, "v"),
            Kind::Unit => format!("::std::result::Result::Ok({name})"),
            Kind::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .map(|v| {
                        format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                            vn = v.name
                        )
                    })
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vn = &v.name;
                        let path = format!("{name}::{vn}");
                        match &v.kind {
                            VariantKind::Unit => None,
                            VariantKind::Tuple(1) => Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(\
                                 {path}(::serde::Deserialize::from_value(val)?)),"
                            )),
                            VariantKind::Tuple(n) => Some(format!(
                                "\"{vn}\" => {{ {} }}",
                                gen_de_tuple(&path, *n, "val")
                            )),
                            VariantKind::Struct(fields) => Some(format!(
                                "\"{vn}\" => {{ {} }}",
                                gen_de_named(&path, fields, "val")
                            )),
                        }
                    })
                    .collect();
                format!(
                    "match v {{\n\
                       ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(\
                           ::std::format!(\"unknown {name} variant `{{other}}`\")),\n\
                       }},\n\
                       ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, val) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                           {data}\n\
                           other => ::std::result::Result::Err(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\")),\n\
                         }}\n\
                       }},\n\
                       other => ::std::result::Result::Err(\
                         ::std::format!(\"expected {name}, got {{other:?}}\")),\n\
                     }}",
                    unit = unit_arms.join("\n"),
                    data = data_arms.join("\n"),
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// `Ok(Path { f: from_value(get_field(obj, "f")?)?, ... })` over `src`.
fn gen_de_named(path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::get_field(obj, \"{f}\")?)?,")
        })
        .collect();
    format!(
        "let obj = match {src} {{\n\
           ::serde::Value::Object(m) => m,\n\
           other => return ::std::result::Result::Err(\
             ::std::format!(\"expected object for {path}, got {{other:?}}\")),\n\
         }};\n\
         ::std::result::Result::Ok({path} {{ {} }})",
        inits.join(" ")
    )
}

/// `Ok(Path(from_value(&items[0])?, ...))` over `src`.
fn gen_de_tuple(path: &str, n: usize, src: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "let items = match {src} {{\n\
           ::serde::Value::Array(a) if a.len() == {n} => a,\n\
           other => return ::std::result::Result::Err(\
             ::std::format!(\"expected {n}-element array for {path}, got {{other:?}}\")),\n\
         }};\n\
         ::std::result::Result::Ok({path}({}))",
        inits.join(", ")
    )
}
