//! Offline stand-in for `proptest` (see DESIGN.md §9).
//!
//! Reproduces the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`Just`], [`collection::vec`], [`Arbitrary`]-typed
//! arguments, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Cases are generated deterministically (the
//! RNG is seeded from the test path and case index); failing inputs are
//! reported but **not shrunk**.

use rand::prelude::*;

/// Per-test configuration (subset of proptest's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy derived from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng as _;

    /// Generates `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Types usable as bare `name: Type` arguments in [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

/// Builds the deterministic RNG for one test case (used by [`proptest!`]).
#[doc(hidden)]
pub fn __case_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `#[test] fn name(bindings) { body }` runs
/// `cases` times with freshly generated inputs. Bindings are either
/// `pattern in strategy` or `name: Type` (via [`Arbitrary`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::__case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let result: ::std::result::Result<(), ::std::string::String> = {
                        $crate::__proptest_bind!(rng, $($args)*);
                        let case_fn = || { $body ::std::result::Result::Ok(()) };
                        case_fn()
                    };
                    if let Err(message) = result {
                        panic!("proptest {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Asserts a condition inside [`proptest!`], failing the case (not the
/// process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let strat = (2u16..10).prop_flat_map(|n| {
            (
                Just(n),
                crate::collection::vec((Just(n), 1u16..n.max(2)), 0..5),
            )
        });
        let mut rng = crate::__case_rng("compose", 0);
        for _ in 0..100 {
            let (n, items) = Strategy::generate(&strat, &mut rng);
            assert!((2..10).contains(&n));
            assert!(items.len() < 5);
            for (m, l) in items {
                assert_eq!(m, n);
                assert!(l >= 1 && l < n.max(2));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_both_forms((a, b) in (0u16..5, 5u16..9), c: u64) {
            prop_assert!(a < 5);
            prop_assert_eq!(b.clamp(5, 8), b);
            let _ = c;
        }
    }
}
