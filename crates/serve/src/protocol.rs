//! The `prefixrl.serve.v1` wire protocol: newline-delimited JSON over a
//! local TCP socket (std::net only).
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry `"proto": "prefixrl.serve.v1"`
//! (optional but, when present, it must match — a future v2 server can
//! then reject v1 clients loudly instead of misparsing them) and a
//! `"cmd"`. Responses always carry `"ok": true|false`; failures add
//! `"error"`. The full schema is documented in DESIGN.md §13:
//!
//! | cmd        | request fields                  | response payload            |
//! |------------|---------------------------------|-----------------------------|
//! | `ping`     | —                               | `server`, `jobs`, `cache`   |
//! | `submit`   | `job` ([`crate::JobSpec`])      | `id`                        |
//! | `status`   | `id`, optional `tail`           | job snapshot + event tail   |
//! | `list`     | —                               | `jobs` array                |
//! | `cancel`   | `id`                            | `result`                    |
//! | `frontier` | `task`, `backend`, `n`          | `points`, `count`, `key`, `known` |
//! | `query`    | `task`, `backend`, `n`, `mode`, mode params | `key`, `known`, `found`, `point`/`points`, `epoch` |
//! | `query_batch` | `queries` array of query payloads | `results` array, `epoch`  |
//! | `repl_subscribe` | `epoch`, `from_seq`, `follower` | stream header, then `repl_snapshot`/`repl_record` lines |
//! | `cluster`  | optional `key`                  | `topology`, hub + follower state, key owner |
//! | `shutdown` | —                               | acknowledges, then stops    |
//!
//! Query modes (DESIGN.md §15): `best_at_delay` takes `delay` and
//! answers with the minimum-area point meeting it (`met: false` + the
//! fastest point when nothing does); `best_at_weight` takes `w ∈ [0, 1]`
//! and answers the scalarized argmin; `range` takes `delay_lo`/`delay_hi`
//! and answers every point inside the inclusive window. All three accept
//! `include_graph: true` to attach stored graphs. `frontier`'s `points`
//! is `null` — and `known` false — for a key never merged, distinguishing
//! it from a merged key whose front is empty (`[]`). A batch is answered
//! against one snapshot: every result reflects the same `epoch`.

use serde_json::Value;

/// The protocol identifier every request/response line is stamped with.
pub const PROTOCOL: &str = "prefixrl.serve.v1";

/// Hard cap on one request line, in bytes. A peer that sends this much
/// without a newline has lost framing (or is hostile); the server answers
/// with an error and drops the connection rather than buffering without
/// bound. Generous enough for a `query_batch` at [`crate::query::MAX_BATCH`].
pub const MAX_REQUEST_LINE: u64 = 8 * 1024 * 1024;

/// A `{"ok": true, ...fields}` response line.
pub fn ok_response(mut fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("proto".to_string(), Value::String(PROTOCOL.to_string())),
    ];
    entries.append(&mut fields);
    Value::Object(entries)
}

/// A `{"ok": false, "error": ...}` response line.
pub fn error_response(message: &str) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("proto".to_string(), Value::String(PROTOCOL.to_string())),
        ("error".to_string(), Value::String(message.to_string())),
    ])
}

/// Checks a request's optional `proto` stamp against [`PROTOCOL`].
///
/// # Errors
///
/// Fails when a stamp is present and names a different protocol.
pub fn check_proto(request: &Value) -> Result<(), String> {
    match request.get("proto") {
        None => Ok(()),
        Some(Value::String(p)) if p == PROTOCOL => Ok(()),
        Some(other) => Err(format!(
            "unsupported protocol {other:?} (this server speaks `{PROTOCOL}`)"
        )),
    }
}

/// A required string field.
///
/// # Errors
///
/// Fails when the field is absent or not a string.
pub fn req_str<'a>(request: &'a Value, key: &str) -> Result<&'a str, String> {
    match request.get(key) {
        Some(Value::String(s)) => Ok(s),
        Some(other) => Err(format!("field `{key}`: expected a string, got {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// A required non-negative integer field.
///
/// # Errors
///
/// Fails when the field is absent or not a non-negative integer.
pub fn req_u64(request: &Value, key: &str) -> Result<u64, String> {
    match request.get(key) {
        Some(Value::Number(n)) => n
            .as_u64()
            .ok_or_else(|| format!("field `{key}`: expected a non-negative integer")),
        Some(other) => Err(format!("field `{key}`: expected a number, got {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// An optional non-negative integer field with a default.
///
/// # Errors
///
/// Fails when the field is present but not a non-negative integer.
pub fn opt_u64(request: &Value, key: &str, default: u64) -> Result<u64, String> {
    match request.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(_) => req_u64(request, key),
    }
}

/// A required numeric field, as `f64` (integers widen losslessly).
///
/// # Errors
///
/// Fails when the field is absent or not a number.
pub fn req_f64(request: &Value, key: &str) -> Result<f64, String> {
    match request.get(key) {
        Some(Value::Number(n)) => Ok(n.as_f64()),
        Some(other) => Err(format!("field `{key}`: expected a number, got {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// An optional boolean field with a default.
///
/// # Errors
///
/// Fails when the field is present but not a boolean.
pub fn opt_bool(request: &Value, key: &str, default: bool) -> Result<bool, String> {
    match request.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("field `{key}`: expected a boolean, got {other:?}")),
    }
}
