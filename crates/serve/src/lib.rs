//! `prefixrl-serve`: the resident multi-job optimization service
//! (DESIGN.md §13).
//!
//! The ROADMAP's north star is serving prefix-circuit optimization as a
//! production system, not as one-shot CLI runs — the shape related work
//! (PrefixAgent; RL-for-logic-optimization with reusable learned effort)
//! frames as an on-demand, query-driven design service. This crate is
//! that first layer:
//!
//! - [`Server`] — a long-running daemon speaking newline-delimited JSON
//!   (`prefixrl.serve.v1`, see [`protocol`]) on a local TCP socket;
//! - [`JobManager`] — a bounded FIFO queue of sweep jobs executed by
//!   worker threads as [`prefixrl_core::experiment::Experiment`] sessions
//!   over **one shared evaluation stack** (a server-wide
//!   [`prefixrl_core::cache::EvalCache`] store with per-`(task, backend)`
//!   bindings), with per-job
//!   [`prefixrl_core::experiment::CancelToken`]s, event tails, and a
//!   persisted queue that survives a `kill -9`;
//! - [`FrontierStore`] — the persistent cross-run artifact: every finished
//!   job's design pool merges into a disk-backed combined Pareto front per
//!   `(task, backend, width)` key, monotonically (merges never regress a
//!   stored front) and restart-safely (reloaded fronts are bit-identical).
//!   Persistence is a write-ahead merge log with periodic compaction
//!   (DESIGN.md §15): each merge fsyncs one appended record, not the
//!   whole store;
//! - [`query`] — the read tier: every merge publishes an immutable
//!   [`FrontierSnapshot`] (per-key fronts pre-sorted by delay with
//!   precomputed scalarization data) via an epoch-stamped `Arc` swap, so
//!   the `query`/`query_batch` verbs answer `best_at_delay`,
//!   `best_at_weight` and `range` lookups without ever taking the store
//!   mutex — reads never block on a concurrent merge;
//! - [`Client`] — the synchronous client the `prefixrl
//!   submit|status|cancel|frontier|query` subcommands are built on, over
//!   one persistent `TCP_NODELAY` connection with reconnect-on-error;
//! - [`cluster`] — the multi-node tier (DESIGN.md §16): stable-hash key
//!   partitioning ([`cluster::shard_of`] / [`cluster::Topology`]),
//!   WAL-shipping replication (each primary streams its fsynced merge
//!   records to ring followers via `repl_subscribe`, with epoch/offset
//!   resume and snapshot resync), and a fan-out [`cluster::Router`] that
//!   routes queries to owning shards, scatters batches, and fails reads
//!   over to followers when a primary is down.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use prefixrl_serve::{Client, JobSpec, ServeConfig, Server};
//!
//! let handle = Server::spawn(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let client = Client::new(handle.addr().to_string());
//! let id = client
//!     .submit(&JobSpec {
//!         task: "adder".to_string(),
//!         backend: "analytical".to_string(),
//!         n: 8,
//!         weights: vec![0.3, 0.7],
//!         steps: 60,
//!         seed: 0,
//!     })
//!     .unwrap();
//! let done = client
//!     .wait_for_phase(id, &["done"], std::time::Duration::from_secs(120))
//!     .unwrap();
//! assert_eq!(done.get("phase").unwrap(), &serde_json::Value::String("done".into()));
//! let front = client.frontier("adder", "analytical", 8).unwrap();
//! assert!(!front.get("points").unwrap().as_array().unwrap().is_empty());
//! let best = client.query_best_at_delay("adder", "analytical", 8, 1e9).unwrap();
//! let result = best.get("result").unwrap();
//! assert_eq!(result.get("found").unwrap(), &serde_json::Value::Bool(true));
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod jobs;
pub mod protocol;
pub mod query;
pub mod server;
pub mod store;

pub use client::{Client, ClientError};
pub use cluster::{Router, Topology};
pub use jobs::{JobManager, JobPhase, JobSpec, ServeConfig};
pub use query::{FrontView, FrontierSnapshot, QueryPoint, SnapshotCell};
pub use server::{Server, ServerHandle};
pub use store::FrontierStore;
