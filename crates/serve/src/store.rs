//! The persistent cross-run frontier store (DESIGN.md §13, §15).
//!
//! The paper's headline artifact is the *combined* area–delay Pareto front
//! assembled from many scalarized agents (Fig. 4). A one-shot CLI run
//! rebuilds that front from scratch every time; a resident server instead
//! folds every finished job's design pool into one continuously-merged
//! front per `(task, backend, width)` key and keeps it on disk, so learned
//! effort accumulates across jobs and survives restarts.
//!
//! Merging goes through [`prefixrl_core::pareto::ParetoFront::insert`],
//! whose dominance filtering guarantees the monotonicity contract: a merge
//! can only tighten a stored front, never regress it — a new job's
//! dominated points are rejected, its dominating points evict what they
//! beat. Keys isolate fully (an adder result can never surface in a
//! prefix-OR query).
//!
//! Persistence is a write-ahead merge log plus periodic compaction
//! (DESIGN.md §15). Each merge appends **one** WAL record — only the
//! designs the front actually accepted — and fsyncs just that delta,
//! instead of rewriting the whole store; every [`COMPACT_EVERY_DEFAULT`]
//! records (configurable via [`FrontierStore::open_with`]) the store is
//! compacted: the full map is written through the checkpoint machinery's
//! unique-temp-name [`prefixrl_core::checkpoint::write_atomic`] in the
//! same `prefixrl.frontier-store.v1` format as before, fsynced, and the
//! log truncated back to its header. Opening replays the log over the
//! compacted snapshot; because [`ParetoFront::insert`] is deterministic
//! and idempotent (re-offering a present point is a no-op), replay after
//! any crash point — torn final record, compaction interrupted between
//! snapshot write and log truncation — reproduces a front bit-identical
//! to the pre-crash one (floats round-trip via shortest-representation
//! formatting).
//!
//! Reads never touch the write path: every merge publishes an immutable
//! [`FrontierSnapshot`] into a [`SnapshotCell`] (an `Arc` swap stamped
//! with a monotone epoch), and all query traffic — the `frontier`,
//! `query` and `query_batch` verbs, `keys`, `front_json` — resolves
//! against the snapshot without taking the store mutex.

use crate::cluster::{ReplHandshake, ReplicationHub, Topology};
use crate::query::{FrontView, FrontierSnapshot, SnapshotCell};
use prefix_graph::PrefixGraph;
use prefixrl_core::checkpoint::write_atomic;
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::pareto::ParetoFront;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The on-disk schema identifier of the compacted store file.
pub const STORE_SCHEMA: &str = "prefixrl.frontier-store.v1";

/// The schema identifier on the write-ahead log's header line.
pub const WAL_SCHEMA: &str = "prefixrl.frontier-wal.v1";

/// How many WAL records accumulate before the store compacts, unless
/// overridden via [`FrontierStore::open_with`].
pub const COMPACT_EVERY_DEFAULT: u64 = 64;

/// The store key of a `(task, backend, width)` combination.
pub fn key_of(task: &str, backend: &str, n: u16) -> String {
    format!("{task}/{backend}/{n}")
}

/// Splits a composite store key back into `(task, backend, n)` — the
/// inverse of [`key_of`], unambiguous because [`validate_names`] bans `/`
/// inside names.
///
/// # Errors
///
/// Fails on a key that is not exactly `task/backend/width`.
pub fn parse_key(key: &str) -> Result<(String, String, u16), String> {
    let parts: Vec<&str> = key.split('/').collect();
    let [task, backend, n] = parts.as_slice() else {
        return Err(format!("malformed store key `{key}` (want task/backend/n)"));
    };
    validate_names(task, backend).map_err(|e| format!("store key `{key}`: {e}"))?;
    let n: u16 = n
        .parse()
        .map_err(|_| format!("store key `{key}`: width `{n}` is not a u16"))?;
    Ok(((*task).to_string(), (*backend).to_string(), n))
}

/// Rejects task/backend names that would alias composite keys: `/` is the
/// key separator, so `task="a/b", backend="c"` and `task="a",
/// backend="b/c"` would otherwise collide on `a/b/c/<n>`. Empty names are
/// rejected for the same reason (`"a/"` + `"b"` vs `"a"` + `"/b"`).
///
/// # Errors
///
/// Fails with a message naming the offending field.
pub fn validate_names(task: &str, backend: &str) -> Result<(), String> {
    for (field, name) in [("task", task), ("backend", backend)] {
        if name.is_empty() {
            return Err(format!("field `{field}`: name must not be empty"));
        }
        if name.contains('/') {
            return Err(format!(
                "field `{field}`: name `{name}` contains `/`, which is the store's \
                 key separator and would alias another (task, backend, n) key"
            ));
        }
    }
    Ok(())
}

/// Zeroed headroom kept preallocated (and pre-written, so its extents
/// are past the unwritten→written metadata transition) beyond the log's
/// logical end. Record appends then overwrite allocated blocks in place,
/// and their `fdatasync` has no file-size or extent change to journal —
/// on ext4 a metadata-carrying fsync is a journal commit, and journal
/// commits serialize **across files**, which would defeat the point of
/// sharded per-store WALs syncing concurrently (BENCH_cluster.json).
const WAL_PREALLOC_CHUNK: u64 = 256 * 1024;

/// The open write-ahead log of a persisted store.
struct Wal {
    file: std::fs::File,
    path: PathBuf,
    /// Records currently in the log (not counting the header line).
    records: u64,
    /// Logical end of the log: every byte below is header or record
    /// bytes; `len..allocated` is preallocated zeros. The write cursor
    /// sits at `len` between operations.
    len: u64,
    /// Physical zero-filled extent of the file.
    allocated: u64,
}

/// The mutable half of the store, under one mutex: the authoritative
/// fronts plus the persistence state. Readers never take this mutex —
/// they go through [`FrontierStore::snapshot`].
struct Inner {
    fronts: BTreeMap<String, ParetoFront<PrefixGraph>>,
    wal: Option<Wal>,
    compactions: u64,
    repl: Option<ReplState>,
}

/// Replication state of a cluster-mode store: the fan-out hub plus the
/// topology deciding which keys this node ships (only the ones it owns —
/// replicated keys are never re-shipped, so records can't cascade around
/// the follower ring).
struct ReplState {
    hub: Arc<ReplicationHub>,
    topology: Topology,
}

/// A disk-backed map from `(task, backend, width)` to the combined Pareto
/// front of every design pool ever merged under that key, with a
/// lock-free snapshot tier for readers.
pub struct FrontierStore {
    path: Option<PathBuf>,
    compact_every: u64,
    inner: Mutex<Inner>,
    cell: SnapshotCell,
}

impl FrontierStore {
    /// An unpersisted store (tests, ephemeral servers).
    pub fn in_memory() -> Self {
        FrontierStore {
            path: None,
            compact_every: COMPACT_EVERY_DEFAULT,
            inner: Mutex::new(Inner {
                fronts: BTreeMap::new(),
                wal: None,
                compactions: 0,
                repl: None,
            }),
            cell: SnapshotCell::default(),
        }
    }

    /// Opens (or creates) a store persisted at `path` with the default
    /// compaction threshold. See [`FrontierStore::open_with`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/mismatched store or log file.
    pub fn open(path: &Path) -> Result<Self, String> {
        Self::open_with(path, COMPACT_EVERY_DEFAULT)
    }

    /// Opens (or creates) a store persisted at `path`, compacting after
    /// every `compact_every` WAL records. An existing store is loaded
    /// from the compacted snapshot and the log replayed over it: the
    /// fronts it serves afterwards are bit-identical to the ones last
    /// merged. A torn final log line (crash mid-append) is discarded;
    /// a log already over the threshold is compacted on open.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/mismatched store or log file
    /// (anything other than a torn final line).
    pub fn open_with(path: &Path, compact_every: u64) -> Result<Self, String> {
        let compact_every = compact_every.max(1);
        let mut fronts = load_compacted(path)?;
        let wal_path = wal_path_of(path);
        let records = replay_wal(&wal_path, &mut fronts)?;
        let wal = open_wal(&wal_path, records)?;
        let store = FrontierStore {
            path: Some(path.to_path_buf()),
            compact_every,
            inner: Mutex::new(Inner {
                fronts,
                wal: Some(wal),
                compactions: 0,
                repl: None,
            }),
            cell: SnapshotCell::default(),
        };
        {
            let mut inner = lock(&store.inner);
            // A log already over the threshold (e.g. the previous process
            // died right before compacting) is absorbed on open.
            if records >= compact_every {
                store.compact_locked(&mut inner)?;
            }
            store.cell.publish(initial_snapshot(&inner.fronts));
        }
        Ok(store)
    }

    /// Merges a design pool into the front stored under
    /// `(task, backend, n)`, creating it if absent; appends the accepted
    /// delta to the write-ahead log (fsyncing only that record) and
    /// publishes a fresh read snapshot. Returns how many points joined
    /// the front; the stored front never regresses (dominated candidates
    /// are rejected).
    ///
    /// # Errors
    ///
    /// Fails on a task/backend name containing `/` (which would alias
    /// another key — nothing is merged), or on persistence I/O errors
    /// (the in-memory merge is kept and published even if the write
    /// fails).
    pub fn merge(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        designs: &[(PrefixGraph, ObjectivePoint)],
    ) -> Result<usize, String> {
        validate_names(task, backend)?;
        let key = key_of(task, backend, n);
        let mut inner = lock(&self.inner);
        let newly_created = !inner.fronts.contains_key(&key);
        let front = inner.fronts.entry(key.clone()).or_default();
        let mut accepted: Vec<(PrefixGraph, ObjectivePoint)> = Vec::new();
        for (graph, point) in designs {
            if front.insert(*point, graph.clone()) {
                accepted.push((graph.clone(), *point));
            }
        }
        let inserted = accepted.len();
        // Publish before touching the disk: readers see the merged front
        // immediately and never wait on the WAL fsync. The snapshot swap
        // happens under the store mutex, so publishes are serialized and
        // epochs stay in merge order.
        let view = Arc::new(FrontView::build(&key, front));
        self.cell.publish(self.cell.load().successor(&key, view));
        // Log only when replay needs the record: an accepted delta, or
        // the bare creation of a new (possibly empty-front) key.
        if inserted > 0 || newly_created {
            let designs = Serialize::to_value(&accepted.to_vec());
            self.append_record_locked(&mut inner, &key, designs.clone())?;
            // Ship only after the fsync above returned, and only keys this
            // node owns: a primary's durable state is always a superset of
            // what its followers have seen, and replica-applied keys are
            // never re-shipped (no cascades around the follower ring).
            if let Some(repl) = &inner.repl {
                if repl.topology.owns(&key) {
                    repl.hub.publish(&key, designs);
                }
            }
        }
        Ok(inserted)
    }

    /// Switches the store into cluster mode: merges of keys this topology
    /// owns are published to the replication hub after their WAL fsync.
    /// Call once, before serving.
    pub fn enable_replication(&self, topology: Topology) {
        let mut inner = lock(&self.inner);
        inner.repl = Some(ReplState {
            hub: Arc::new(ReplicationHub::new()),
            topology,
        });
    }

    /// The replication epoch of this store open (`None` when not in
    /// cluster mode).
    pub fn replication_epoch(&self) -> Option<u64> {
        lock(&self.inner).repl.as_ref().map(|r| r.hub.epoch())
    }

    /// `(next_seq, live_subscribers)` of the replication hub, for the
    /// `cluster` diagnostics verb.
    pub fn replication_stats(&self) -> Option<(u64, usize)> {
        lock(&self.inner).repl.as_ref().map(|r| r.hub.stats())
    }

    /// Applies one replicated record (or one snapshot entry) from a
    /// primary: deserializes the shipped designs and merges them under
    /// `key` through the same idempotent path local merges take. The
    /// record lands in this node's own WAL for durability, but is never
    /// re-published (this node does not own the key).
    ///
    /// # Errors
    ///
    /// Fails on a malformed key or designs payload, or on local
    /// persistence errors.
    pub fn apply_replica(&self, key: &str, designs: &Value) -> Result<usize, String> {
        let (task, backend, n) = parse_key(key)?;
        let designs = <Vec<(PrefixGraph, ObjectivePoint)> as Deserialize>::from_value(designs)
            .map_err(|e| format!("replicated designs for `{key}`: {e}"))?;
        self.merge(&task, &backend, n, &designs)
    }

    /// Resolves a `repl_subscribe` handshake atomically against the merge
    /// path: registers the subscriber and cuts either an offset resume
    /// (epoch match, backlog still covers `from_seq`) or a full
    /// owned-keys snapshot, all under the store mutex so no record can
    /// fall between the cut and the live stream.
    ///
    /// # Errors
    ///
    /// Fails when the store is not in cluster mode.
    pub fn subscribe_replication(
        &self,
        from_epoch: u64,
        from_seq: u64,
    ) -> Result<ReplHandshake, String> {
        let inner = lock(&self.inner);
        let Some(repl) = &inner.repl else {
            return Err(
                "replication is not enabled on this server (start it with --peers)".to_string(),
            );
        };
        let (needs_snapshot, resume_seq, replay, rx) = repl.hub.subscribe(from_epoch, from_seq);
        let snapshot = if needs_snapshot {
            Some(Value::Object(
                inner
                    .fronts
                    .iter()
                    .filter(|(key, _)| repl.topology.owns(key))
                    .map(|(key, front)| (key.clone(), designs_json(front)))
                    .collect(),
            ))
        } else {
            None
        };
        Ok(ReplHandshake {
            epoch: repl.hub.epoch(),
            resume_seq,
            snapshot,
            replay,
            rx,
        })
    }

    /// The current immutable read snapshot (an `Arc` clone — never takes
    /// the store mutex, never blocks on a concurrent merge's fsync).
    pub fn snapshot(&self) -> Arc<FrontierSnapshot> {
        self.cell.load()
    }

    /// The epoch of the current snapshot (lock-free; bumps on every
    /// merge, resets to 0 when a store is reopened).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Runs `f` on the stored front for a key — `None` if nothing was
    /// ever merged under it — without cloning it. The store mutex is held
    /// for the duration of `f`; for read-mostly traffic prefer
    /// [`FrontierStore::snapshot`].
    pub fn with_front<R>(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        f: impl FnOnce(Option<&ParetoFront<PrefixGraph>>) -> R,
    ) -> R {
        let inner = lock(&self.inner);
        f(inner.fronts.get(&key_of(task, backend, n)))
    }

    /// Every key with a stored front, in sorted order (snapshot read).
    pub fn keys(&self) -> Vec<String> {
        self.snapshot().keys()
    }

    /// Serializes one stored front for the wire: an array of
    /// `{area, delay, size, depth}` points in increasing-delay order
    /// (graphs included with `include_graphs`), or [`Value::Null`] if the
    /// key was never merged — distinguishable from a merged-but-empty
    /// front, which is `[]`. Resolves against the current snapshot.
    pub fn front_json(&self, task: &str, backend: &str, n: u16, include_graphs: bool) -> Value {
        let snapshot = self.snapshot();
        let Some(view) = snapshot.front(task, backend, n) else {
            return Value::Null;
        };
        Value::Array(
            (0..view.len())
                .map(|i| {
                    let p = &view.points()[i];
                    let mut entry = serde_json::json!({
                        "area": p.area,
                        "delay": p.delay,
                        "size": p.size,
                        "depth": p.depth,
                    });
                    if include_graphs {
                        if let Value::Object(entries) = &mut entry {
                            entries.push(("graph".to_string(), Serialize::to_value(view.graph(i))));
                        }
                    }
                    entry
                })
                .collect(),
        )
    }

    /// Persistence counters for the `ping` diagnostics payload:
    /// `{epoch, keys, wal_records, compactions}`.
    pub fn stats_json(&self) -> Value {
        let snapshot = self.snapshot();
        let inner = lock(&self.inner);
        serde_json::json!({
            "epoch": snapshot.epoch(),
            "keys": snapshot.keys().len() as u64,
            "wal_records": inner.wal.as_ref().map_or(0, |w| w.records),
            "compactions": inner.compactions,
        })
    }

    /// Appends one merge record to the WAL, fsyncs it, and compacts when
    /// the record count reaches the threshold.
    fn append_record_locked(
        &self,
        inner: &mut Inner,
        key: &str,
        designs: Value,
    ) -> Result<(), String> {
        if inner.wal.is_none() {
            return Ok(());
        }
        let record = Value::Object(vec![
            ("key".to_string(), Value::String(key.to_string())),
            ("designs".to_string(), designs),
        ]);
        let mut line = serde_json::to_string(&record).expect("infallible");
        line.push('\n');
        {
            let wal = inner.wal.as_mut().expect("checked above");
            let bytes = line.as_bytes();
            if wal.len + bytes.len() as u64 > wal.allocated {
                preallocate(wal, bytes.len() as u64)?;
            }
            // In-place write within the preallocated extent — the cursor
            // sits at `wal.len`, inside already-written blocks.
            wal.file
                .write_all(bytes)
                .map_err(|e| format!("append {}: {e}", wal.path.display()))?;
            // Fsync only the delta — this is the whole point of the WAL:
            // merge durability no longer costs a full-store rewrite. With
            // the extent preallocated there is no metadata to journal, so
            // this is pure data writeback (see [`WAL_PREALLOC_CHUNK`]).
            wal.file
                .sync_data()
                .map_err(|e| format!("sync {}: {e}", wal.path.display()))?;
            wal.len += bytes.len() as u64;
            wal.records += 1;
            if wal.records < self.compact_every {
                return Ok(());
            }
        }
        self.compact_locked(inner)
    }

    /// Writes the full compacted snapshot (fsynced), then truncates the
    /// WAL back to its header. A crash between the two leaves both the
    /// snapshot *and* the log containing the same merges — harmless,
    /// because replay through [`ParetoFront::insert`] is idempotent.
    fn compact_locked(&self, inner: &mut Inner) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        write_atomic(path, &compacted_text(&inner.fronts))?;
        // `write_atomic` renames but does not fsync; sync before
        // truncating the log so the snapshot can never be lost while the
        // records it absorbed are.
        std::fs::File::open(path)
            .and_then(|f| f.sync_all())
            .map_err(|e| format!("sync {}: {e}", path.display()))?;
        if let Some(wal) = inner.wal.as_mut() {
            truncate_to_header(wal)?;
            wal.records = 0;
        }
        inner.compactions += 1;
        Ok(())
    }
}

/// One front as the `[(graph, point), …]` designs array replication
/// ships — the same shape merge records carry, so followers apply
/// snapshot entries and records through one code path.
fn designs_json(front: &ParetoFront<PrefixGraph>) -> Value {
    Value::Array(
        front
            .iter()
            .map(|(point, graph)| {
                Value::Array(vec![Serialize::to_value(graph), Serialize::to_value(point)])
            })
            .collect(),
    )
}

/// The compacted full-store file contents — the pre-WAL
/// `prefixrl.frontier-store.v1` format, unchanged.
fn compacted_text(fronts: &BTreeMap<String, ParetoFront<PrefixGraph>>) -> String {
    let entries: Vec<(String, Value)> = fronts
        .iter()
        .map(|(k, front)| (k.clone(), Serialize::to_value(front)))
        .collect();
    let value = Value::Object(vec![
        (
            "schema".to_string(),
            Value::String(STORE_SCHEMA.to_string()),
        ),
        ("fronts".to_string(), Value::Object(entries)),
    ]);
    serde_json::to_string_pretty(&value).expect("infallible")
}

/// Loads the compacted snapshot file, or an empty map when absent.
fn load_compacted(path: &Path) -> Result<BTreeMap<String, ParetoFront<PrefixGraph>>, String> {
    let mut fronts = BTreeMap::new();
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let value: Value = serde_json::from_str(&text)
                .map_err(|e| format!("parse {}: {e}", path.display()))?;
            match value.get("schema").and_then(as_str) {
                Some(STORE_SCHEMA) => {}
                other => {
                    return Err(format!(
                        "{}: expected schema `{STORE_SCHEMA}`, found {other:?}",
                        path.display()
                    ))
                }
            }
            let entries = value
                .get("fronts")
                .and_then(Value::as_object)
                .ok_or_else(|| format!("{}: missing `fronts` object", path.display()))?;
            for (key, front) in entries {
                let front = <ParetoFront<PrefixGraph> as Deserialize>::from_value(front)
                    .map_err(|e| format!("{}: front `{key}`: {e}", path.display()))?;
                fronts.insert(key.clone(), front);
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    }
    Ok(fronts)
}

/// The log path next to a store path: `frontier.json` → `frontier.wal`.
fn wal_path_of(store_path: &Path) -> PathBuf {
    store_path.with_extension("wal")
}

/// The log's first line: `{"schema": "prefixrl.frontier-wal.v1"}\n`.
fn wal_header() -> String {
    let value = serde_json::json!({ "schema": WAL_SCHEMA });
    let mut line = serde_json::to_string(&value).expect("infallible");
    line.push('\n');
    line
}

/// Replays an existing log over `fronts`, returning how many records it
/// holds. A torn **final** line — the crash-mid-append case, and the
/// preallocated zero tail every closed log carries (see
/// [`WAL_PREALLOC_CHUNK`]) — is truncated away; a torn line anywhere
/// else is corruption and fails loudly. A missing or empty log is zero
/// records.
fn replay_wal(
    wal_path: &Path,
    fronts: &mut BTreeMap<String, ParetoFront<PrefixGraph>>,
) -> Result<u64, String> {
    let text = match std::fs::read_to_string(wal_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("read {}: {e}", wal_path.display())),
    };
    // A complete line — header or record — always ends in '\n' before its
    // fsync returns, so anything after the last '\n' is a torn tail:
    // preallocated zeros (NUL never occurs inside a record), a half-
    // written record, or both.
    let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
    let torn = text.len() - complete.len();
    if torn > 0 {
        truncate_file(wal_path, complete.len() as u64)?;
    }
    let mut records = 0u64;
    for (i, line) in complete.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{} line {}: {e}", wal_path.display(), i + 1))?;
        if i == 0 {
            match value.get("schema").and_then(as_str) {
                Some(WAL_SCHEMA) => continue,
                other => {
                    return Err(format!(
                        "{}: expected schema `{WAL_SCHEMA}`, found {other:?}",
                        wal_path.display()
                    ))
                }
            }
        }
        let key = value
            .get("key")
            .and_then(as_str)
            .ok_or_else(|| format!("{} line {}: missing `key`", wal_path.display(), i + 1))?;
        let designs = value
            .get("designs")
            .ok_or_else(|| format!("{} line {}: missing `designs`", wal_path.display(), i + 1))?;
        let designs = <Vec<(PrefixGraph, ObjectivePoint)> as Deserialize>::from_value(designs)
            .map_err(|e| format!("{} line {}: {e}", wal_path.display(), i + 1))?;
        let front = fronts.entry(key.to_string()).or_default();
        for (graph, point) in designs {
            // Idempotent: a record already absorbed by the compacted
            // snapshot (crash between snapshot write and log truncation)
            // re-offers points the front holds, which `insert` rejects.
            front.insert(point, graph);
        }
        records += 1;
    }
    Ok(records)
}

/// Opens the log for writing, appending the schema header if the file is
/// new or empty, and preallocating the zeroed headroom record appends
/// write into. [`replay_wal`] ran first, so the file's physical size *is*
/// the logical end (any zero tail from a previous run was truncated away
/// with the torn-tail repair).
fn open_wal(wal_path: &Path, records: u64) -> Result<Wal, String> {
    // Not `append` mode: appends always land at the physical end of the
    // file, which preallocation pushes past the logical end. The cursor
    // is positioned explicitly instead, and the existing contents (the
    // surviving log) must not be truncated.
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(wal_path)
        .map_err(|e| format!("open {}: {e}", wal_path.display()))?;
    let mut len = file
        .metadata()
        .map_err(|e| format!("stat {}: {e}", wal_path.display()))?
        .len();
    if len == 0 {
        file.write_all(wal_header().as_bytes())
            .map_err(|e| format!("write {}: {e}", wal_path.display()))?;
        file.sync_data()
            .map_err(|e| format!("sync {}: {e}", wal_path.display()))?;
        len = wal_header().len() as u64;
    }
    let mut wal = Wal {
        file,
        path: wal_path.to_path_buf(),
        records,
        len,
        allocated: len,
    };
    preallocate(&mut wal, 0)?;
    Ok(wal)
}

/// Extends the log's zero-filled headroom to at least `needed` bytes past
/// the logical end (one [`WAL_PREALLOC_CHUNK`] minimum) and re-positions
/// the cursor at the logical end. The zeros are written and `sync_all`ed
/// once here, so the extent allocation's metadata journaling is paid up
/// front instead of on every record's fsync. A crash leaves a zero tail
/// after the last record's newline, which the next open discards exactly
/// like a torn append.
fn preallocate(wal: &mut Wal, needed: u64) -> Result<(), String> {
    let target = wal.len + needed.max(WAL_PREALLOC_CHUNK);
    if wal.allocated < target {
        wal.file
            .seek(std::io::SeekFrom::Start(wal.allocated))
            .map_err(|e| format!("seek {}: {e}", wal.path.display()))?;
        let zeros = vec![0u8; (target - wal.allocated) as usize];
        wal.file
            .write_all(&zeros)
            .map_err(|e| format!("preallocate {}: {e}", wal.path.display()))?;
        wal.file
            .sync_all()
            .map_err(|e| format!("sync {}: {e}", wal.path.display()))?;
        wal.allocated = target;
    }
    wal.file
        .seek(std::io::SeekFrom::Start(wal.len))
        .map_err(|e| format!("seek {}: {e}", wal.path.display()))?;
    Ok(())
}

/// Truncates an open log back to its header line and re-preallocates its
/// headroom.
fn truncate_to_header(wal: &mut Wal) -> Result<(), String> {
    let header_len = wal_header().len() as u64;
    wal.file
        .set_len(header_len)
        .map_err(|e| format!("truncate {}: {e}", wal.path.display()))?;
    wal.file
        .sync_data()
        .map_err(|e| format!("sync {}: {e}", wal.path.display()))?;
    wal.len = header_len;
    wal.allocated = header_len;
    preallocate(wal, 0)
}

/// Truncates a closed file to `len` bytes (torn-tail repair on open).
fn truncate_file(path: &Path, len: u64) -> Result<(), String> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    file.set_len(len)
        .map_err(|e| format!("truncate {}: {e}", path.display()))?;
    file.sync_data()
        .map_err(|e| format!("sync {}: {e}", path.display()))?;
    Ok(())
}

/// Builds the epoch-0 snapshot of a freshly opened store.
fn initial_snapshot(fronts: &BTreeMap<String, ParetoFront<PrefixGraph>>) -> FrontierSnapshot {
    let views = fronts
        .iter()
        .map(|(k, f)| (k.clone(), Arc::new(FrontView::build(k, f))))
        .collect();
    FrontierSnapshot::with_fronts(0, views)
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s),
        _ => None,
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
