//! The persistent cross-run frontier store (DESIGN.md §13).
//!
//! The paper's headline artifact is the *combined* area–delay Pareto front
//! assembled from many scalarized agents (Fig. 4). A one-shot CLI run
//! rebuilds that front from scratch every time; a resident server instead
//! folds every finished job's design pool into one continuously-merged
//! front per `(task, backend, width)` key and keeps it on disk, so learned
//! effort accumulates across jobs and survives restarts.
//!
//! Merging goes through [`prefixrl_core::pareto::ParetoFront::insert`],
//! whose dominance filtering guarantees the monotonicity contract: a merge
//! can only tighten a stored front, never regress it — a new job's
//! dominated points are rejected, its dominating points evict what they
//! beat. Keys isolate fully (an adder result can never surface in a
//! prefix-OR query), and persistence uses the checkpoint machinery's
//! unique-temp-name [`prefixrl_core::checkpoint::write_atomic`], so a
//! crash mid-write never corrupts the previous store and the reloaded
//! front is bit-identical to the one last persisted (floats round-trip via
//! shortest-representation formatting).

use prefix_graph::PrefixGraph;
use prefixrl_core::checkpoint::write_atomic;
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::pareto::ParetoFront;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The on-disk schema identifier of the store file.
pub const STORE_SCHEMA: &str = "prefixrl.frontier-store.v1";

/// The store key of a `(task, backend, width)` combination.
pub fn key_of(task: &str, backend: &str, n: u16) -> String {
    format!("{task}/{backend}/{n}")
}

/// A disk-backed map from `(task, backend, width)` to the combined Pareto
/// front of every design pool ever merged under that key.
pub struct FrontierStore {
    path: Option<PathBuf>,
    fronts: Mutex<BTreeMap<String, ParetoFront<PrefixGraph>>>,
}

impl FrontierStore {
    /// An unpersisted store (tests, ephemeral servers).
    pub fn in_memory() -> Self {
        FrontierStore {
            path: None,
            fronts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Opens (or creates) a store persisted at `path`. An existing file is
    /// loaded as-is: the fronts it returns afterwards are bit-identical to
    /// the ones last persisted.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/mismatched store file.
    pub fn open(path: &Path) -> Result<Self, String> {
        let mut fronts = BTreeMap::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let value: serde_json::Value = serde_json::from_str(&text)
                    .map_err(|e| format!("parse {}: {e}", path.display()))?;
                match value.get("schema").and_then(as_str) {
                    Some(STORE_SCHEMA) => {}
                    other => {
                        return Err(format!(
                            "{}: expected schema `{STORE_SCHEMA}`, found {other:?}",
                            path.display()
                        ))
                    }
                }
                let entries = value
                    .get("fronts")
                    .and_then(serde::Value::as_object)
                    .ok_or_else(|| format!("{}: missing `fronts` object", path.display()))?;
                for (key, front) in entries {
                    let front = <ParetoFront<PrefixGraph> as Deserialize>::from_value(front)
                        .map_err(|e| format!("{}: front `{key}`: {e}", path.display()))?;
                    fronts.insert(key.clone(), front);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        }
        Ok(FrontierStore {
            path: Some(path.to_path_buf()),
            fronts: Mutex::new(fronts),
        })
    }

    /// Merges a design pool into the front stored under
    /// `(task, backend, n)`, creating it if absent, and persists the whole
    /// store atomically. Returns how many points joined the front; the
    /// stored front never regresses (dominated candidates are rejected).
    ///
    /// # Errors
    ///
    /// Fails only on persistence I/O errors (the in-memory merge is
    /// infallible and is kept even if the write fails).
    pub fn merge(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        designs: &[(PrefixGraph, ObjectivePoint)],
    ) -> Result<usize, String> {
        let key = key_of(task, backend, n);
        let mut fronts = lock(&self.fronts);
        let front = fronts.entry(key).or_default();
        let mut inserted = 0;
        for (graph, point) in designs {
            if front.insert(*point, graph.clone()) {
                inserted += 1;
            }
        }
        self.persist_locked(&fronts)?;
        Ok(inserted)
    }

    /// The stored front for a key, or `None` if nothing was ever merged
    /// under it.
    pub fn front(&self, task: &str, backend: &str, n: u16) -> Option<ParetoFront<PrefixGraph>> {
        lock(&self.fronts).get(&key_of(task, backend, n)).cloned()
    }

    /// Every key with a stored front, in sorted order.
    pub fn keys(&self) -> Vec<String> {
        lock(&self.fronts).keys().cloned().collect()
    }

    /// Serializes one stored front for the wire: an array of
    /// `{area, delay, size, depth}` points in increasing-delay order
    /// (graphs included with `include_graphs`).
    pub fn front_json(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        include_graphs: bool,
    ) -> serde_json::Value {
        let fronts = lock(&self.fronts);
        let Some(front) = fronts.get(&key_of(task, backend, n)) else {
            return serde_json::Value::Array(Vec::new());
        };
        serde_json::Value::Array(
            front
                .iter()
                .map(|(p, g)| {
                    let mut entry = serde_json::json!({
                        "area": p.area,
                        "delay": p.delay,
                        "size": g.size(),
                        "depth": g.depth(),
                    });
                    if include_graphs {
                        if let serde_json::Value::Object(entries) = &mut entry {
                            entries.push(("graph".to_string(), Serialize::to_value(g)));
                        }
                    }
                    entry
                })
                .collect(),
        )
    }

    fn persist_locked(
        &self,
        fronts: &BTreeMap<String, ParetoFront<PrefixGraph>>,
    ) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let entries: Vec<(String, serde_json::Value)> = fronts
            .iter()
            .map(|(k, front)| (k.clone(), Serialize::to_value(front)))
            .collect();
        let value = serde_json::Value::Object(vec![
            (
                "schema".to_string(),
                serde_json::Value::String(STORE_SCHEMA.to_string()),
            ),
            ("fronts".to_string(), serde_json::Value::Object(entries)),
        ]);
        write_atomic(
            path,
            &serde_json::to_string_pretty(&value).expect("infallible"),
        )
    }
}

fn as_str(v: &serde_json::Value) -> Option<&str> {
    match v {
        serde_json::Value::String(s) => Some(s),
        _ => None,
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
