//! A small synchronous client for the `prefixrl.serve.v1` protocol —
//! what the `prefixrl submit|status|cancel|frontier` subcommands and the
//! in-process tests/benches speak.

use crate::jobs::JobSpec;
use crate::protocol::PROTOCOL;
use serde::Serialize;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One server address; every request opens a short-lived connection, so a
/// `Client` is freely cloneable and never holds a socket across calls.
#[derive(Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7878`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Fails on connection/I/O errors, a malformed response, or an
    /// `"ok": false` response (the server's error message is returned).
    pub fn request(&self, request: &Value) -> Result<Value, String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut text = serde_json::to_string(request).expect("infallible");
        text.push('\n');
        writer
            .write_all(text.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send to {}: {e}", self.addr))?;
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .map_err(|e| format!("receive from {}: {e}", self.addr))?;
        if line.trim().is_empty() {
            return Err(format!("server {} closed without responding", self.addr));
        }
        let response: Value = serde_json::from_str(line.trim())
            .map_err(|e| format!("malformed response from {}: {e}", self.addr))?;
        match response.get("ok") {
            Some(Value::Bool(true)) => Ok(response),
            Some(Value::Bool(false)) => Err(match response.get("error") {
                Some(Value::String(e)) => e.clone(),
                _ => "unspecified server error".to_string(),
            }),
            _ => Err(format!("response from {} lacks `ok`", self.addr)),
        }
    }

    fn cmd(&self, cmd: &str, mut fields: Vec<(String, Value)>) -> Result<Value, String> {
        let mut entries = vec![
            ("proto".to_string(), Value::String(PROTOCOL.to_string())),
            ("cmd".to_string(), Value::String(cmd.to_string())),
        ];
        entries.append(&mut fields);
        self.request(&Value::Object(entries))
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Fails while the server is unreachable.
    pub fn ping(&self) -> Result<Value, String> {
        self.cmd("ping", Vec::new())
    }

    /// Polls [`Client::ping`] until the server answers or `timeout`
    /// elapses — for scripts racing a freshly booted server.
    ///
    /// # Errors
    ///
    /// Fails with the last connection error on timeout.
    pub fn wait_until_ready(&self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.ping() {
                Ok(_) => return Ok(()),
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("server not ready within {timeout:?}: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates server-side validation failures (unknown task/backend,
    /// duplicate weights, full queue).
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, String> {
        let response = self.cmd("submit", vec![("job".to_string(), spec.to_value())])?;
        match response.get("id") {
            Some(Value::Number(n)) => n.as_u64().ok_or_else(|| "non-integer id".to_string()),
            _ => Err("submit response lacks `id`".to_string()),
        }
    }

    /// One job's status snapshot with up to `tail` recent events.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id.
    pub fn status(&self, id: u64, tail: usize) -> Result<Value, String> {
        let response = self.cmd(
            "status",
            vec![
                ("id".to_string(), Value::Number(serde::Number::UInt(id))),
                (
                    "tail".to_string(),
                    Value::Number(serde::Number::UInt(tail as u64)),
                ),
            ],
        )?;
        response
            .get("job")
            .cloned()
            .ok_or_else(|| "status response lacks `job`".to_string())
    }

    /// Polls `status` until the job's phase is one of `phases` or
    /// `timeout` elapses; returns the final snapshot.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id or on timeout (reporting the last phase).
    pub fn wait_for_phase(
        &self,
        id: u64,
        phases: &[&str],
        timeout: Duration,
    ) -> Result<Value, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let snapshot = self.status(id, 0)?;
            let phase = match snapshot.get("phase") {
                Some(Value::String(p)) => p.clone(),
                _ => return Err("status snapshot lacks `phase`".to_string()),
            };
            if phases.contains(&phase.as_str()) {
                return Ok(snapshot);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "job {id} still `{phase}` after {timeout:?} (wanted one of {phases:?})"
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Every job's brief snapshot.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn list(&self) -> Result<Value, String> {
        let response = self.cmd("list", Vec::new())?;
        response
            .get("jobs")
            .cloned()
            .ok_or_else(|| "list response lacks `jobs`".to_string())
    }

    /// Cancels a job (queued: removed; running: stops within one tick).
    ///
    /// # Errors
    ///
    /// Fails on an unknown or already-finished job.
    pub fn cancel(&self, id: u64) -> Result<Value, String> {
        self.cmd(
            "cancel",
            vec![("id".to_string(), Value::Number(serde::Number::UInt(id)))],
        )
    }

    /// The stored merged front for `(task, backend, n)`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn frontier(&self, task: &str, backend: &str, n: u16) -> Result<Value, String> {
        self.cmd(
            "frontier",
            vec![
                ("task".to_string(), Value::String(task.to_string())),
                ("backend".to_string(), Value::String(backend.to_string())),
                (
                    "n".to_string(),
                    Value::Number(serde::Number::UInt(n as u64)),
                ),
            ],
        )
    }

    /// One read-tier query (see [`crate::query`]): `extra` carries the
    /// mode parameters, e.g. `[("delay", 2.5)]` for `best_at_delay`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a query the server rejects (unknown mode,
    /// weight outside `[0, 1]`, aliasing names).
    pub fn query(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        mode: &str,
        extra: Vec<(String, Value)>,
    ) -> Result<Value, String> {
        let mut fields = vec![
            ("task".to_string(), Value::String(task.to_string())),
            ("backend".to_string(), Value::String(backend.to_string())),
            (
                "n".to_string(),
                Value::Number(serde::Number::UInt(n as u64)),
            ),
            ("mode".to_string(), Value::String(mode.to_string())),
        ];
        fields.extend(extra);
        self.cmd("query", fields)
    }

    /// The minimum-area stored design with delay ≤ `delay` (the fastest
    /// design, flagged `met: false`, when nothing is that fast).
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn query_best_at_delay(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        delay: f64,
    ) -> Result<Value, String> {
        self.query(
            task,
            backend,
            n,
            "best_at_delay",
            vec![(
                "delay".to_string(),
                Value::Number(serde::Number::Float(delay)),
            )],
        )
    }

    /// The scalarized-argmin stored design at area-weight `w ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn query_best_at_weight(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        w: f64,
    ) -> Result<Value, String> {
        self.query(
            task,
            backend,
            n,
            "best_at_weight",
            vec![("w".to_string(), Value::Number(serde::Number::Float(w)))],
        )
    }

    /// Every stored design with delay in `[delay_lo, delay_hi]`.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn query_range(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        delay_lo: f64,
        delay_hi: f64,
    ) -> Result<Value, String> {
        self.query(
            task,
            backend,
            n,
            "range",
            vec![
                (
                    "delay_lo".to_string(),
                    Value::Number(serde::Number::Float(delay_lo)),
                ),
                (
                    "delay_hi".to_string(),
                    Value::Number(serde::Number::Float(delay_hi)),
                ),
            ],
        )
    }

    /// A batch of query payloads answered against one snapshot (every
    /// result reflects the same `epoch`). Each payload is the object
    /// [`Client::query`] would send, minus `proto`/`cmd`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an over-cap batch; per-query failures come
    /// back inline in `results`.
    pub fn query_batch(&self, queries: Vec<Value>) -> Result<Value, String> {
        self.cmd(
            "query_batch",
            vec![("queries".to_string(), Value::Array(queries))],
        )
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Fails when the request cannot be delivered.
    pub fn shutdown(&self) -> Result<(), String> {
        self.cmd("shutdown", Vec::new()).map(|_| ())
    }
}
