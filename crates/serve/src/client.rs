//! A small synchronous client for the `prefixrl.serve.v1` protocol —
//! what the `prefixrl submit|status|cancel|frontier` subcommands, the
//! [`crate::cluster::Router`], and the in-process tests/benches speak.
//!
//! The client keeps **one persistent connection** per `Client` (wire
//! throughput used to be connection-setup bound: a fresh TCP handshake
//! per request capped `query` at ~100k req/s vs 5.8M in-process,
//! BENCH_query.json). The socket sets `TCP_NODELAY` — each request is one
//! small line, exactly the write pattern Nagle's algorithm would sit on —
//! and reconnects transparently when a cached connection turns out stale
//! (e.g. the server restarted between requests). A request that may
//! already have reached the server is never retried unless it is
//! idempotent: every verb except `submit` is.

use crate::jobs::JobSpec;
use crate::protocol::PROTOCOL;
use serde::Serialize;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default per-request read/write timeout (override with
/// [`Client::with_timeout`]).
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a request failed — split so the [`crate::cluster::Router`] can
/// fail a *transport* error over to a follower while surfacing a
/// *rejection* (the server answered, and said no) immediately.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// The server could not be reached, timed out, or answered garbage;
    /// another replica may succeed.
    Transport(String),
    /// The server answered `"ok": false`; retrying elsewhere would return
    /// the same rejection.
    Rejected(String),
}

impl ClientError {
    /// Collapses the classification back into the flat error message the
    /// non-routing callers report.
    pub fn into_message(self) -> String {
        match self {
            ClientError::Transport(e) | ClientError::Rejected(e) => e,
        }
    }
}

/// One persistent connection's two halves.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One server address plus a lazily opened persistent connection.
/// Cloning yields an independent client (same address and timeout, its
/// own connection); concurrent requests on one `Client` serialize on the
/// connection.
pub struct Client {
    addr: String,
    timeout: Duration,
    conn: Mutex<Option<Conn>>,
}

impl Clone for Client {
    fn clone(&self) -> Client {
        Client {
            addr: self.addr.clone(),
            timeout: self.timeout,
            conn: Mutex::new(None),
        }
    }
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7878`) with the default
    /// timeout.
    pub fn new(addr: impl Into<String>) -> Client {
        Client::with_timeout(addr, DEFAULT_CLIENT_TIMEOUT)
    }

    /// A client whose per-request read/write timeout is `timeout`
    /// (clamped to ≥ 1 ms — a zero timeout would disable reads entirely).
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> Client {
        Client {
            addr: addr.into(),
            timeout: timeout.max(Duration::from_millis(1)),
            conn: Mutex::new(None),
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&self) -> Result<Conn, String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        // One-line requests must not sit in Nagle's buffer waiting for an
        // ACK that only arrives after the server saw the request.
        stream
            .set_nodelay(true)
            .map_err(|e| format!("nodelay {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Conn {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// One request/response exchange on an open connection. The error
    /// carries whether the request bytes were fully sent — the decider
    /// for whether a non-idempotent request may be retried.
    fn roundtrip(conn: &mut Conn, addr: &str, text: &str) -> Result<Value, (bool, String)> {
        conn.writer
            .write_all(text.as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|e| (false, format!("send to {addr}: {e}")))?;
        let mut line = String::new();
        conn.reader
            .read_line(&mut line)
            .map_err(|e| (true, format!("receive from {addr}: {e}")))?;
        if line.trim().is_empty() {
            return Err((true, format!("server {addr} closed without responding")));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| (true, format!("malformed response from {addr}: {e}")))
    }

    fn classify(addr: &str, response: Value) -> Result<Value, ClientError> {
        match response.get("ok") {
            Some(Value::Bool(true)) => Ok(response),
            Some(Value::Bool(false)) => Err(ClientError::Rejected(match response.get("error") {
                Some(Value::String(e)) => e.clone(),
                _ => "unspecified server error".to_string(),
            })),
            _ => Err(ClientError::Transport(format!(
                "response from {addr} lacks `ok`"
            ))),
        }
    }

    /// Sends one request line and reads one response line over the
    /// persistent connection, classifying the failure mode.
    ///
    /// A failure on a *cached* connection is retried once on a fresh one
    /// (the server may have restarted since the last request) — except a
    /// `submit` whose bytes were already sent, which is not idempotent
    /// and must stay at-most-once.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on connection/I-O/timeout errors or a
    /// malformed response; [`ClientError::Rejected`] on `"ok": false`.
    pub fn try_request(&self, request: &Value) -> Result<Value, ClientError> {
        let mut text = serde_json::to_string(request).expect("infallible");
        text.push('\n');
        let idempotent = request.get("cmd") != Some(&Value::String("submit".to_string()));
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let cached = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect().map_err(ClientError::Transport)?);
        }
        match Self::roundtrip(guard.as_mut().expect("just set"), &self.addr, &text) {
            Ok(response) => Self::classify(&self.addr, response),
            Err((sent, error)) => {
                *guard = None;
                if cached && (idempotent || !sent) {
                    let mut conn = self.connect().map_err(ClientError::Transport)?;
                    match Self::roundtrip(&mut conn, &self.addr, &text) {
                        Ok(response) => {
                            *guard = Some(conn);
                            Self::classify(&self.addr, response)
                        }
                        Err((_, retry_error)) => Err(ClientError::Transport(retry_error)),
                    }
                } else {
                    Err(ClientError::Transport(error))
                }
            }
        }
    }

    /// Sends one request line on the persistent connection **without
    /// reading the response** — the scatter half of the router's
    /// cross-shard pipelining ([`crate::cluster::Router::query_batch`]
    /// puts every shard's sub-batch on the wire before gathering any
    /// answer, so the shards work concurrently with no per-call thread
    /// spawns). A send failure on a *cached* connection is retried once
    /// on a fresh one: nothing has been answered yet, so the request is
    /// still at-most-once on the wire.
    ///
    /// The returned [`Pending`] holds the connection lock until its
    /// response is read — interleaving another request on the same
    /// client would desequence the wire.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the request cannot be put on the
    /// wire.
    pub(crate) fn send_request(&self, request: &Value) -> Result<Pending<'_>, ClientError> {
        let mut text = serde_json::to_string(request).expect("infallible");
        text.push('\n');
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let cached = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect().map_err(ClientError::Transport)?);
        }
        let send = |conn: &mut Conn| {
            conn.writer
                .write_all(text.as_bytes())
                .and_then(|()| conn.writer.flush())
        };
        if let Err(e) = send(guard.as_mut().expect("just set")) {
            *guard = None;
            if !cached {
                return Err(ClientError::Transport(format!(
                    "send to {}: {e}",
                    self.addr
                )));
            }
            let mut conn = self.connect().map_err(ClientError::Transport)?;
            send(&mut conn)
                .map_err(|e| ClientError::Transport(format!("send to {}: {e}", self.addr)))?;
            *guard = Some(conn);
        }
        Ok(Pending {
            guard,
            addr: &self.addr,
            answered: false,
        })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Fails on connection/I/O errors, a malformed response, or an
    /// `"ok": false` response (the server's error message is returned).
    pub fn request(&self, request: &Value) -> Result<Value, String> {
        self.try_request(request).map_err(ClientError::into_message)
    }

    fn cmd(&self, cmd: &str, mut fields: Vec<(String, Value)>) -> Result<Value, String> {
        let mut entries = vec![
            ("proto".to_string(), Value::String(PROTOCOL.to_string())),
            ("cmd".to_string(), Value::String(cmd.to_string())),
        ];
        entries.append(&mut fields);
        self.request(&Value::Object(entries))
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Fails while the server is unreachable.
    pub fn ping(&self) -> Result<Value, String> {
        self.cmd("ping", Vec::new())
    }

    /// Polls [`Client::ping`] until the server answers or `timeout`
    /// elapses — for scripts racing a freshly booted server.
    ///
    /// # Errors
    ///
    /// Fails with the last connection error on timeout.
    pub fn wait_until_ready(&self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.ping() {
                Ok(_) => return Ok(()),
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("server not ready within {timeout:?}: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates server-side validation failures (unknown task/backend,
    /// duplicate weights, full queue).
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, String> {
        let response = self.cmd("submit", vec![("job".to_string(), spec.to_value())])?;
        match response.get("id") {
            Some(Value::Number(n)) => n.as_u64().ok_or_else(|| "non-integer id".to_string()),
            _ => Err("submit response lacks `id`".to_string()),
        }
    }

    /// One job's status snapshot with up to `tail` recent events.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id.
    pub fn status(&self, id: u64, tail: usize) -> Result<Value, String> {
        let response = self.cmd(
            "status",
            vec![
                ("id".to_string(), Value::Number(serde::Number::UInt(id))),
                (
                    "tail".to_string(),
                    Value::Number(serde::Number::UInt(tail as u64)),
                ),
            ],
        )?;
        response
            .get("job")
            .cloned()
            .ok_or_else(|| "status response lacks `job`".to_string())
    }

    /// Polls `status` until the job's phase is one of `phases` or
    /// `timeout` elapses; returns the final snapshot.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id or on timeout (reporting the last phase).
    pub fn wait_for_phase(
        &self,
        id: u64,
        phases: &[&str],
        timeout: Duration,
    ) -> Result<Value, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let snapshot = self.status(id, 0)?;
            let phase = match snapshot.get("phase") {
                Some(Value::String(p)) => p.clone(),
                _ => return Err("status snapshot lacks `phase`".to_string()),
            };
            if phases.contains(&phase.as_str()) {
                return Ok(snapshot);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "job {id} still `{phase}` after {timeout:?} (wanted one of {phases:?})"
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Every job's brief snapshot.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn list(&self) -> Result<Value, String> {
        let response = self.cmd("list", Vec::new())?;
        response
            .get("jobs")
            .cloned()
            .ok_or_else(|| "list response lacks `jobs`".to_string())
    }

    /// Cancels a job (queued: removed; running: stops within one tick).
    ///
    /// # Errors
    ///
    /// Fails on an unknown or already-finished job.
    pub fn cancel(&self, id: u64) -> Result<Value, String> {
        self.cmd(
            "cancel",
            vec![("id".to_string(), Value::Number(serde::Number::UInt(id)))],
        )
    }

    /// The stored merged front for `(task, backend, n)`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn frontier(&self, task: &str, backend: &str, n: u16) -> Result<Value, String> {
        self.cmd(
            "frontier",
            vec![
                ("task".to_string(), Value::String(task.to_string())),
                ("backend".to_string(), Value::String(backend.to_string())),
                (
                    "n".to_string(),
                    Value::Number(serde::Number::UInt(n as u64)),
                ),
            ],
        )
    }

    /// One read-tier query (see [`crate::query`]): `extra` carries the
    /// mode parameters, e.g. `[("delay", 2.5)]` for `best_at_delay`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a query the server rejects (unknown mode,
    /// weight outside `[0, 1]`, aliasing names).
    pub fn query(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        mode: &str,
        extra: Vec<(String, Value)>,
    ) -> Result<Value, String> {
        let mut fields = vec![
            ("task".to_string(), Value::String(task.to_string())),
            ("backend".to_string(), Value::String(backend.to_string())),
            (
                "n".to_string(),
                Value::Number(serde::Number::UInt(n as u64)),
            ),
            ("mode".to_string(), Value::String(mode.to_string())),
        ];
        fields.extend(extra);
        self.cmd("query", fields)
    }

    /// The minimum-area stored design with delay ≤ `delay` (the fastest
    /// design, flagged `met: false`, when nothing is that fast).
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn query_best_at_delay(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        delay: f64,
    ) -> Result<Value, String> {
        self.query(
            task,
            backend,
            n,
            "best_at_delay",
            vec![(
                "delay".to_string(),
                Value::Number(serde::Number::Float(delay)),
            )],
        )
    }

    /// The scalarized-argmin stored design at area-weight `w ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn query_best_at_weight(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        w: f64,
    ) -> Result<Value, String> {
        self.query(
            task,
            backend,
            n,
            "best_at_weight",
            vec![("w".to_string(), Value::Number(serde::Number::Float(w)))],
        )
    }

    /// Every stored design with delay in `[delay_lo, delay_hi]`.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn query_range(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        delay_lo: f64,
        delay_hi: f64,
    ) -> Result<Value, String> {
        self.query(
            task,
            backend,
            n,
            "range",
            vec![
                (
                    "delay_lo".to_string(),
                    Value::Number(serde::Number::Float(delay_lo)),
                ),
                (
                    "delay_hi".to_string(),
                    Value::Number(serde::Number::Float(delay_hi)),
                ),
            ],
        )
    }

    /// A batch of query payloads answered against one snapshot (every
    /// result reflects the same `epoch`). Each payload is the object
    /// [`Client::query`] would send, minus `proto`/`cmd`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an over-cap batch; per-query failures come
    /// back inline in `results`.
    pub fn query_batch(&self, queries: Vec<Value>) -> Result<Value, String> {
        self.cmd(
            "query_batch",
            vec![("queries".to_string(), Value::Array(queries))],
        )
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Fails when the request cannot be delivered.
    pub fn shutdown(&self) -> Result<(), String> {
        self.cmd("shutdown", Vec::new()).map(|_| ())
    }
}

/// A request that has been put on the wire but not yet answered (see
/// [`Client::send_request`]). Holds the client's connection lock so no
/// other request can interleave; dropping it without [`Pending::recv`]
/// leaves the unread response in the socket, so the connection is
/// discarded instead of returned to the cache.
pub(crate) struct Pending<'a> {
    guard: std::sync::MutexGuard<'a, Option<Conn>>,
    addr: &'a str,
    answered: bool,
}

impl Pending<'_> {
    /// Reads the one outstanding response line. A failure discards the
    /// cached connection (the next request reconnects) and is **not**
    /// resent here — the request already reached the server, so the
    /// caller decides whether a retry elsewhere is safe.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on I/O/timeout errors or a malformed
    /// response; [`ClientError::Rejected`] on `"ok": false`.
    pub(crate) fn recv(mut self) -> Result<Value, ClientError> {
        let conn = self.guard.as_mut().expect("pending holds a connection");
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(_) if !line.trim().is_empty() => match serde_json::from_str(line.trim()) {
                Ok(response) => {
                    self.answered = true;
                    Client::classify(self.addr, response)
                }
                Err(e) => {
                    *self.guard = None;
                    Err(ClientError::Transport(format!(
                        "malformed response from {}: {e}",
                        self.addr
                    )))
                }
            },
            Ok(_) => {
                *self.guard = None;
                Err(ClientError::Transport(format!(
                    "server {} closed without responding",
                    self.addr
                )))
            }
            Err(e) => {
                *self.guard = None;
                Err(ClientError::Transport(format!(
                    "receive from {}: {e}",
                    self.addr
                )))
            }
        }
    }
}

impl Drop for Pending<'_> {
    fn drop(&mut self) {
        // An unconsumed response would desequence the next request on
        // this connection; never return an unanswered one to the cache.
        if !self.answered {
            *self.guard = None;
        }
    }
}
