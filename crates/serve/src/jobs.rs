//! Job management for the resident optimization service: a bounded FIFO
//! queue of sweep jobs, worker threads running them as [`Experiment`]
//! sessions over one shared evaluation stack, per-job cancel tokens and
//! event tails, and a persisted queue (`jobs.json`) so a killed server
//! resumes where it stopped.

use crate::cluster::{ReplPeerStatus, Topology};
use crate::store::{key_of, FrontierStore};
use prefix_graph::PrefixGraph;
use prefixrl_core::agent::AgentConfig;
use prefixrl_core::cache::{CacheConfig, CachedEvaluator, EvalCache};
use prefixrl_core::checkpoint::write_atomic;
use prefixrl_core::env::EnvConfig;
use prefixrl_core::evalsvc::EvalService;
use prefixrl_core::evaluator::{Evaluator, ObjectivePoint};
use prefixrl_core::experiment::{
    CallbackObserver, CancelToken, Event, Experiment, ExperimentResult, Weights,
};
use prefixrl_core::task::{self, CircuitTask, ObjectiveBackend, SynthesisBackend};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Configuration of a serve session (server socket + job manager).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Concurrent job worker threads.
    pub workers: usize,
    /// Maximum queued-or-running jobs before `submit` is refused.
    pub queue_capacity: usize,
    /// Per-job [`EvalService`] thread budget (also caps how many agents of
    /// one job run concurrently).
    pub eval_threads: usize,
    /// Shard count of the server-wide shared [`EvalCache`] store.
    pub cache_shards: usize,
    /// Events retained per job for `status` tails.
    pub event_tail: usize,
    /// Where `frontier.json` / `jobs.json` persist; `None` = ephemeral.
    pub state_dir: Option<PathBuf>,
    /// WAL records accumulated before the frontier store compacts
    /// (see [`crate::store::FrontierStore::open_with`]).
    pub compact_every: u64,
    /// Cluster membership: `None` runs the classic single-node daemon;
    /// `Some` makes this server shard `topology.shard_id` of an N-node
    /// cluster — it owns the keys hashing to its id, publishes their
    /// merges to replication subscribers, and follows its ring sources
    /// (see [`crate::cluster`] and DESIGN.md §16).
    pub cluster: Option<Topology>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_capacity: 256,
            eval_threads: 2,
            cache_shards: 16,
            event_tail: 64,
            state_dir: None,
            compact_every: crate::store::COMPACT_EVERY_DEFAULT,
            cluster: None,
        }
    }
}

/// What one submitted job asks for: a weight sweep over one
/// `(task, backend, width)` key.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    /// Circuit task id (see [`task::TASK_NAMES`]).
    pub task: String,
    /// Objective backend id (see [`task::BACKEND_NAMES`]).
    pub backend: String,
    /// Input width.
    pub n: u16,
    /// Scalarization weights, one agent each (validated like
    /// [`Weights::try_list`]: non-empty, in `[0, 1]`, no duplicates).
    pub weights: Vec<f64>,
    /// Environment steps per agent.
    pub steps: u64,
    /// Master seed.
    pub seed: u64,
}

/// Lifecycle of a job. `Queued → Running → Done` is the happy path;
/// `Cancelled` and `Failed` are terminal, and a graceful shutdown moves
/// `Running` jobs back to `Queued` for the next server instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the FIFO queue.
    Queued,
    /// A worker is training its agents right now.
    Running,
    /// Finished; its pool is merged into the frontier store.
    Done,
    /// Stopped by a user cancel request.
    Cancelled,
    /// The run errored (message preserved).
    Failed(String),
}

impl JobPhase {
    /// The wire/persistence name of this phase.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Failed(_) => "failed",
        }
    }

    fn from_name(name: &str, error: Option<&str>) -> Option<JobPhase> {
        Some(match name {
            "queued" => JobPhase::Queued,
            "running" => JobPhase::Running,
            "done" => JobPhase::Done,
            "cancelled" => JobPhase::Cancelled,
            "failed" => JobPhase::Failed(error.unwrap_or("unknown").to_string()),
            _ => return None,
        })
    }
}

/// The per-job hot-path counters and event tail, behind the job's *own*
/// lock: every training step of every agent reports here, so routing this
/// through the manager-wide state mutex would convoy all jobs' training
/// threads (and every status RPC) on one lock.
struct JobTelemetry {
    events_seen: u64,
    designs_found: u64,
    tail: VecDeque<serde_json::Value>,
    first_event_at: Option<Instant>,
}

struct Job {
    spec: JobSpec,
    phase: JobPhase,
    /// Every phase the job passed through, in order — so a poller that
    /// misses a short-lived state can still assert the full transition
    /// sequence.
    history: Vec<&'static str>,
    token: CancelToken,
    user_cancelled: bool,
    telemetry: Arc<Mutex<JobTelemetry>>,
    submitted_at: Instant,
    finished_at: Option<Instant>,
    /// Points the finished job added to its stored front.
    merged_new_points: Option<usize>,
}

impl Job {
    fn new(spec: JobSpec) -> Job {
        Job {
            spec,
            phase: JobPhase::Queued,
            history: vec!["queued"],
            token: CancelToken::new(),
            user_cancelled: false,
            telemetry: Arc::new(Mutex::new(JobTelemetry {
                events_seen: 0,
                designs_found: 0,
                tail: VecDeque::new(),
                first_event_at: None,
            })),
            submitted_at: Instant::now(),
            finished_at: None,
            merged_new_points: None,
        }
    }

    fn set_phase(&mut self, phase: JobPhase) {
        self.history.push(phase.name());
        self.phase = phase;
    }
}

struct ManagerState {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
}

/// One `(task, backend)` binding over the server-wide shared store: the
/// task/backend pair the job trains on, plus its cache/service handles.
#[derive(Clone)]
struct Binding {
    task: Arc<dyn CircuitTask>,
    backend: Arc<dyn ObjectiveBackend>,
    synthesis_env: bool,
    cache: Arc<CachedEvaluator<Box<dyn Evaluator>>>,
    service: Arc<EvalService>,
}

/// The server-wide evaluation stack: one shared [`EvalCache`] store every
/// job evaluates through (entries isolated by the task/backend
/// discriminant), with one lazily-created binding per `(task, backend)`
/// key so concurrent jobs on the same key share the identical
/// `CachedEvaluator`/`EvalService` objects. Synthesis bindings pick their
/// curve point at the *first* job's median weight and keep it — the same
/// shared-evaluator caveat as DESIGN.md §10, required for cache soundness.
struct SharedEvalStack {
    store: Arc<EvalCache>,
    eval_threads: usize,
    bindings: Mutex<HashMap<(String, String), Binding>>,
}

impl SharedEvalStack {
    fn new(cache_shards: usize, eval_threads: usize) -> SharedEvalStack {
        SharedEvalStack {
            store: Arc::new(EvalCache::new(CacheConfig::with_shards(
                cache_shards.max(1),
            ))),
            eval_threads: eval_threads.max(1),
            bindings: Mutex::new(HashMap::new()),
        }
    }

    fn binding_for(
        &self,
        task_name: &str,
        backend_name: &str,
        median_w: f64,
    ) -> Result<Binding, String> {
        let mut bindings = lock(&self.bindings);
        if let Some(b) = bindings.get(&(task_name.to_string(), backend_name.to_string())) {
            return Ok(b.clone());
        }
        let task = task::by_name(task_name).ok_or_else(|| {
            format!(
                "unknown task `{task_name}` (expected one of: {})",
                task::TASK_NAMES.join("|")
            )
        })?;
        let (backend, synthesis_env): (Arc<dyn ObjectiveBackend>, bool) = match backend_name {
            "analytical" => (Arc::new(task::AnalyticalBackend), false),
            "synthesis" => (
                Arc::new(SynthesisBackend::new(
                    netlist::Library::nangate45(),
                    synth::sweep::SweepConfig::fast(),
                    median_w,
                )),
                true,
            ),
            "synthesis-power" => (
                Arc::new(
                    SynthesisBackend::new(
                        netlist::Library::nangate45(),
                        synth::sweep::SweepConfig::fast(),
                        median_w,
                    )
                    .with_power_annotation(),
                ),
                true,
            ),
            other => {
                return Err(format!(
                    "unknown backend `{other}` (expected one of: {})",
                    task::BACKEND_NAMES.join("|")
                ))
            }
        };
        let inner: Box<dyn Evaluator> = Box::new(task::TaskEvaluator::new(
            Arc::clone(&task),
            Arc::clone(&backend),
        ));
        let cache = Arc::new(CachedEvaluator::with_store(inner, Arc::clone(&self.store)));
        let service = Arc::new(EvalService::new(
            Arc::clone(&cache) as Arc<dyn Evaluator>,
            self.eval_threads,
        ));
        let binding = Binding {
            task,
            backend,
            synthesis_env,
            cache,
            service,
        };
        bindings.insert(
            (task_name.to_string(), backend_name.to_string()),
            binding.clone(),
        );
        Ok(binding)
    }
}

/// The schema identifier of the persisted job queue.
pub const JOBS_SCHEMA: &str = "prefixrl.serve.jobs.v1";

/// Submit/status/cancel/list over a bounded job queue, executed by worker
/// threads over one shared evaluation stack and one frontier store.
pub struct JobManager {
    cfg: ServeConfig,
    stack: SharedEvalStack,
    store: Arc<FrontierStore>,
    state: Mutex<ManagerState>,
    work: Condvar,
    stop: AtomicBool,
    /// Per-source follower subscription state, reported by the `cluster`
    /// verb. Keyed by source shard id; empty outside cluster mode.
    repl_status: Mutex<BTreeMap<usize, ReplPeerStatus>>,
}

impl JobManager {
    /// Builds the manager: opens (or creates) the frontier store and
    /// reloads a persisted job queue, re-queuing jobs that were running
    /// when the previous server died.
    ///
    /// # Errors
    ///
    /// Fails on unreadable/corrupt state files or an invalid cluster
    /// topology.
    pub fn new(cfg: ServeConfig) -> Result<Arc<JobManager>, String> {
        if let Some(topology) = &cfg.cluster {
            topology.validate()?;
        }
        let store = match &cfg.state_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
                Arc::new(FrontierStore::open_with(
                    &dir.join("frontier.json"),
                    cfg.compact_every,
                )?)
            }
            None => Arc::new(FrontierStore::in_memory()),
        };
        let mut repl_status = BTreeMap::new();
        if let Some(topology) = &cfg.cluster {
            // Enabled before any worker or follower thread exists, so no
            // merge can race the hub's creation.
            store.enable_replication(topology.clone());
            for source in topology.replica_sources() {
                repl_status.insert(source, ReplPeerStatus::default());
            }
        }
        let mut state = ManagerState {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            next_id: 1,
        };
        if let Some(dir) = &cfg.state_dir {
            load_jobs(&dir.join("jobs.json"), &mut state)?;
        }
        let manager = Arc::new(JobManager {
            stack: SharedEvalStack::new(cfg.cache_shards, cfg.eval_threads),
            store,
            state: Mutex::new(state),
            work: Condvar::new(),
            stop: AtomicBool::new(false),
            repl_status: Mutex::new(repl_status),
            cfg,
        });
        manager.persist_jobs();
        Ok(manager)
    }

    /// The frontier store this manager merges into.
    pub fn store(&self) -> &Arc<FrontierStore> {
        &self.store
    }

    /// The configuration this manager was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Updates one replication source's reported status.
    pub(crate) fn set_repl_status(&self, source: usize, f: impl FnOnce(&mut ReplPeerStatus)) {
        let mut status = lock(&self.repl_status);
        f(status.entry(source).or_default());
    }

    /// Follower subscription states as a JSON array, for the `cluster`
    /// verb (empty outside cluster mode or with zero replicas).
    pub fn repl_status_json(&self) -> serde_json::Value {
        let status = lock(&self.repl_status);
        serde_json::Value::Array(
            status
                .iter()
                .map(|(&source, s)| s.to_json(source))
                .collect(),
        )
    }

    /// Aggregate statistics of the server-wide shared evaluation store.
    pub fn cache_json(&self) -> serde_json::Value {
        let store = &self.stack.store;
        serde_json::json!({
            "shards": store.shards(),
            "hits": store.hits(),
            "misses": store.misses(),
            "evictions": store.evictions(),
            "hit_rate": store.hit_rate(),
            "unique_states": store.unique_states(),
        })
    }

    /// Validates and enqueues a job, returning its id.
    ///
    /// # Errors
    ///
    /// Fails on an unknown task/backend, invalid weights (empty, out of
    /// range, or duplicated), a zero step budget, an out-of-range width,
    /// a full queue, or — in cluster mode — a key this shard does not
    /// own (writes never fail over; the error names the owning shard).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        if !(2..=64).contains(&spec.n) {
            return Err(format!("width {} outside [2, 64]", spec.n));
        }
        if let Some(topology) = &self.cfg.cluster {
            let key = key_of(&spec.task, &spec.backend, spec.n);
            if !topology.owns(&key) {
                let owner = topology.primary_of(&key);
                return Err(format!(
                    "wrong shard: key `{key}` is owned by shard {owner} ({}), \
                     not this shard {} — submit there (writes never fail over)",
                    topology.peers[owner], topology.shard_id
                ));
            }
        }
        if spec.steps == 0 {
            return Err("need a nonzero step budget".to_string());
        }
        Weights::try_list(spec.weights.clone())?;
        // Resolve the binding up front so an unknown task/backend fails
        // the submit, not the job.
        let median_w = spec.weights[spec.weights.len() / 2];
        self.stack
            .binding_for(&spec.task, &spec.backend, median_w)?;
        let mut state = lock(&self.state);
        let active = state
            .jobs
            .values()
            .filter(|j| matches!(j.phase, JobPhase::Queued | JobPhase::Running))
            .count();
        if active >= self.cfg.queue_capacity {
            return Err(format!(
                "queue full ({active} active jobs ≥ capacity {})",
                self.cfg.queue_capacity
            ));
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(id, Job::new(spec));
        state.queue.push_back(id);
        drop(state);
        self.persist_jobs();
        self.work.notify_all();
        Ok(id)
    }

    /// Cancels a job: a queued job leaves the queue immediately, a running
    /// job's [`CancelToken`] fires and the worker finalizes it as
    /// `Cancelled` within one event tick.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id or an already-finished job.
    pub fn cancel(&self, id: u64) -> Result<&'static str, String> {
        let mut state = lock(&self.state);
        let job = state
            .jobs
            .get_mut(&id)
            .ok_or_else(|| format!("no such job {id}"))?;
        match job.phase {
            JobPhase::Queued => {
                job.user_cancelled = true;
                job.set_phase(JobPhase::Cancelled);
                job.finished_at = Some(Instant::now());
                state.queue.retain(|&q| q != id);
                drop(state);
                self.persist_jobs();
                Ok("cancelled")
            }
            JobPhase::Running => {
                job.user_cancelled = true;
                job.token.cancel();
                Ok("cancelling")
            }
            ref done => Err(format!("job {id} already {}", done.name())),
        }
    }

    /// One job's status snapshot with up to `tail` recent events.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id.
    pub fn status(&self, id: u64, tail: usize) -> Result<serde_json::Value, String> {
        let state = lock(&self.state);
        let job = state
            .jobs
            .get(&id)
            .ok_or_else(|| format!("no such job {id}"))?;
        Ok(job_json(id, job, tail))
    }

    /// Brief snapshots of every job, in id order.
    pub fn list(&self) -> serde_json::Value {
        let state = lock(&self.state);
        serde_json::Value::Array(
            state
                .jobs
                .iter()
                .map(|(&id, job)| job_json(id, job, 0))
                .collect(),
        )
    }

    /// Spawns the configured worker threads (call once).
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let manager = Arc::clone(self);
                std::thread::spawn(move || manager.worker_loop())
            })
            .collect()
    }

    /// Graceful shutdown: stops the workers, cancels running jobs via
    /// their tokens, and re-queues them in the persisted state so the next
    /// server instance resumes them. (A `kill -9` skips all of this; the
    /// queue persisted at the last transition is what the restart loads.)
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let state = lock(&self.state);
            for job in state.jobs.values() {
                if job.phase == JobPhase::Running && !job.user_cancelled {
                    job.token.cancel();
                }
            }
        }
        self.work.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let (id, spec, token, telemetry) = {
                let mut state = lock(&self.state);
                loop {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(id) = state.queue.pop_front() {
                        let job = state.jobs.get_mut(&id).expect("queued job exists");
                        job.set_phase(JobPhase::Running);
                        break (
                            id,
                            job.spec.clone(),
                            job.token.clone(),
                            Arc::clone(&job.telemetry),
                        );
                    }
                    state = self
                        .work
                        .wait_timeout(state, Duration::from_millis(200))
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            };
            self.persist_jobs();
            let outcome = self.execute(spec.clone(), token, telemetry);
            let mut state = lock(&self.state);
            let job = state.jobs.get_mut(&id).expect("running job exists");
            match outcome {
                Ok((result, merged)) => {
                    job.merged_new_points = merged;
                    if result.completed {
                        job.set_phase(JobPhase::Done);
                    } else if job.user_cancelled {
                        job.set_phase(JobPhase::Cancelled);
                    } else {
                        // Stopped by the shutdown cancel: hand the job
                        // back to the queue for the next server instance.
                        job.set_phase(JobPhase::Queued);
                    }
                }
                Err(e) => job.set_phase(JobPhase::Failed(e)),
            }
            if job.phase != JobPhase::Queued {
                job.finished_at = Some(Instant::now());
            }
            drop(state);
            self.persist_jobs();
        }
    }

    fn execute(
        &self,
        spec: JobSpec,
        token: CancelToken,
        telemetry: Arc<Mutex<JobTelemetry>>,
    ) -> Result<(ExperimentResult, Option<usize>), String> {
        let weights = Weights::try_list(spec.weights.clone())?;
        let median_w = spec.weights[spec.weights.len() / 2];
        let binding = self
            .stack
            .binding_for(&spec.task, &spec.backend, median_w)?;
        let mut base = AgentConfig::small(spec.n, 0.5, spec.steps);
        if binding.synthesis_env {
            base.env = EnvConfig::synthesis(spec.n);
        }
        let experiment = Experiment::builder()
            .n(spec.n)
            .weights(weights)
            .steps(spec.steps)
            .seed(spec.seed)
            .base_config(base)
            .task(Arc::clone(&binding.task))
            .backend(Arc::clone(&binding.backend))
            .eval_stack(Arc::clone(&binding.cache), Arc::clone(&binding.service))
            .eval_threads(self.cfg.eval_threads.min(spec.weights.len()).max(1))
            .cancel_token(token)
            .build();
        // Events touch only this job's own telemetry lock — never the
        // manager-wide state mutex, which status/submit RPCs contend for.
        let tail_cap = self.cfg.event_tail;
        let mut observer = CallbackObserver::new(move |run, event| {
            let mut t = lock(&telemetry);
            t.events_seen += 1;
            if t.first_event_at.is_none() {
                t.first_event_at = Some(Instant::now());
            }
            if matches!(event, Event::DesignFound { .. }) {
                t.designs_found += 1;
            }
            if tail_cap > 0 {
                if t.tail.len() >= tail_cap {
                    t.tail.pop_front();
                }
                t.tail.push_back(event_json(run, event));
            }
        });
        let result = experiment.run(&mut observer)?;
        let merged = if result.completed {
            let pool: Vec<(PrefixGraph, ObjectivePoint)> = result
                .records
                .iter()
                .flat_map(|r| r.designs.iter().cloned())
                .collect();
            Some(self.store.merge(&spec.task, &spec.backend, spec.n, &pool)?)
        } else {
            None
        };
        Ok((result, merged))
    }

    fn persist_jobs(&self) {
        let Some(dir) = &self.cfg.state_dir else {
            return;
        };
        let state = lock(&self.state);
        let jobs: Vec<serde_json::Value> = state
            .jobs
            .iter()
            .map(|(&id, job)| {
                let error = match &job.phase {
                    JobPhase::Failed(e) => serde_json::Value::String(e.clone()),
                    _ => serde_json::Value::Null,
                };
                serde_json::json!({
                    "id": id,
                    "spec": Serialize::to_value(&job.spec),
                    "phase": job.phase.name(),
                    "error": error,
                })
            })
            .collect();
        let value = serde_json::json!({
            "schema": JOBS_SCHEMA,
            "next_id": state.next_id,
            "jobs": serde_json::Value::Array(jobs),
        });
        // Written while still holding the state lock: two concurrent
        // persists whose renames landed in reverse order could otherwise
        // leave a stale snapshot on disk (e.g. resurrecting a cancelled
        // job after a crash-restart).
        if let Err(e) = write_atomic(
            &dir.join("jobs.json"),
            &serde_json::to_string_pretty(&value).expect("infallible"),
        ) {
            // Queue persistence is best-effort durability; serving goes on.
            eprintln!("warning: job-queue persist failed: {e}");
        }
        drop(state);
    }
}

fn load_jobs(path: &std::path::Path, state: &mut ManagerState) -> Result<(), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    match value.get("schema").and_then(value_str) {
        Some(JOBS_SCHEMA) => {}
        other => {
            return Err(format!(
                "{}: expected schema `{JOBS_SCHEMA}`, found {other:?}",
                path.display()
            ))
        }
    }
    state.next_id = value
        .get("next_id")
        .and_then(|v| match v {
            serde_json::Value::Number(n) => n.as_u64(),
            _ => None,
        })
        .unwrap_or(1)
        .max(1);
    for entry in value
        .get("jobs")
        .and_then(serde_json::Value::as_array)
        .unwrap_or(&[])
    {
        let id = entry
            .get("id")
            .and_then(|v| match v {
                serde_json::Value::Number(n) => n.as_u64(),
                _ => None,
            })
            .ok_or_else(|| format!("{}: job entry without id", path.display()))?;
        let spec = entry
            .get("spec")
            .ok_or_else(|| format!("{}: job {id} without spec", path.display()))
            .and_then(|v| JobSpec::from_value(v).map_err(|e| format!("job {id} spec: {e}")))?;
        let phase_name = entry
            .get("phase")
            .and_then(value_str)
            .ok_or_else(|| format!("{}: job {id} without phase", path.display()))?;
        let error = entry.get("error").and_then(value_str);
        let phase = JobPhase::from_name(phase_name, error)
            .ok_or_else(|| format!("{}: job {id}: unknown phase `{phase_name}`", path.display()))?;
        let mut job = Job::new(spec);
        match phase {
            // A job the dead server never finished goes back to the
            // queue — including ones that were mid-run when it died.
            JobPhase::Queued | JobPhase::Running => {
                job.history.push("requeued");
                state.queue.push_back(id);
            }
            terminal => {
                job.set_phase(terminal);
            }
        }
        state.jobs.insert(id, job);
        state.next_id = state.next_id.max(id + 1);
    }
    Ok(())
}

fn job_json(id: u64, job: &Job, tail: usize) -> serde_json::Value {
    let error = match &job.phase {
        JobPhase::Failed(e) => serde_json::Value::String(e.clone()),
        _ => serde_json::Value::Null,
    };
    let elapsed = job
        .finished_at
        .map(|t| (t - job.submitted_at).as_secs_f64());
    let telemetry = lock(&job.telemetry);
    let latency = telemetry
        .first_event_at
        .map(|t| (t - job.submitted_at).as_secs_f64());
    let tail_events: Vec<serde_json::Value> = telemetry
        .tail
        .iter()
        .rev()
        .take(tail)
        .rev()
        .cloned()
        .collect();
    serde_json::json!({
        "id": id,
        "task": job.spec.task.clone(),
        "backend": job.spec.backend.clone(),
        "n": job.spec.n,
        "weights": job.spec.weights.clone(),
        "steps": job.spec.steps,
        "seed": job.spec.seed,
        "phase": job.phase.name(),
        "history": job.history.clone(),
        "error": error,
        "events_seen": telemetry.events_seen,
        "designs_found": telemetry.designs_found,
        "submit_to_first_event_sec": latency,
        "elapsed_sec": elapsed,
        "merged_new_points": job.merged_new_points,
        "frontier_key": key_of(&job.spec.task, &job.spec.backend, job.spec.n),
        "tail": serde_json::Value::Array(tail_events),
    })
}

fn event_json(run: usize, event: &Event) -> serde_json::Value {
    match event {
        Event::Step {
            step,
            epsilon,
            reward,
        } => serde_json::json!({
            "run": run, "type": "step", "step": *step,
            "epsilon": *epsilon, "r_area": reward[0], "r_delay": reward[1],
        }),
        Event::GradStep { grad_step, loss } => serde_json::json!({
            "run": run, "type": "grad_step", "grad_step": *grad_step, "loss": *loss,
        }),
        Event::EpisodeEnd {
            episode,
            scalarized_return,
        } => serde_json::json!({
            "run": run, "type": "episode_end", "episode": *episode,
            "return": *scalarized_return,
        }),
        Event::DesignFound {
            step,
            point,
            size,
            depth,
        } => serde_json::json!({
            "run": run, "type": "design_found", "step": *step,
            "area": point.area, "delay": point.delay, "size": *size, "depth": *depth,
        }),
        Event::CheckpointSaved { step } => serde_json::json!({
            "run": run, "type": "checkpoint_saved", "step": *step,
        }),
    }
}

fn value_str(v: &serde_json::Value) -> Option<&str> {
    match v {
        serde_json::Value::String(s) => Some(s),
        _ => None,
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
