//! The frontier query tier: lock-free snapshot reads over the store
//! (DESIGN.md §15).
//!
//! The product a million users actually hit is not training jobs — it is
//! *querying* the accumulated Pareto fronts ("best 64b adder at delay
//! ≤ X", "best trade at w = 0.7"). Routing those reads through
//! [`crate::FrontierStore`]'s write mutex would stall every reader behind
//! a concurrent merge's WAL fsync, so this module keeps an immutable
//! [`FrontierSnapshot`] to the side:
//!
//! - every merge publishes a fresh snapshot into a [`SnapshotCell`] via an
//!   `Arc` swap stamped with a monotone **epoch**; the swap is a pointer
//!   store, so a reader never waits on serialization or disk;
//! - readers call [`SnapshotCell::load`] (an `Arc` clone — no store
//!   mutex, no allocation) and answer any number of queries against one
//!   internally consistent epoch;
//! - per-key [`FrontView`]s are pre-sorted by delay with precomputed
//!   size/depth and normalized scalarization coordinates, so
//!   [`FrontView::best_at_delay`] is a clone-free binary search and
//!   [`FrontView::best_at_weight`] a scan over two precomputed arrays.
//!
//! Query semantics generalize `baselines::choose_at_target_with` (the
//! commercial-tool rule extracted to
//! [`prefixrl_core::pareto::better_at_target`]): `best_at_delay(≤X)`
//! returns the minimum-area point meeting the target, falling back to the
//! fastest point (`met: false`) when nothing meets it — exactly how a
//! commercial tool degrades. `best_at_weight(w)` is the scalarized argmin
//! over the front (objectives normalized to `[0, 1]` over the front's own
//! span, ties broken toward lower delay), and `range(lo..=hi)` slices the
//! delay-sorted front inclusively.
//!
//! The wire verbs `query` / `query_batch` (see [`crate::protocol`]) are
//! answered by [`answer_query`] — a pure function over one snapshot, so
//! the server's read handlers never touch the write path, and a batch is
//! resolved against a single epoch.

use prefix_graph::PrefixGraph;
use prefixrl_core::pareto::ParetoFront;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Delay comparisons tolerate this absolute slack, matching
/// [`ParetoFront::area_at_delay`] — a query at a point's exact printed
/// delay must hit it.
pub const DELAY_EPS: f64 = 1e-12;

/// Most queries one `query_batch` request may carry (a loud refusal, not
/// a silent truncation).
pub const MAX_BATCH: usize = 4096;

/// One front member as the query tier serves it: the objective point plus
/// the graph statistics precomputed at publish time (a point lookup never
/// walks the graph).
#[derive(Clone, Copy, Debug)]
pub struct QueryPoint {
    /// Circuit area (µm² for synthesis backends, node count analytical).
    pub area: f64,
    /// Circuit delay (ns for synthesis backends, model units analytical).
    pub delay: f64,
    /// Prefix-graph node count.
    pub size: u64,
    /// Prefix-graph logic depth.
    pub depth: u64,
    /// Area normalized to `[0, 1]` over this front's span (0 = best).
    pub scal_area: f64,
    /// Delay normalized to `[0, 1]` over this front's span (0 = best).
    pub scal_delay: f64,
}

/// The outcome of a [`FrontView::best_at_delay`] lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayChoice {
    /// Index of the chosen point in the delay-sorted front.
    pub index: usize,
    /// Whether the chosen point meets the delay target. `false` means the
    /// target is tighter than the whole front and the fastest point was
    /// returned instead (the `choose_at_target` degradation rule).
    pub met: bool,
}

/// One key's immutable, read-optimized front: points pre-sorted by
/// strictly increasing delay (strictly decreasing area — a Pareto front
/// admits no ties on either axis), with graphs kept alongside for
/// `include_graph` responses.
#[derive(Debug)]
pub struct FrontView {
    key: String,
    points: Vec<QueryPoint>,
    graphs: Vec<PrefixGraph>,
}

impl FrontView {
    /// Builds the view of one stored front (publish-time cost: one clone
    /// of the front's points and graphs plus the normalization pass).
    pub fn build(key: &str, front: &ParetoFront<PrefixGraph>) -> FrontView {
        let mut points = Vec::with_capacity(front.len());
        let mut graphs = Vec::with_capacity(front.len());
        for (p, g) in front.iter() {
            points.push(QueryPoint {
                area: p.area,
                delay: p.delay,
                size: g.size() as u64,
                depth: u64::from(g.depth()),
                scal_area: 0.0,
                scal_delay: 0.0,
            });
            graphs.push(g.clone());
        }
        // Normalize both objectives over the front's own span so one
        // scalarization weight means the same thing on analytical node
        // counts and synthesis µm². Sorted by delay, a Pareto front has
        // its area maximum first and minimum last.
        if let (Some(first), Some(last)) = (points.first().copied(), points.last().copied()) {
            let (a_min, a_span) = (last.area, first.area - last.area);
            let (d_min, d_span) = (first.delay, last.delay - first.delay);
            for p in &mut points {
                p.scal_area = if a_span > 0.0 {
                    (p.area - a_min) / a_span
                } else {
                    0.0
                };
                p.scal_delay = if d_span > 0.0 {
                    (p.delay - d_min) / d_span
                } else {
                    0.0
                };
            }
        }
        FrontView {
            key: key.to_string(),
            points,
            graphs,
        }
    }

    /// The composite `task/backend/n` key this view serves.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty (a key can exist with an empty front —
    /// e.g. every offered design was non-finite — which is distinct from
    /// the key never having been merged).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in increasing-delay order.
    pub fn points(&self) -> &[QueryPoint] {
        &self.points
    }

    /// The stored graph of point `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn graph(&self, index: usize) -> &PrefixGraph {
        &self.graphs[index]
    }

    /// The best design at delay ≤ `max_delay`: the minimum-area point
    /// meeting the target (on a delay-sorted Pareto front that is the
    /// *last* point with `delay ≤ max_delay`, since area strictly
    /// decreases with delay). When no point meets the target the fastest
    /// point is returned with `met: false` — the same degradation as
    /// `baselines::choose_at_target_with`. `None` only on an empty front.
    pub fn best_at_delay(&self, max_delay: f64) -> Option<DelayChoice> {
        if self.points.is_empty() {
            return None;
        }
        let meeting = self
            .points
            .partition_point(|p| p.delay <= max_delay + DELAY_EPS);
        Some(match meeting {
            0 => DelayChoice {
                index: 0,
                met: false,
            },
            k => DelayChoice {
                index: k - 1,
                met: true,
            },
        })
    }

    /// The scalarized argmin at area-weight `w ∈ [0, 1]`: minimizes
    /// `w·scal_area + (1-w)·scal_delay` over the precomputed normalized
    /// coordinates. Ties break toward lower delay (the earlier index), so
    /// `w = 0` returns the fastest point and `w = 1` the smallest.
    /// `None` only on an empty front.
    pub fn best_at_weight(&self, w: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.points.iter().enumerate() {
            let value = w * p.scal_area + (1.0 - w) * p.scal_delay;
            if best.is_none_or(|(_, v)| value < v) {
                best = Some((i, value));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Every point with `delay_lo ≤ delay ≤ delay_hi` (inclusive both
    /// ends, with [`DELAY_EPS`] slack), as an index range into
    /// [`FrontView::points`]. An inverted or non-overlapping window is an
    /// empty range, not an error.
    pub fn range(&self, delay_lo: f64, delay_hi: f64) -> std::ops::Range<usize> {
        let start = self
            .points
            .partition_point(|p| p.delay < delay_lo - DELAY_EPS);
        let end = self
            .points
            .partition_point(|p| p.delay <= delay_hi + DELAY_EPS);
        start..end.max(start)
    }
}

/// An immutable view of every stored front at one epoch. Readers obtain
/// one via [`SnapshotCell::load`] (or `FrontierStore::snapshot`) and can
/// answer any number of queries against it without ever observing a
/// half-merged front.
#[derive(Debug)]
pub struct FrontierSnapshot {
    epoch: u64,
    fronts: BTreeMap<String, Arc<FrontView>>,
}

impl FrontierSnapshot {
    /// The empty epoch-0 snapshot of a fresh store.
    pub fn empty() -> FrontierSnapshot {
        FrontierSnapshot {
            epoch: 0,
            fronts: BTreeMap::new(),
        }
    }

    pub(crate) fn with_fronts(
        epoch: u64,
        fronts: BTreeMap<String, Arc<FrontView>>,
    ) -> FrontierSnapshot {
        FrontierSnapshot { epoch, fronts }
    }

    /// The publish counter this snapshot was stamped with. Epochs are
    /// process-local: they restart at 0 when a store is reopened.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Every key with a published front, in sorted order.
    pub fn keys(&self) -> Vec<String> {
        self.fronts.keys().cloned().collect()
    }

    /// The view under a composite key, or `None` if the key was never
    /// merged.
    pub fn front_by_key(&self, key: &str) -> Option<&Arc<FrontView>> {
        self.fronts.get(key)
    }

    /// The view of `(task, backend, n)`, or `None` if never merged.
    pub fn front(&self, task: &str, backend: &str, n: u16) -> Option<&Arc<FrontView>> {
        self.front_by_key(&crate::store::key_of(task, backend, n))
    }

    /// Derives the successor snapshot: same fronts, one key's view
    /// replaced (unchanged keys share their `Arc`s), epoch bumped.
    pub(crate) fn successor(&self, key: &str, view: Arc<FrontView>) -> FrontierSnapshot {
        let mut fronts = self.fronts.clone();
        fronts.insert(key.to_string(), view);
        FrontierSnapshot {
            epoch: self.epoch + 1,
            fronts,
        }
    }
}

/// The publication point between the store's write path and its readers:
/// holds the current [`FrontierSnapshot`] behind an `Arc` that writers
/// swap wholesale. [`SnapshotCell::load`] never takes the store mutex and
/// never blocks on a merge's WAL fsync — the only shared writes on the
/// read path are the lock word and an `Arc` refcount, and the publish
/// critical section is a pointer store. [`SnapshotCell::epoch`] is a
/// plain atomic load for staleness probes.
pub struct SnapshotCell {
    epoch: AtomicU64,
    current: RwLock<Arc<FrontierSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial`.
    pub fn new(initial: FrontierSnapshot) -> SnapshotCell {
        SnapshotCell {
            epoch: AtomicU64::new(initial.epoch),
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot (an `Arc` clone; the snapshot stays valid —
    /// and internally consistent — for as long as the caller holds it,
    /// regardless of concurrent merges).
    pub fn load(&self) -> Arc<FrontierSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The epoch of the currently published snapshot (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Swaps in a fully built snapshot. Callers (the store's merge path)
    /// serialize publishes under their own write lock; the cell itself
    /// only guarantees the swap is atomic and the epoch probe monotone.
    pub(crate) fn publish(&self, next: FrontierSnapshot) {
        let epoch = next.epoch;
        let next = Arc::new(next);
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = next;
        self.epoch.store(epoch, Ordering::Release);
    }
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new(FrontierSnapshot::empty())
    }
}

/// Serializes one point for the wire.
fn point_json(view: &FrontView, index: usize, include_graph: bool) -> Value {
    let p = &view.points()[index];
    let mut entry = serde_json::json!({
        "index": index,
        "area": p.area,
        "delay": p.delay,
        "size": p.size,
        "depth": p.depth,
    });
    if include_graph {
        if let Value::Object(entries) = &mut entry {
            entries.push(("graph".to_string(), Serialize::to_value(view.graph(index))));
        }
    }
    entry
}

/// Answers one `query` request payload against one snapshot — the pure
/// read handler behind the `query` and `query_batch` verbs. The response
/// always carries `key`, `known` (was the key ever merged — distinct
/// from an empty front) and `found` (did a point match); `best_at_delay`
/// adds `met`, `range` adds `points`/`count`.
///
/// # Errors
///
/// Fails on a missing/malformed field, an unknown `mode`, a non-finite
/// parameter, a weight outside `[0, 1]`, an out-of-range width, or a
/// task/backend name containing `/` (which would alias composite keys).
pub fn answer_query(snapshot: &FrontierSnapshot, request: &Value) -> Result<Value, String> {
    use crate::protocol::{opt_bool, req_f64, req_str, req_u64};

    let task = req_str(request, "task")?;
    let backend = req_str(request, "backend")?;
    crate::store::validate_names(task, backend)?;
    let n_raw = req_u64(request, "n")?;
    let n = u16::try_from(n_raw).map_err(|_| format!("field `n`: width {n_raw} exceeds u16"))?;
    let mode = req_str(request, "mode")?;
    let include_graph = opt_bool(request, "include_graph", false)?;

    let key = crate::store::key_of(task, backend, n);
    let view = snapshot.front_by_key(&key);
    let known = view.is_some();
    let mut fields = vec![
        ("key".to_string(), Value::String(key)),
        ("mode".to_string(), Value::String(mode.to_string())),
        ("known".to_string(), Value::Bool(known)),
    ];
    match mode {
        "best_at_delay" => {
            let delay = req_f64(request, "delay")?;
            if !delay.is_finite() {
                return Err("field `delay`: expected a finite number".to_string());
            }
            let choice = view.and_then(|v| v.best_at_delay(delay));
            fields.push(("found".to_string(), Value::Bool(choice.is_some())));
            match choice {
                Some(c) => {
                    fields.push(("met".to_string(), Value::Bool(c.met)));
                    fields.push((
                        "point".to_string(),
                        point_json(view.expect("found implies view"), c.index, include_graph),
                    ));
                }
                None => {
                    fields.push(("met".to_string(), Value::Bool(false)));
                    fields.push(("point".to_string(), Value::Null));
                }
            }
        }
        "best_at_weight" => {
            let w = req_f64(request, "w")?;
            if !(0.0..=1.0).contains(&w) {
                return Err(format!("field `w`: weight must lie in [0, 1], got {w}"));
            }
            let choice = view.and_then(|v| v.best_at_weight(w));
            fields.push(("found".to_string(), Value::Bool(choice.is_some())));
            fields.push((
                "point".to_string(),
                match choice {
                    Some(i) => point_json(view.expect("found implies view"), i, include_graph),
                    None => Value::Null,
                },
            ));
        }
        "range" => {
            let lo = req_f64(request, "delay_lo")?;
            let hi = req_f64(request, "delay_hi")?;
            if !lo.is_finite() || !hi.is_finite() {
                return Err("fields `delay_lo`/`delay_hi`: expected finite numbers".to_string());
            }
            let points: Vec<Value> = view
                .map(|v| {
                    v.range(lo, hi)
                        .map(|i| point_json(v, i, include_graph))
                        .collect()
                })
                .unwrap_or_default();
            fields.push(("found".to_string(), Value::Bool(!points.is_empty())));
            fields.push((
                "count".to_string(),
                Value::Number(serde::Number::UInt(points.len() as u64)),
            ));
            fields.push(("points".to_string(), Value::Array(points)));
        }
        other => {
            return Err(format!(
                "unknown query mode `{other}` (expected best_at_delay|best_at_weight|range)"
            ))
        }
    }
    Ok(Value::Object(fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefixrl_core::evaluator::ObjectivePoint;

    fn front_of(points: &[(f64, f64)]) -> ParetoFront<PrefixGraph> {
        let mut front = ParetoFront::new();
        for &(area, delay) in points {
            assert!(
                front.insert(ObjectivePoint { area, delay }, PrefixGraph::ripple(4)),
                "test points must be mutually non-dominated"
            );
        }
        front
    }

    #[test]
    fn view_is_sorted_and_normalized() {
        let view = FrontView::build("k", &front_of(&[(100.0, 1.0), (50.0, 2.0), (25.0, 4.0)]));
        let delays: Vec<f64> = view.points().iter().map(|p| p.delay).collect();
        assert_eq!(delays, vec![1.0, 2.0, 4.0]);
        assert_eq!(view.points()[0].scal_area, 1.0);
        assert_eq!(view.points()[0].scal_delay, 0.0);
        assert_eq!(view.points()[2].scal_area, 0.0);
        assert_eq!(view.points()[2].scal_delay, 1.0);
    }

    #[test]
    fn single_point_front_normalizes_to_zero() {
        let view = FrontView::build("k", &front_of(&[(10.0, 1.0)]));
        assert_eq!(view.points()[0].scal_area, 0.0);
        assert_eq!(view.points()[0].scal_delay, 0.0);
        assert_eq!(view.best_at_weight(0.3), Some(0));
    }

    #[test]
    fn snapshot_successor_bumps_epoch_and_shares_views() {
        let base = FrontierSnapshot::empty();
        let view = Arc::new(FrontView::build("a", &front_of(&[(1.0, 1.0)])));
        let next = base.successor("a", Arc::clone(&view));
        assert_eq!(next.epoch(), 1);
        let third = next.successor("b", Arc::new(FrontView::build("b", &front_of(&[]))));
        assert_eq!(third.epoch(), 2);
        assert!(Arc::ptr_eq(third.front_by_key("a").unwrap(), &view));
    }
}
