//! The TCP front of the serve daemon: an accept loop handing each
//! connection to a line-oriented handler thread that dispatches
//! `prefixrl.serve.v1` requests to the [`JobManager`] and
//! [`crate::FrontierStore`].

use crate::jobs::{JobManager, JobSpec, ServeConfig};
use crate::protocol::{
    check_proto, error_response, ok_response, opt_u64, req_str, req_u64, PROTOCOL,
};
use serde::Deserialize;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bound, not-yet-serving server instance.
pub struct Server {
    listener: TcpListener,
    jobs: Arc<JobManager>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket, loads/creates the persistent state, and
    /// spawns the job workers. Serving starts with [`Server::run`].
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the state files are
    /// unreadable/corrupt.
    pub fn bind(cfg: ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let jobs = JobManager::new(cfg)?;
        let workers = jobs.spawn_workers();
        Ok(Server {
            listener,
            jobs,
            stop: Arc::new(AtomicBool::new(false)),
            workers,
        })
    }

    /// The actually bound address (resolves `:0` ephemeral ports).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (never after `bind`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The job manager behind this server (for in-process embedding).
    pub fn jobs(&self) -> &Arc<JobManager> {
        &self.jobs
    }

    /// Serves until a `shutdown` request arrives, then gracefully stops
    /// the workers (running jobs are cancelled and re-queued in the
    /// persisted state for the next instance).
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for fatal listener
    /// errors.
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr();
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let jobs = Arc::clone(&self.jobs);
                    let stop = Arc::clone(&self.stop);
                    std::thread::spawn(move || handle_connection(stream, &jobs, &stop, addr));
                }
                // Per-connection accept failures are transient — e.g.
                // ECONNABORTED when a queued client (including the
                // shutdown wake connection) resets before accept — and
                // must never kill a resident server.
                Err(e) => eprintln!("warning: accept on {addr}: {e}"),
            }
            // Check the stop flag *after* handing the accepted connection
            // off: if an innocent client raced the shutdown's throwaway
            // wake connection into `accept`, it still gets served instead
            // of hanging until its read timeout.
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.jobs.shutdown();
        for worker in self.workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Binds and serves on a background thread — the in-process embedding
    /// used by tests, benches, and the quickstart example.
    ///
    /// # Errors
    ///
    /// See [`Server::bind`].
    pub fn spawn(cfg: ServeConfig) -> Result<ServerHandle, String> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, thread })
    }
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<(), String>>,
}

impl ServerHandle {
    /// The served address, e.g. for [`crate::Client::new`].
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and waits for the server to stop.
    ///
    /// # Errors
    ///
    /// Fails when the shutdown request cannot be delivered or the server
    /// thread ended with an error.
    pub fn shutdown(self) -> Result<(), String> {
        crate::Client::new(self.addr.to_string()).shutdown()?;
        self.thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
    }
}

fn handle_connection(
    stream: TcpStream,
    jobs: &Arc<JobManager>,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match serde_json::from_str::<Value>(&line) {
            Ok(request) => dispatch(&request, jobs),
            Err(e) => (error_response(&format!("malformed request: {e}")), false),
        };
        let mut text = serde_json::to_string(&response).expect("infallible");
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `accept`; a throwaway local
            // connection wakes it so it can observe the stop flag.
            let _ = TcpStream::connect(addr);
            return;
        }
    }
}

/// Dispatches one request, returning the response and whether the server
/// should shut down afterwards.
fn dispatch(request: &Value, jobs: &Arc<JobManager>) -> (Value, bool) {
    let result = (|| -> Result<(Value, bool), String> {
        check_proto(request)?;
        let cmd = req_str(request, "cmd")?;
        Ok(match cmd {
            "ping" => (
                ok_response(vec![
                    ("server".to_string(), Value::String("prefixrl-serve".into())),
                    (
                        "jobs".to_string(),
                        Value::Number(serde::Number::UInt(
                            jobs.list().as_array().map_or(0, <[Value]>::len) as u64,
                        )),
                    ),
                    ("cache".to_string(), jobs.cache_json()),
                    ("frontier".to_string(), jobs.store().stats_json()),
                ]),
                false,
            ),
            "submit" => {
                let spec_value = request
                    .get("job")
                    .ok_or_else(|| "missing field `job`".to_string())?;
                let spec =
                    JobSpec::from_value(spec_value).map_err(|e| format!("field `job`: {e}"))?;
                let id = jobs.submit(spec)?;
                (
                    ok_response(vec![(
                        "id".to_string(),
                        Value::Number(serde::Number::UInt(id)),
                    )]),
                    false,
                )
            }
            "status" => {
                let id = req_u64(request, "id")?;
                let tail = opt_u64(request, "tail", 16)? as usize;
                (
                    ok_response(vec![("job".to_string(), jobs.status(id, tail)?)]),
                    false,
                )
            }
            "list" => (ok_response(vec![("jobs".to_string(), jobs.list())]), false),
            "cancel" => {
                let id = req_u64(request, "id")?;
                let result = jobs.cancel(id)?;
                (
                    ok_response(vec![(
                        "result".to_string(),
                        Value::String(result.to_string()),
                    )]),
                    false,
                )
            }
            "frontier" => {
                let task = req_str(request, "task")?;
                let backend = req_str(request, "backend")?;
                let n_raw = req_u64(request, "n")?;
                // A lossy `as u16` would silently alias out-of-range
                // widths onto someone else's key (65544 → 8).
                let n = u16::try_from(n_raw)
                    .map_err(|_| format!("field `n`: width {n_raw} exceeds u16"))?;
                let points = jobs.store().front_json(task, backend, n, false);
                // `null` points = key never merged; `[]` = merged but
                // empty. Clients can tell the two apart via `known`.
                let known = !matches!(points, Value::Null);
                let count = points.as_array().map_or(0, <[Value]>::len) as u64;
                (
                    ok_response(vec![
                        (
                            "key".to_string(),
                            Value::String(crate::store::key_of(task, backend, n)),
                        ),
                        ("known".to_string(), Value::Bool(known)),
                        (
                            "count".to_string(),
                            Value::Number(serde::Number::UInt(count)),
                        ),
                        ("points".to_string(), points),
                        (
                            "keys".to_string(),
                            Value::Array(
                                jobs.store().keys().into_iter().map(Value::String).collect(),
                            ),
                        ),
                    ]),
                    false,
                )
            }
            // The read tier: `query`/`query_batch` resolve against the
            // store's immutable snapshot only — they never take the store
            // mutex, so a concurrent merge's WAL fsync cannot stall them.
            "query" => {
                let snapshot = jobs.store().snapshot();
                let answer = crate::query::answer_query(&snapshot, request)?;
                (
                    ok_response(vec![
                        ("result".to_string(), answer),
                        (
                            "epoch".to_string(),
                            Value::Number(serde::Number::UInt(snapshot.epoch())),
                        ),
                    ]),
                    false,
                )
            }
            "query_batch" => {
                let queries = match request.get("queries") {
                    Some(Value::Array(qs)) => qs,
                    Some(other) => {
                        return Err(format!("field `queries`: expected an array, got {other:?}"))
                    }
                    None => return Err("missing field `queries`".to_string()),
                };
                if queries.len() > crate::query::MAX_BATCH {
                    return Err(format!(
                        "field `queries`: batch of {} exceeds the {} cap",
                        queries.len(),
                        crate::query::MAX_BATCH
                    ));
                }
                // One snapshot for the whole batch: every answer reflects
                // the same epoch, even if merges land mid-batch.
                let snapshot = jobs.store().snapshot();
                let results: Vec<Value> = queries
                    .iter()
                    .map(|q| match crate::query::answer_query(&snapshot, q) {
                        Ok(answer) => answer,
                        Err(e) => Value::Object(vec![
                            ("ok".to_string(), Value::Bool(false)),
                            ("error".to_string(), Value::String(e)),
                        ]),
                    })
                    .collect();
                (
                    ok_response(vec![
                        ("results".to_string(), Value::Array(results)),
                        (
                            "epoch".to_string(),
                            Value::Number(serde::Number::UInt(snapshot.epoch())),
                        ),
                    ]),
                    false,
                )
            }
            "shutdown" => (
                ok_response(vec![(
                    "result".to_string(),
                    Value::String("shutting down".into()),
                )]),
                true,
            ),
            other => {
                return Err(format!(
                    "unknown cmd `{other}` (this server speaks `{PROTOCOL}`: \
                     ping|submit|status|list|cancel|frontier|query|query_batch|shutdown)"
                ))
            }
        })
    })();
    match result {
        Ok(pair) => pair,
        Err(e) => (error_response(&e), false),
    }
}
