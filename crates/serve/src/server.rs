//! The TCP front of the serve daemon: an accept loop handing each
//! connection to a line-oriented handler thread that dispatches
//! `prefixrl.serve.v1` requests to the [`JobManager`] and
//! [`crate::FrontierStore`] — plus, in cluster mode, the streaming
//! `repl_subscribe` half of WAL-shipping replication and the follower
//! threads subscribing to this node's sources.

use crate::cluster::{self, ReplHandshake};
use crate::jobs::{JobManager, JobSpec, ServeConfig};
use crate::protocol::{
    check_proto, error_response, ok_response, opt_u64, req_str, req_u64, MAX_REQUEST_LINE, PROTOCOL,
};
use serde::Deserialize;
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection write timeout: one stuck reader (a client that stops
/// draining its socket) fails its own connection instead of pinning a
/// handler thread forever.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound, not-yet-serving server instance.
pub struct Server {
    listener: TcpListener,
    jobs: Arc<JobManager>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    replicators: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket, loads/creates the persistent state,
    /// spawns the job workers and — in cluster mode — the replication
    /// follower threads. Serving starts with [`Server::run`].
    ///
    /// The listener is bound with `SO_REUSEADDR` (on Linux): a restarted
    /// shard must be able to rebind its well-known cluster port
    /// immediately, not after the previous instance's connections leave
    /// `TIME_WAIT`.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound, the state files are
    /// unreadable/corrupt, or the cluster topology is invalid.
    pub fn bind(cfg: ServeConfig) -> Result<Server, String> {
        let listener = bind_listener(&cfg.addr)?;
        let jobs = JobManager::new(cfg)?;
        let stop = Arc::new(AtomicBool::new(false));
        let replicators = cluster::spawn_replicators(&jobs, &stop);
        let workers = jobs.spawn_workers();
        Ok(Server {
            listener,
            jobs,
            stop,
            workers,
            replicators,
        })
    }

    /// The actually bound address (resolves `:0` ephemeral ports).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (never after `bind`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The job manager behind this server (for in-process embedding).
    pub fn jobs(&self) -> &Arc<JobManager> {
        &self.jobs
    }

    /// Serves until a `shutdown` request arrives, then gracefully stops
    /// the workers (running jobs are cancelled and re-queued in the
    /// persisted state for the next instance) and the replication
    /// followers.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for fatal listener
    /// errors.
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr();
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let jobs = Arc::clone(&self.jobs);
                    let stop = Arc::clone(&self.stop);
                    std::thread::spawn(move || handle_connection(stream, &jobs, &stop, addr));
                }
                // Per-connection accept failures are transient — e.g.
                // ECONNABORTED when a queued client (including the
                // shutdown wake connection) resets before accept — and
                // must never kill a resident server.
                Err(e) => eprintln!("warning: accept on {addr}: {e}"),
            }
            // Check the stop flag *after* handing the accepted connection
            // off: if an innocent client raced the shutdown's throwaway
            // wake connection into `accept`, it still gets served instead
            // of hanging until its read timeout.
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.jobs.shutdown();
        for worker in self.workers {
            let _ = worker.join();
        }
        // Follower threads poll the stop flag on a 500 ms cadence.
        for replicator in self.replicators {
            let _ = replicator.join();
        }
        Ok(())
    }

    /// Binds and serves on a background thread — the in-process embedding
    /// used by tests, benches, and the quickstart example.
    ///
    /// # Errors
    ///
    /// See [`Server::bind`].
    pub fn spawn(cfg: ServeConfig) -> Result<ServerHandle, String> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr();
        let jobs = Arc::clone(&server.jobs);
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, jobs, thread })
    }
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    jobs: Arc<JobManager>,
    thread: std::thread::JoinHandle<Result<(), String>>,
}

impl ServerHandle {
    /// The served address, e.g. for [`crate::Client::new`].
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job manager (and through it the frontier store) behind the
    /// running server — for tests and benches that drive merges directly.
    pub fn jobs(&self) -> &Arc<JobManager> {
        &self.jobs
    }

    /// Requests a graceful shutdown and waits for the server to stop.
    ///
    /// # Errors
    ///
    /// Fails when the shutdown request cannot be delivered or the server
    /// thread ended with an error.
    pub fn shutdown(self) -> Result<(), String> {
        crate::Client::new(self.addr.to_string()).shutdown()?;
        self.thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
    }
}

/// Binds the listen socket, preferring a Linux `SO_REUSEADDR` bind for
/// IPv4 addresses (std's `TcpListener::bind` cannot set it, and a
/// restarted shard would otherwise hit `EADDRINUSE` for 60 s of
/// `TIME_WAIT` after a `kill -9`).
fn bind_listener(addr: &str) -> Result<TcpListener, String> {
    use std::net::ToSocketAddrs;
    #[cfg(target_os = "linux")]
    {
        if let Ok(resolved) = addr.to_socket_addrs() {
            for candidate in resolved {
                if let SocketAddr::V4(v4) = candidate {
                    if let Some(listener) = reuseaddr::bind_v4(v4) {
                        return Ok(listener);
                    }
                }
            }
        }
    }
    TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))
}

/// Minimal FFI for an `SO_REUSEADDR` IPv4 listener. std links glibc
/// already; declaring the four libc calls avoids a dependency the
/// offline container cannot fetch. Any failure falls back to the std
/// bind path (returning `None`).
#[cfg(target_os = "linux")]
mod reuseaddr {
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::FromRawFd;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    pub fn bind_v4(addr: SocketAddrV4) -> Option<TcpListener> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return None;
            }
            let one: i32 = 1;
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                // `octets()` is already network byte order in memory.
                sin_addr: u32::from_ne_bytes(addr.ip().octets()),
                sin_zero: [0; 8],
            };
            let size = std::mem::size_of::<SockaddrIn>() as u32;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0
                || bind(fd, &sa, size) != 0
                || listen(fd, 128) != 0
            {
                close(fd);
                return None;
            }
            Some(TcpListener::from_raw_fd(fd))
        }
    }
}

/// What one dispatched request asks the connection handler to do.
enum Outcome {
    /// Write the response, keep serving this connection.
    Reply(Value),
    /// Write the response, then stop the whole server.
    Shutdown(Value),
    /// Write the response, then switch this connection into a one-way
    /// replication stream (it never reads another request).
    Stream(Value, ReplHandshake),
}

fn write_line(writer: &mut TcpStream, value: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string(value).expect("infallible");
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    jobs: &Arc<JobManager>,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |p| p.to_string());
    if stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream).take(MAX_REQUEST_LINE);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        reader.set_limit(MAX_REQUEST_LINE);
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return, // clean EOF between requests
            Ok(_) => {}
            Err(e) => {
                if !buf.is_empty() {
                    eprintln!("warning: connection {peer}: read failed mid-request: {e}");
                }
                return;
            }
        }
        if !buf.ends_with(b"\n") {
            if buf.len() as u64 >= MAX_REQUEST_LINE {
                // The line limit hit before a newline: framing is lost,
                // so answer loudly and drop the connection (the accept
                // loop is untouched).
                eprintln!(
                    "warning: connection {peer}: request line exceeds {MAX_REQUEST_LINE} bytes; \
                     closing"
                );
                let _ = write_line(
                    &mut writer,
                    &error_response(&format!(
                        "request line exceeds the {MAX_REQUEST_LINE}-byte cap"
                    )),
                );
            } else {
                // EOF mid-line: the peer died with a truncated request.
                eprintln!(
                    "warning: connection {peer}: truncated request ({} bytes)",
                    buf.len()
                );
            }
            return;
        }
        let text = String::from_utf8_lossy(&buf);
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        let outcome = match serde_json::from_str::<Value>(line) {
            Ok(request) => dispatch(&request, jobs),
            Err(e) => {
                eprintln!("warning: connection {peer}: malformed request: {e}");
                Outcome::Reply(error_response(&format!("malformed request: {e}")))
            }
        };
        match outcome {
            Outcome::Reply(response) => {
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            Outcome::Shutdown(response) => {
                let _ = write_line(&mut writer, &response);
                stop.store(true, Ordering::SeqCst);
                // The accept loop is blocked in `accept`; a throwaway local
                // connection wakes it so it can observe the stop flag.
                let _ = TcpStream::connect(addr);
                return;
            }
            Outcome::Stream(response, handshake) => {
                stream_replication(&mut writer, response, handshake, stop, &peer);
                return;
            }
        }
    }
}

/// Drives one follower subscription: header, optional snapshot, backlog
/// replay, then live records until the follower hangs up, falls too far
/// behind (the hub drops its channel), or the server stops.
fn stream_replication(
    writer: &mut TcpStream,
    header: Value,
    handshake: ReplHandshake,
    stop: &AtomicBool,
    peer: &str,
) {
    if write_line(writer, &header).is_err() {
        return;
    }
    if let Some(fronts) = &handshake.snapshot {
        let line = serde_json::json!({
            "type": "repl_snapshot",
            "epoch": handshake.epoch,
            "seq": handshake.resume_seq,
            "fronts": fronts.clone(),
        });
        if write_line(writer, &line).is_err() {
            return;
        }
    }
    for record in &handshake.replay {
        if write_line(writer, &record.to_line(handshake.epoch)).is_err() {
            return;
        }
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match handshake.rx.recv_timeout(Duration::from_millis(500)) {
            Ok(record) => {
                if write_line(writer, &record.to_line(handshake.epoch)).is_err() {
                    eprintln!("warning: replication subscriber {peer} hung up");
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            // The hub dropped this subscriber (its channel filled): the
            // follower reconnects and resumes from its cursor.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Dispatches one request into the action the handler should take.
fn dispatch(request: &Value, jobs: &Arc<JobManager>) -> Outcome {
    let result = (|| -> Result<Outcome, String> {
        check_proto(request)?;
        let cmd = req_str(request, "cmd")?;
        Ok(match cmd {
            "ping" => Outcome::Reply(ok_response(vec![
                ("server".to_string(), Value::String("prefixrl-serve".into())),
                (
                    "jobs".to_string(),
                    Value::Number(serde::Number::UInt(
                        jobs.list().as_array().map_or(0, <[Value]>::len) as u64,
                    )),
                ),
                ("cache".to_string(), jobs.cache_json()),
                ("frontier".to_string(), jobs.store().stats_json()),
            ])),
            "submit" => {
                let spec_value = request
                    .get("job")
                    .ok_or_else(|| "missing field `job`".to_string())?;
                let spec =
                    JobSpec::from_value(spec_value).map_err(|e| format!("field `job`: {e}"))?;
                let id = jobs.submit(spec)?;
                Outcome::Reply(ok_response(vec![(
                    "id".to_string(),
                    Value::Number(serde::Number::UInt(id)),
                )]))
            }
            "status" => {
                let id = req_u64(request, "id")?;
                let tail = opt_u64(request, "tail", 16)? as usize;
                Outcome::Reply(ok_response(vec![(
                    "job".to_string(),
                    jobs.status(id, tail)?,
                )]))
            }
            "list" => Outcome::Reply(ok_response(vec![("jobs".to_string(), jobs.list())])),
            "cancel" => {
                let id = req_u64(request, "id")?;
                let result = jobs.cancel(id)?;
                Outcome::Reply(ok_response(vec![(
                    "result".to_string(),
                    Value::String(result.to_string()),
                )]))
            }
            "frontier" => {
                let task = req_str(request, "task")?;
                let backend = req_str(request, "backend")?;
                let n_raw = req_u64(request, "n")?;
                // A lossy `as u16` would silently alias out-of-range
                // widths onto someone else's key (65544 → 8).
                let n = u16::try_from(n_raw)
                    .map_err(|_| format!("field `n`: width {n_raw} exceeds u16"))?;
                let points = jobs.store().front_json(task, backend, n, false);
                // `null` points = key never merged; `[]` = merged but
                // empty. Clients can tell the two apart via `known`.
                let known = !matches!(points, Value::Null);
                let count = points.as_array().map_or(0, <[Value]>::len) as u64;
                Outcome::Reply(ok_response(vec![
                    (
                        "key".to_string(),
                        Value::String(crate::store::key_of(task, backend, n)),
                    ),
                    ("known".to_string(), Value::Bool(known)),
                    (
                        "count".to_string(),
                        Value::Number(serde::Number::UInt(count)),
                    ),
                    ("points".to_string(), points),
                    (
                        "keys".to_string(),
                        Value::Array(jobs.store().keys().into_iter().map(Value::String).collect()),
                    ),
                ]))
            }
            // The read tier: `query`/`query_batch` resolve against the
            // store's immutable snapshot only — they never take the store
            // mutex, so a concurrent merge's WAL fsync cannot stall them.
            "query" => {
                let snapshot = jobs.store().snapshot();
                let answer = crate::query::answer_query(&snapshot, request)?;
                Outcome::Reply(ok_response(vec![
                    ("result".to_string(), answer),
                    (
                        "epoch".to_string(),
                        Value::Number(serde::Number::UInt(snapshot.epoch())),
                    ),
                ]))
            }
            "query_batch" => {
                let queries = match request.get("queries") {
                    Some(Value::Array(qs)) => qs,
                    Some(other) => {
                        return Err(format!("field `queries`: expected an array, got {other:?}"))
                    }
                    None => return Err("missing field `queries`".to_string()),
                };
                if queries.len() > crate::query::MAX_BATCH {
                    return Err(format!(
                        "field `queries`: batch of {} exceeds the {} cap",
                        queries.len(),
                        crate::query::MAX_BATCH
                    ));
                }
                // One snapshot for the whole batch: every answer reflects
                // the same epoch, even if merges land mid-batch.
                let snapshot = jobs.store().snapshot();
                let results: Vec<Value> = queries
                    .iter()
                    .map(|q| match crate::query::answer_query(&snapshot, q) {
                        Ok(answer) => answer,
                        Err(e) => Value::Object(vec![
                            ("ok".to_string(), Value::Bool(false)),
                            ("error".to_string(), Value::String(e)),
                        ]),
                    })
                    .collect();
                Outcome::Reply(ok_response(vec![
                    ("results".to_string(), Value::Array(results)),
                    (
                        "epoch".to_string(),
                        Value::Number(serde::Number::UInt(snapshot.epoch())),
                    ),
                ]))
            }
            // Cluster verbs (DESIGN.md §16). `repl_subscribe` switches the
            // connection into a one-way record stream; `cluster` reports
            // topology, hub and follower state (and resolves key owners).
            "repl_subscribe" => {
                let from_epoch = opt_u64(request, "epoch", 0)?;
                let from_seq = opt_u64(request, "from_seq", 0)?;
                let handshake = jobs.store().subscribe_replication(from_epoch, from_seq)?;
                let header = ok_response(vec![
                    ("mode".to_string(), Value::String("repl_stream".into())),
                    (
                        "epoch".to_string(),
                        Value::Number(serde::Number::UInt(handshake.epoch)),
                    ),
                    (
                        "seq".to_string(),
                        Value::Number(serde::Number::UInt(handshake.resume_seq)),
                    ),
                    (
                        "resume".to_string(),
                        Value::String(
                            if handshake.snapshot.is_some() {
                                "snapshot"
                            } else {
                                "stream"
                            }
                            .into(),
                        ),
                    ),
                ]);
                Outcome::Stream(header, handshake)
            }
            "cluster" => {
                let Some(topology) = jobs.config().cluster.clone() else {
                    return Err(
                        "this server is not part of a cluster (start it with --peers)".to_string(),
                    );
                };
                let mut fields = vec![("topology".to_string(), topology.to_json())];
                if let Some(epoch) = jobs.store().replication_epoch() {
                    fields.push((
                        "epoch".to_string(),
                        Value::Number(serde::Number::UInt(epoch)),
                    ));
                }
                if let Some((next_seq, subscribers)) = jobs.store().replication_stats() {
                    fields.push((
                        "next_seq".to_string(),
                        Value::Number(serde::Number::UInt(next_seq)),
                    ));
                    fields.push((
                        "subscribers".to_string(),
                        Value::Number(serde::Number::UInt(subscribers as u64)),
                    ));
                }
                fields.push(("sources".to_string(), jobs.repl_status_json()));
                // Optional owner lookup: `key` = "task/backend/n".
                if let Some(Value::String(key)) = request.get("key") {
                    crate::store::parse_key(key)?;
                    let owner = topology.primary_of(key);
                    fields.push((
                        "owner".to_string(),
                        Value::Number(serde::Number::UInt(owner as u64)),
                    ));
                    fields.push((
                        "owner_addr".to_string(),
                        Value::String(topology.peers[owner].clone()),
                    ));
                }
                Outcome::Reply(ok_response(fields))
            }
            "shutdown" => Outcome::Shutdown(ok_response(vec![(
                "result".to_string(),
                Value::String("shutting down".into()),
            )])),
            other => {
                return Err(format!(
                    "unknown cmd `{other}` (this server speaks `{PROTOCOL}`: \
                     ping|submit|status|list|cancel|frontier|query|query_batch|\
                     repl_subscribe|cluster|shutdown)"
                ))
            }
        })
    })();
    match result {
        Ok(outcome) => outcome,
        Err(e) => Outcome::Reply(error_response(&e)),
    }
}
