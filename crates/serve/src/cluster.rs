//! The multi-node serve cluster (DESIGN.md §16): partitioned frontier
//! keys, WAL-shipping replication, and a fan-out query router.
//!
//! PR 7 made single-node reads lock-free; this module removes the other
//! two single-node limits — merge throughput and durability — without a
//! consensus protocol, by leaning on two properties the store already
//! has:
//!
//! - **Partitioning**: every frontier key `(task, backend, width)` hashes
//!   to exactly one *primary* shard ([`shard_of`], stable FNV-1a over the
//!   composite key). Writes for a key go only to its primary, so N nodes
//!   split the merge load with no cross-node coordination on the write
//!   path.
//! - **WAL-shipping replication**: a primary streams every fsynced merge
//!   record to its R followers over the existing newline-JSON protocol
//!   (`repl_subscribe` → a stream of `repl_record` lines, with
//!   epoch/offset resume and a full-snapshot fallback). Followers replay
//!   records through the same idempotent
//!   [`prefixrl_core::pareto::ParetoFront::insert`] the WAL replay uses,
//!   so duplicated delivery is harmless and follower state can only
//!   converge toward the primary's.
//! - **Fan-out routing**: [`Router`] sends single queries to the owning
//!   shard, scatters `query_batch` by key with a gather that preserves
//!   input order, and fails *reads* over to followers (bounded retry +
//!   backoff) when a primary is unreachable. Writes never fail over —
//!   a dead primary's keys are read-only until it restarts, which is what
//!   makes replica catch-up bit-identical (no diverging writer).
//!
//! Consistency: followers are eventually consistent, bounded by the
//! in-flight tail of the primary's WAL — a record is shipped only after
//! its fsync returns, so a follower can trail but never lead the
//! primary's durable state.

use crate::client::{Client, ClientError};
use crate::jobs::JobManager;
use crate::protocol::PROTOCOL;
use crate::store::key_of;
use prefixrl_core::checkpoint::write_atomic;
use serde_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Replication records a primary retains in memory for offset resume;
/// a follower further behind than this gets a full-snapshot resync.
pub const REPL_BACKLOG_CAP: usize = 1024;

/// Per-subscriber channel depth between the merge path and the streaming
/// connection thread. A follower too slow to drain this is dropped (it
/// reconnects and resumes from its cursor) instead of backpressuring
/// merges.
const REPL_CHANNEL_CAP: usize = 256;

/// Schema stamp of the persisted per-source replication cursor.
pub const REPL_CURSOR_SCHEMA: &str = "prefixrl.repl-cursor.v1";

/// How many failover rounds the router makes over a key's candidate
/// shards before giving up.
pub const ROUTER_RETRY_ROUNDS: usize = 3;

/// Base backoff between router failover rounds (doubles per round).
pub const ROUTER_RETRY_BACKOFF: Duration = Duration::from_millis(50);

/// The stable partition function: FNV-1a over the composite key string,
/// reduced modulo the shard count. Every node and every client computes
/// the same map, so there is no partition-metadata service to keep
/// consistent.
pub fn shard_of(key: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// The static cluster membership every node and router is configured
/// with: an ordered peer list (shard i listens at `peers[i]`), this
/// node's own index, and the replication factor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// This node's index into `peers`.
    pub shard_id: usize,
    /// Listen addresses of every shard, in shard-id order.
    pub peers: Vec<String>,
    /// Followers per primary: shard p replicates to the next `replicas`
    /// shards ring-wise (`p+1 … p+replicas` mod N).
    pub replicas: usize,
}

impl Topology {
    /// A validated topology.
    ///
    /// # Errors
    ///
    /// Fails on an empty peer list, a `shard_id` outside it, or a
    /// replication factor that does not leave the primary distinct from
    /// its followers (`replicas >= peers.len()`).
    pub fn new(shard_id: usize, peers: Vec<String>, replicas: usize) -> Result<Topology, String> {
        let t = Topology {
            shard_id,
            peers,
            replicas,
        };
        t.validate()?;
        Ok(t)
    }

    /// Re-checks the invariants of a hand-assembled topology.
    ///
    /// # Errors
    ///
    /// See [`Topology::new`].
    pub fn validate(&self) -> Result<(), String> {
        if self.peers.is_empty() {
            return Err("cluster topology needs at least one peer address".to_string());
        }
        if self.shard_id >= self.peers.len() {
            return Err(format!(
                "shard id {} outside the peer list (0..{})",
                self.shard_id,
                self.peers.len()
            ));
        }
        if self.replicas >= self.peers.len() {
            return Err(format!(
                "replication factor {} needs at least {} peers, have {}",
                self.replicas,
                self.replicas + 1,
                self.peers.len()
            ));
        }
        Ok(())
    }

    /// Number of shards in the cluster.
    pub fn num_shards(&self) -> usize {
        self.peers.len()
    }

    /// The primary shard owning `key`.
    pub fn primary_of(&self, key: &str) -> usize {
        shard_of(key, self.num_shards())
    }

    /// Whether this node is the primary for `key`.
    pub fn owns(&self, key: &str) -> bool {
        self.primary_of(key) == self.shard_id
    }

    /// The follower shards of `primary`, in failover-preference order.
    pub fn followers_of(&self, primary: usize) -> Vec<usize> {
        let n = self.num_shards();
        (1..=self.replicas).map(|i| (primary + i) % n).collect()
    }

    /// The primaries this node follows (subscribes to): exactly those
    /// whose follower set contains `shard_id`.
    pub fn replica_sources(&self) -> Vec<usize> {
        (0..self.num_shards())
            .filter(|&p| p != self.shard_id && self.followers_of(p).contains(&self.shard_id))
            .collect()
    }

    /// The shards to try for a *read* of `key`: the primary first, then
    /// its followers.
    pub fn read_candidates(&self, key: &str) -> Vec<usize> {
        let primary = self.primary_of(key);
        let mut out = vec![primary];
        out.extend(self.followers_of(primary));
        out
    }

    /// The topology as a JSON object (the `cluster` verb payload).
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "shard_id": self.shard_id as u64,
            "peers": Value::Array(self.peers.iter().cloned().map(Value::String).collect()),
            "replicas": self.replicas as u64,
        })
    }
}

/// One fsynced merge, as shipped to followers: a monotone per-epoch
/// sequence number plus the exact accepted-designs payload the WAL
/// recorded.
pub struct ReplRecord {
    /// Position in the primary's publish order (restarts at 0 per epoch).
    pub seq: u64,
    /// The frontier key the designs merged into.
    pub key: String,
    /// The accepted `[(graph, point), …]` list, pre-serialized.
    pub designs: Value,
}

impl ReplRecord {
    /// The `repl_record` stream line for this record.
    pub fn to_line(&self, epoch: u64) -> Value {
        serde_json::json!({
            "type": "repl_record",
            "epoch": epoch,
            "seq": self.seq,
            "key": self.key.clone(),
            "designs": self.designs.clone(),
        })
    }
}

struct HubState {
    next_seq: u64,
    backlog: VecDeque<Arc<ReplRecord>>,
    subscribers: Vec<SyncSender<Arc<ReplRecord>>>,
}

/// The primary-side fan-out point: every fsynced merge of an *owned* key
/// is published here and relayed to each live subscriber. Restart-safe
/// resume is epoch/offset based: the epoch is unique per store open, the
/// sequence restarts at 0 with it, and [`REPL_BACKLOG_CAP`] records are
/// retained for offset resume — anything older falls back to a full
/// owned-keys snapshot.
pub struct ReplicationHub {
    epoch: u64,
    state: Mutex<HubState>,
}

/// What a `repl_subscribe` handshake resolved to (built under the store
/// mutex, so it is atomic with respect to concurrent merges).
pub struct ReplHandshake {
    /// The primary's current replication epoch.
    pub epoch: u64,
    /// The stream continues from this sequence number; the snapshot (when
    /// present) covers everything before it.
    pub resume_seq: u64,
    /// Full owned-keys state (`{key: [(graph, point), …]}`), present when
    /// the follower's cursor could not be resumed from the backlog.
    pub snapshot: Option<Value>,
    /// Backlog records to replay before going live (offset resume).
    pub replay: Vec<Arc<ReplRecord>>,
    /// The live stream of records published after the handshake.
    pub rx: Receiver<Arc<ReplRecord>>,
}

impl ReplicationHub {
    /// A hub with a fresh process-unique, nonzero epoch.
    pub fn new() -> ReplicationHub {
        ReplicationHub {
            epoch: unique_epoch(),
            state: Mutex::new(HubState {
                next_seq: 0,
                backlog: VecDeque::new(),
                subscribers: Vec::new(),
            }),
        }
    }

    /// The epoch followers must echo to resume by offset.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(next_seq, live_subscribers)` for diagnostics.
    pub fn stats(&self) -> (u64, usize) {
        let s = lock(&self.state);
        (s.next_seq, s.subscribers.len())
    }

    /// Publishes one fsynced merge to the backlog and every live
    /// subscriber. A subscriber whose channel is full or gone is dropped —
    /// it reconnects and resumes from its persisted cursor rather than
    /// backpressuring the merge path.
    pub(crate) fn publish(&self, key: &str, designs: Value) {
        let mut s = lock(&self.state);
        let record = Arc::new(ReplRecord {
            seq: s.next_seq,
            key: key.to_string(),
            designs,
        });
        s.next_seq += 1;
        s.backlog.push_back(Arc::clone(&record));
        if s.backlog.len() > REPL_BACKLOG_CAP {
            s.backlog.pop_front();
        }
        s.subscribers
            .retain(|tx| tx.try_send(Arc::clone(&record)).is_ok());
    }

    /// Registers a subscriber resuming from `(from_epoch, from_seq)`.
    /// Resume-by-offset succeeds when the epoch matches and the backlog
    /// still covers `from_seq`; otherwise the caller must ship a full
    /// snapshot first. Must be called with the store mutex held so the
    /// snapshot/backlog cut is atomic against merges.
    pub(crate) fn subscribe(
        &self,
        from_epoch: u64,
        from_seq: u64,
    ) -> (bool, u64, Vec<Arc<ReplRecord>>, Receiver<Arc<ReplRecord>>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(REPL_CHANNEL_CAP);
        let mut s = lock(&self.state);
        let next = s.next_seq;
        let oldest = next - s.backlog.len() as u64;
        let resumable = from_epoch == self.epoch && (oldest..=next).contains(&from_seq);
        let replay = if resumable {
            s.backlog
                .iter()
                .filter(|r| r.seq >= from_seq)
                .map(Arc::clone)
                .collect()
        } else {
            Vec::new()
        };
        s.subscribers.push(tx);
        (!resumable, next, replay, rx)
    }
}

impl Default for ReplicationHub {
    fn default() -> Self {
        ReplicationHub::new()
    }
}

/// A nonzero epoch unique across store opens on this host: wall-clock
/// nanoseconds folded with a process-local counter (two opens in the same
/// nanosecond still differ). Followers start from epoch 0, which never
/// matches, forcing the initial full-snapshot sync.
fn unique_epoch() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let mixed = nanos ^ (COUNTER.fetch_add(1, Ordering::Relaxed) << 48);
    mixed.max(1)
}

/// Connection/progress state of one follower→primary subscription, for
/// the `cluster` verb.
#[derive(Clone, Debug, Default)]
pub struct ReplPeerStatus {
    /// Whether the subscription stream is currently live.
    pub connected: bool,
    /// The primary epoch last synced from.
    pub epoch: u64,
    /// Next sequence number expected from that epoch.
    pub seq: u64,
    /// Records applied over the lifetime of this server.
    pub records_applied: u64,
    /// Full-snapshot resyncs performed.
    pub snapshots: u64,
}

impl ReplPeerStatus {
    /// This status as a JSON object.
    pub fn to_json(&self, source: usize) -> Value {
        serde_json::json!({
            "source": source as u64,
            "connected": self.connected,
            "epoch": self.epoch,
            "seq": self.seq,
            "records_applied": self.records_applied,
            "snapshots": self.snapshots,
        })
    }
}

/// The persisted cursor path for one replication source.
fn cursor_path(dir: &Path, source: usize) -> PathBuf {
    dir.join(format!("repl_cursor_{source}.json"))
}

/// Loads a persisted `(epoch, seq)` cursor; `(0, 0)` — which forces a
/// snapshot resync — when absent or unreadable (the cursor is an
/// optimization, never a correctness input).
fn load_cursor(path: &Path) -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (0, 0);
    };
    let Ok(value) = serde_json::from_str::<Value>(&text) else {
        return (0, 0);
    };
    let num = |k: &str| match value.get(k) {
        Some(Value::Number(n)) => n.as_u64().unwrap_or(0),
        _ => 0,
    };
    match value.get("schema") {
        Some(Value::String(s)) if s == REPL_CURSOR_SCHEMA => (num("epoch"), num("seq")),
        _ => (0, 0),
    }
}

/// Best-effort atomic cursor persist (losing it only costs a resync).
fn save_cursor(path: &Path, epoch: u64, seq: u64) {
    let value = serde_json::json!({
        "schema": REPL_CURSOR_SCHEMA,
        "epoch": epoch,
        "seq": seq,
    });
    if let Err(e) = write_atomic(path, &serde_json::to_string(&value).expect("infallible")) {
        eprintln!("warning: replication cursor persist failed: {e}");
    }
}

/// Spawns one follower thread per primary this node replicates (an empty
/// vec when the server is not clustered or has no sources). Threads poll
/// `stop` and exit within ~500 ms of shutdown.
pub(crate) fn spawn_replicators(
    jobs: &Arc<JobManager>,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let Some(topology) = jobs.config().cluster.clone() else {
        return Vec::new();
    };
    topology
        .replica_sources()
        .into_iter()
        .map(|source| {
            let topology = topology.clone();
            let jobs = Arc::clone(jobs);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || replicate_from(source, &topology, &jobs, &stop))
        })
        .collect()
}

/// The follower loop for one source primary: connect (with backoff),
/// subscribe from the persisted cursor, apply the snapshot/replay/live
/// stream through the idempotent merge path, persist the cursor as it
/// advances, and reconnect on any error.
fn replicate_from(source: usize, topology: &Topology, jobs: &Arc<JobManager>, stop: &AtomicBool) {
    let addr = topology.peers[source].clone();
    let cursor_file = jobs
        .config()
        .state_dir
        .as_ref()
        .map(|d| cursor_path(d, source));
    let (mut epoch, mut seq) = cursor_file.as_deref().map_or((0, 0), load_cursor);
    jobs.set_repl_status(source, |s| {
        s.epoch = epoch;
        s.seq = seq;
    });
    let mut backoff = Duration::from_millis(50);
    while !stop.load(Ordering::SeqCst) {
        let stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(2));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        // A short read timeout keeps the loop responsive to `stop`; idle
        // timeouts are expected between records and simply re-poll.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let Ok(mut writer) = stream.try_clone() else {
            continue;
        };
        let subscribe = serde_json::json!({
            "proto": PROTOCOL,
            "cmd": "repl_subscribe",
            "epoch": epoch,
            "from_seq": seq,
            "follower": topology.shard_id as u64,
        });
        let mut line = serde_json::to_string(&subscribe).expect("infallible");
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
            continue;
        }
        let mut reader = BufReader::new(stream);
        let Some(header) = read_stream_line(&mut reader, stop) else {
            continue;
        };
        if header.get("ok") != Some(&Value::Bool(true)) {
            // The primary exists but refused (e.g. still booting without
            // cluster config) — loud, then retry with backoff.
            eprintln!(
                "warning: shard {}: repl_subscribe to shard {source} ({addr}) refused: {:?}",
                topology.shard_id,
                header.get("error")
            );
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(2));
            continue;
        }
        backoff = Duration::from_millis(50);
        jobs.set_repl_status(source, |s| s.connected = true);
        while !stop.load(Ordering::SeqCst) {
            let Some(event) = read_stream_line(&mut reader, stop) else {
                break;
            };
            match apply_stream_event(&event, jobs) {
                Ok(Some((new_epoch, new_seq, was_snapshot))) => {
                    epoch = new_epoch;
                    seq = new_seq;
                    if let Some(path) = &cursor_file {
                        save_cursor(path, epoch, seq);
                    }
                    jobs.set_repl_status(source, |s| {
                        s.epoch = epoch;
                        s.seq = seq;
                        if was_snapshot {
                            s.snapshots += 1;
                        } else {
                            s.records_applied += 1;
                        }
                    });
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!(
                        "warning: shard {}: replication stream from shard {source} ({addr}): {e}",
                        topology.shard_id
                    );
                    break;
                }
            }
        }
        jobs.set_repl_status(source, |s| s.connected = false);
    }
}

/// Applies one stream line; returns the follower's new
/// `(epoch, next_seq, was_snapshot)` cursor, or `None` for ignorable
/// lines.
///
/// # Errors
///
/// Fails on an unparseable line or a merge rejection — the caller drops
/// the connection and resyncs.
fn apply_stream_event(
    event: &Value,
    jobs: &Arc<JobManager>,
) -> Result<Option<(u64, u64, bool)>, String> {
    let kind = match event.get("type") {
        Some(Value::String(s)) => s.as_str(),
        _ => return Err(format!("stream line without `type`: {event:?}")),
    };
    let num = |k: &str| -> Result<u64, String> {
        match event.get(k) {
            Some(Value::Number(n)) => n
                .as_u64()
                .ok_or_else(|| format!("stream field `{k}`: expected a non-negative integer")),
            other => Err(format!(
                "stream field `{k}`: expected a number, got {other:?}"
            )),
        }
    };
    match kind {
        "repl_snapshot" => {
            let epoch = num("epoch")?;
            let seq = num("seq")?;
            let fronts = event
                .get("fronts")
                .and_then(Value::as_object)
                .ok_or_else(|| "repl_snapshot without `fronts`".to_string())?;
            for (key, designs) in fronts {
                jobs.store().apply_replica(key, designs)?;
            }
            Ok(Some((epoch, seq, true)))
        }
        "repl_record" => {
            let epoch = num("epoch")?;
            let seq = num("seq")?;
            let key = match event.get("key") {
                Some(Value::String(k)) => k,
                _ => return Err("repl_record without `key`".to_string()),
            };
            let designs = event
                .get("designs")
                .ok_or_else(|| "repl_record without `designs`".to_string())?;
            jobs.store().apply_replica(key, designs)?;
            Ok(Some((epoch, seq + 1, false)))
        }
        _ => Ok(None),
    }
}

/// Reads one newline-terminated JSON value from a stream whose read
/// timeout is short (so `stop` stays responsive); `None` on EOF, a real
/// I/O error, or shutdown. Partial reads across timeouts are preserved.
fn read_stream_line(reader: &mut BufReader<TcpStream>, stop: &AtomicBool) -> Option<Value> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return None,
            Ok(_) => {
                if buf.ends_with(b"\n") {
                    let text = String::from_utf8(buf).ok()?;
                    if text.trim().is_empty() {
                        buf = Vec::new();
                        continue;
                    }
                    return serde_json::from_str(text.trim()).ok();
                }
                // Timed out mid-line with partial data appended: retry.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

/// The client-side fan-out layer: routes every request to the shard(s)
/// that own the touched keys, with bounded-retry read failover to
/// followers. One persistent [`Client`] per peer.
pub struct Router {
    topology: Topology,
    clients: Vec<Client>,
    rounds: usize,
    backoff: Duration,
}

impl Router {
    /// A router over a validated topology. `topology.shard_id` is unused
    /// for routing (a router is not a shard) — pass 0.
    ///
    /// # Errors
    ///
    /// Fails on an invalid topology.
    pub fn new(topology: Topology) -> Result<Router, String> {
        topology.validate()?;
        let clients = topology.peers.iter().map(Client::new).collect();
        Ok(Router {
            topology,
            clients,
            rounds: ROUTER_RETRY_ROUNDS,
            backoff: ROUTER_RETRY_BACKOFF,
        })
    }

    /// Overrides the failover retry schedule (mostly for tests/benches).
    #[must_use]
    pub fn with_retry(mut self, rounds: usize, backoff: Duration) -> Router {
        self.rounds = rounds.max(1);
        self.backoff = backoff;
        self
    }

    /// The topology this router fans out over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The persistent client for one shard.
    pub fn client(&self, shard: usize) -> &Client {
        &self.clients[shard]
    }

    /// Routes one read across `candidates` (first = preferred): transport
    /// failures try the next candidate with per-round backoff; a reply
    /// from any shard — success *or* rejection — ends the search.
    fn routed(&self, candidates: &[usize], request: &Value) -> Result<Value, String> {
        let mut last = String::new();
        for round in 0..self.rounds {
            if round > 0 {
                std::thread::sleep(self.backoff * (1 << (round - 1)));
            }
            for &shard in candidates {
                match self.clients[shard].try_request(request) {
                    Ok(v) => return Ok(v),
                    Err(ClientError::Rejected(e)) => return Err(e),
                    Err(ClientError::Transport(e)) => {
                        last = format!("shard {shard} ({}): {e}", self.topology.peers[shard]);
                    }
                }
            }
        }
        Err(format!(
            "no shard answered for candidates {candidates:?} after {} rounds (last: {last})",
            self.rounds
        ))
    }

    fn request_value(cmd: &str, mut fields: Vec<(String, Value)>) -> Value {
        let mut entries = vec![
            ("proto".to_string(), Value::String(PROTOCOL.to_string())),
            ("cmd".to_string(), Value::String(cmd.to_string())),
        ];
        entries.append(&mut fields);
        Value::Object(entries)
    }

    /// One read-tier query, routed to the owning shard with follower
    /// failover. Mirrors [`Client::query`].
    ///
    /// # Errors
    ///
    /// Fails when every candidate shard is unreachable, or with the
    /// server's rejection.
    pub fn query(
        &self,
        task: &str,
        backend: &str,
        n: u16,
        mode: &str,
        extra: Vec<(String, Value)>,
    ) -> Result<Value, String> {
        let key = key_of(task, backend, n);
        let mut fields = vec![
            ("task".to_string(), Value::String(task.to_string())),
            ("backend".to_string(), Value::String(backend.to_string())),
            (
                "n".to_string(),
                Value::Number(serde::Number::UInt(u64::from(n))),
            ),
            ("mode".to_string(), Value::String(mode.to_string())),
        ];
        fields.extend(extra);
        self.routed(
            &self.topology.read_candidates(&key),
            &Self::request_value("query", fields),
        )
    }

    /// A stored front, routed like [`Router::query`].
    ///
    /// # Errors
    ///
    /// See [`Router::query`].
    pub fn frontier(&self, task: &str, backend: &str, n: u16) -> Result<Value, String> {
        let key = key_of(task, backend, n);
        let fields = vec![
            ("task".to_string(), Value::String(task.to_string())),
            ("backend".to_string(), Value::String(backend.to_string())),
            (
                "n".to_string(),
                Value::Number(serde::Number::UInt(u64::from(n))),
            ),
        ];
        self.routed(
            &self.topology.read_candidates(&key),
            &Self::request_value("frontier", fields),
        )
    }

    /// Submits a job to the primary owning its key. Writes never fail
    /// over — a dead primary refuses writes for its keys until restart —
    /// but transport errors are retried against the same primary with
    /// backoff.
    ///
    /// # Errors
    ///
    /// Fails when the primary stays unreachable or rejects the spec.
    pub fn submit(&self, spec: &crate::jobs::JobSpec) -> Result<(u64, usize), String> {
        use serde::Serialize as _;
        let key = key_of(&spec.task, &spec.backend, spec.n);
        let primary = self.topology.primary_of(&key);
        let request = Self::request_value("submit", vec![("job".to_string(), spec.to_value())]);
        let response = self.routed(&[primary], &request)?;
        match response.get("id") {
            Some(Value::Number(n)) => n
                .as_u64()
                .map(|id| (id, primary))
                .ok_or_else(|| "non-integer id".to_string()),
            _ => Err("submit response lacks `id`".to_string()),
        }
    }

    /// Scatters a batch of query payloads by owning shard, gathers the
    /// per-shard answers, and reassembles them in input order. Each
    /// sub-batch is answered against one per-shard snapshot; the response
    /// carries `epochs` (shard → snapshot epoch) instead of a single
    /// `epoch`, because cross-shard consistency is per-shard only.
    ///
    /// # Errors
    ///
    /// Fails on an over-cap batch or when any touched shard (and its
    /// followers) is unreachable; per-query failures come back inline.
    pub fn query_batch(&self, queries: Vec<Value>) -> Result<Value, String> {
        if queries.len() > crate::query::MAX_BATCH {
            return Err(format!(
                "batch of {} exceeds the {} cap",
                queries.len(),
                crate::query::MAX_BATCH
            ));
        }
        // Group query indices by owning primary; queries too malformed to
        // route are answered inline without touching any shard.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut results: Vec<Value> = vec![Value::Null; queries.len()];
        for (i, q) in queries.iter().enumerate() {
            match batch_key_of(q) {
                Ok(key) => groups
                    .entry(self.topology.primary_of(&key))
                    .or_default()
                    .push(i),
                Err(e) => {
                    results[i] = Value::Object(vec![
                        ("ok".to_string(), Value::Bool(false)),
                        ("error".to_string(), Value::String(e)),
                    ]);
                }
            }
        }
        let mut epochs: Vec<(String, Value)> = Vec::new();
        // Scatter: pipeline every sub-batch's request onto its primary's
        // persistent connection *before* reading any response — the
        // shards work on their sub-batches concurrently, and the scatter
        // costs no per-call thread spawns (it used to burn a spawn plus
        // two context switches per shard per batch).
        let requests: BTreeMap<usize, Value> = groups
            .iter()
            .map(|(&primary, indices)| {
                let sub: Vec<Value> = indices.iter().map(|&i| queries[i].clone()).collect();
                let request = Self::request_value(
                    "query_batch",
                    vec![("queries".to_string(), Value::Array(sub))],
                );
                (primary, request)
            })
            .collect();
        let sent: Vec<(usize, Result<crate::client::Pending<'_>, ClientError>)> = requests
            .iter()
            .map(|(&primary, request)| (primary, self.clients[primary].send_request(request)))
            .collect();
        // Gather in shard order. Transport failures queue for the routed
        // fallback (primary + followers, with backoff), which must only
        // run after every pipelined response is drained: the fallback may
        // contact other shards, whose connections are locked until their
        // `Pending` resolves. Re-sending a read sub-batch is safe —
        // queries are idempotent.
        let mut fallback: Vec<usize> = Vec::new();
        let mut shard_results: Vec<(usize, Result<Value, String>)> = Vec::new();
        for (primary, outcome) in sent {
            match outcome.and_then(|pending| pending.recv()) {
                Ok(response) => shard_results.push((primary, Ok(response))),
                Err(ClientError::Rejected(e)) => shard_results.push((primary, Err(e))),
                Err(ClientError::Transport(_)) => fallback.push(primary),
            }
        }
        for primary in fallback {
            let candidates: Vec<usize> = {
                let mut c = vec![primary];
                c.extend(self.topology.followers_of(primary));
                c
            };
            shard_results.push((primary, self.routed(&candidates, &requests[&primary])));
        }
        for (primary, outcome) in shard_results {
            let response = outcome.map_err(|e| format!("shard {primary} sub-batch failed: {e}"))?;
            let answers = response
                .get("results")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("shard {primary} sub-batch response lacks `results`"))?;
            let indices = &groups[&primary];
            if answers.len() != indices.len() {
                return Err(format!(
                    "shard {primary} answered {} of {} sub-batch queries",
                    answers.len(),
                    indices.len()
                ));
            }
            for (&i, answer) in indices.iter().zip(answers) {
                results[i] = answer.clone();
            }
            epochs.push((
                primary.to_string(),
                response.get("epoch").cloned().unwrap_or(Value::Null),
            ));
        }
        Ok(Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("results".to_string(), Value::Array(results)),
            ("epochs".to_string(), Value::Object(epochs)),
        ]))
    }
}

/// The routing key of one batch-query payload.
///
/// # Errors
///
/// Fails when `task`/`backend`/`n` are missing or malformed — mirroring
/// the server-side rejection the payload would get.
fn batch_key_of(q: &Value) -> Result<String, String> {
    let task = crate::protocol::req_str(q, "task")?;
    let backend = crate::protocol::req_str(q, "backend")?;
    let n_raw = crate::protocol::req_u64(q, "n")?;
    let n = u16::try_from(n_raw).map_err(|_| format!("field `n`: width {n_raw} exceeds u16"))?;
    Ok(key_of(task, backend, n))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_spreads() {
        // Pinned values: the partition map is part of the wire contract —
        // clients and servers must agree across versions.
        let k1 = key_of("adder", "analytical", 8);
        assert_eq!(shard_of(&k1, 3), shard_of(&k1, 3));
        let mut counts = [0usize; 3];
        for n in 2..64u16 {
            for task in ["adder", "prefix-or", "incrementer"] {
                counts[shard_of(&key_of(task, "analytical", n), 3)] += 1;
            }
        }
        // 186 keys over 3 shards: every shard owns a healthy share.
        assert!(
            counts.iter().all(|&c| c > 30),
            "skewed partition: {counts:?}"
        );
    }

    #[test]
    fn topology_followers_and_sources_are_ring_consistent() {
        let t = Topology::new(1, vec!["a".into(), "b".into(), "c".into()], 1).unwrap();
        assert_eq!(t.followers_of(0), vec![1]);
        assert_eq!(t.followers_of(2), vec![0]);
        // Shard 1 follows exactly the primaries whose follower set
        // contains it.
        assert_eq!(t.replica_sources(), vec![0]);
        let t2 = Topology::new(0, vec!["a".into(), "b".into(), "c".into()], 2).unwrap();
        assert_eq!(t2.replica_sources(), vec![1, 2]);
    }

    #[test]
    fn topology_validation_is_loud() {
        assert!(Topology::new(0, vec![], 0).is_err());
        assert!(Topology::new(3, vec!["a".into()], 0).is_err());
        assert!(Topology::new(0, vec!["a".into(), "b".into()], 2).is_err());
        assert!(Topology::new(0, vec!["a".into(), "b".into()], 1).is_ok());
    }

    #[test]
    fn hub_resumes_by_offset_and_falls_back_to_snapshot() {
        let hub = ReplicationHub::new();
        hub.publish("k", Value::Array(vec![]));
        hub.publish("k", Value::Array(vec![]));
        // Matching epoch + covered offset: replay, no snapshot.
        let (snap, next, replay, _rx) = hub.subscribe(hub.epoch(), 1);
        assert!(!snap);
        assert_eq!(next, 2);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].seq, 1);
        // Epoch mismatch: snapshot.
        let (snap, _, replay, _rx2) = hub.subscribe(0, 1);
        assert!(snap);
        assert!(replay.is_empty());
    }

    #[test]
    fn hub_drops_slow_subscribers_instead_of_blocking() {
        let hub = ReplicationHub::new();
        let (_, _, _, rx) = hub.subscribe(hub.epoch(), 0);
        for _ in 0..(REPL_CHANNEL_CAP + 8) {
            hub.publish("k", Value::Array(vec![]));
        }
        let (_, subscribers) = hub.stats();
        assert_eq!(subscribers, 0, "full channel must drop the subscriber");
        // The receiver still drains what was delivered before the drop.
        assert_eq!(rx.try_iter().count(), REPL_CHANNEL_CAP);
    }
}
