//! Frontier-store contracts: restart survival (bit-identical reload
//! through WAL replay), cross-job merge dominance (a stored front never
//! regresses), key isolation (no task's results leak into another's
//! query), and the write-ahead-log lifecycle (torn tails, compaction,
//! idempotent replay after an interrupted compaction).

use prefix_graph::{structures, PrefixGraph};
use prefixrl_core::evaluator::{Evaluator, ObjectivePoint};
use prefixrl_core::task::{Adder, CircuitTask, PrefixOr, TaskEvaluator};
use prefixrl_serve::FrontierStore;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prefixrl-store-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Complete lines of a write-ahead log, with the preallocated zero tail
/// (which never contains a newline) stripped.
fn wal_lines(wal: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(wal).unwrap();
    let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
    complete.lines().map(str::to_string).collect()
}

/// A small design pool scored by the task's analytical oracle.
fn pool(task: impl CircuitTask + 'static, n: u16) -> Vec<(PrefixGraph, ObjectivePoint)> {
    let evaluator = TaskEvaluator::analytical(task);
    [
        PrefixGraph::ripple(n),
        structures::sklansky(n),
        structures::brent_kung(n),
        structures::kogge_stone(n),
        structures::han_carlson(n),
    ]
    .into_iter()
    .map(|g| {
        let p = evaluator.evaluate(&g);
        (g, p)
    })
    .collect()
}

#[test]
fn restart_returns_bit_identical_front() {
    let dir = temp_dir("restart");
    let path = dir.join("frontier.json");
    let before = {
        let store = FrontierStore::open(&path).unwrap();
        store
            .merge("adder", "analytical", 16, &pool(Adder, 16))
            .unwrap();
        store
            .merge("adder", "analytical", 8, &pool(Adder, 8))
            .unwrap();
        serde_json::to_string(&store.front_json("adder", "analytical", 16, true)).unwrap()
    };
    // "Kill" the server (drop the store) and reload from disk — with the
    // default threshold nothing compacted, so this reload is pure WAL
    // replay. The returned front must be bit-identical, graphs included.
    assert!(
        path.with_extension("wal").exists(),
        "merges must leave a write-ahead log"
    );
    let store = FrontierStore::open(&path).unwrap();
    let after = serde_json::to_string(&store.front_json("adder", "analytical", 16, true)).unwrap();
    assert_eq!(before, after, "reload must be bit-identical");
    assert_eq!(
        store.keys(),
        vec!["adder/analytical/16", "adder/analytical/8"]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_job_merges_never_regress_the_stored_front() {
    let store = FrontierStore::in_memory();
    store
        .merge("adder", "analytical", 16, &pool(Adder, 16))
        .unwrap();
    let stored = store.with_front("adder", "analytical", 16, |f| f.unwrap().points());

    // A second job's pool: one point dominating a stored one, one
    // dominated point, one duplicate.
    let better = ObjectivePoint {
        area: stored[0].area - 1.0,
        delay: stored[0].delay - 0.01,
    };
    let worse = ObjectivePoint {
        area: stored[0].area + 100.0,
        delay: stored[0].delay + 100.0,
    };
    let graph = PrefixGraph::ripple(16);
    let inserted = store
        .merge(
            "adder",
            "analytical",
            16,
            &[
                (graph.clone(), better),
                (graph.clone(), worse),
                (graph.clone(), stored[0]),
            ],
        )
        .unwrap();
    assert_eq!(inserted, 1, "only the dominating point may join");

    // Monotonicity: at every previously covered delay, the achievable
    // area must be no worse than before.
    store.with_front("adder", "analytical", 16, |merged| {
        let merged = merged.unwrap();
        for p in &stored {
            let now = merged.area_at_delay(p.delay).expect("coverage kept");
            assert!(
                now <= p.area + 1e-12,
                "front regressed at delay {}: {} > {}",
                p.delay,
                now,
                p.area
            );
        }
        assert!(!merged.dominates_point(&better), "new optimum must be kept");
        assert!(merged.dominates_point(&worse), "dominated point rejected");
    });
}

#[test]
fn keys_isolate_tasks_backends_and_widths() {
    let store = FrontierStore::in_memory();
    store
        .merge("adder", "analytical", 8, &pool(Adder, 8))
        .unwrap();
    // Same graphs, different task: must land under its own key only.
    store
        .merge("prefix-or", "analytical", 8, &pool(PrefixOr, 8))
        .unwrap();

    let known = |t: &str, b: &str, n: u16| store.with_front(t, b, n, |f| f.is_some());
    assert!(known("adder", "analytical", 8));
    assert!(known("prefix-or", "analytical", 8));
    // No leakage into other keys along any axis.
    assert!(!known("adder", "synthesis", 8), "backend axis");
    assert!(!known("adder", "analytical", 16), "width axis");
    assert!(!known("incrementer", "analytical", 8), "task axis");
    // And an adder query never reflects the prefix-or merge: both merged
    // the same graphs, so equality of fronts would be possible only via
    // sharing — check the counts are independent per key.
    let adder_len = store.with_front("adder", "analytical", 8, |f| f.unwrap().len());
    let or_len = store.with_front("prefix-or", "analytical", 8, |f| f.unwrap().len());
    assert!(adder_len > 0 && or_len > 0);
}

#[test]
fn concurrent_merges_on_one_key_are_safe() {
    let dir = temp_dir("concurrent");
    let path = dir.join("frontier.json");
    let store = FrontierStore::open(&path).unwrap();
    let designs = pool(Adder, 12);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10 {
                    store.merge("adder", "analytical", 12, &designs).unwrap();
                }
            });
        }
    });
    // Identical pools merged repeatedly: the front equals one merge's.
    let reference = FrontierStore::in_memory();
    reference
        .merge("adder", "analytical", 12, &designs)
        .unwrap();
    let expected = reference.with_front("adder", "analytical", 12, |f| f.unwrap().points());
    let actual = store.with_front("adder", "analytical", 12, |f| f.unwrap().points());
    assert_eq!(actual, expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_key_is_distinguishable_from_empty_front() {
    let store = FrontierStore::in_memory();
    // Never merged: `null` on the wire.
    assert!(matches!(
        store.front_json("adder", "analytical", 8, false),
        serde_json::Value::Null
    ));
    // Merged but nothing joined (non-finite points are rejected): the key
    // exists with an empty front — `[]`, not `null`.
    let inserted = store
        .merge(
            "adder",
            "analytical",
            8,
            &[(
                PrefixGraph::ripple(8),
                ObjectivePoint {
                    area: f64::NAN,
                    delay: 1.0,
                },
            )],
        )
        .unwrap();
    assert_eq!(inserted, 0);
    match store.front_json("adder", "analytical", 8, false) {
        serde_json::Value::Array(points) => assert!(points.is_empty()),
        other => panic!("expected [], got {other:?}"),
    }
}

#[test]
fn aliasing_names_are_rejected() {
    let store = FrontierStore::in_memory();
    let designs = pool(Adder, 8);
    // `task="a/b", backend="c"` and `task="a", backend="b/c"` would both
    // produce the composite key `a/b/c/8`; the store must refuse both.
    for (task, backend) in [
        ("a/b", "c"),
        ("a", "b/c"),
        ("", "analytical"),
        ("adder", ""),
    ] {
        let err = store.merge(task, backend, 8, &designs).unwrap_err();
        assert!(
            err.contains("alias") || err.contains("empty"),
            "({task:?}, {backend:?}): unexpected error {err:?}"
        );
    }
    assert!(store.keys().is_empty(), "nothing may be merged");
}

#[test]
fn torn_wal_tail_is_discarded_on_open() {
    let dir = temp_dir("torn");
    let path = dir.join("frontier.json");
    let expected = {
        let store = FrontierStore::open(&path).unwrap();
        store
            .merge("adder", "analytical", 8, &pool(Adder, 8))
            .unwrap();
        serde_json::to_string(&store.front_json("adder", "analytical", 8, true)).unwrap()
    };
    // Simulate a crash mid-append: garbage without a trailing newline.
    let wal = path.with_extension("wal");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(br#"{"key":"adder/analytical/8","desig"#)
            .unwrap();
    }
    let store = FrontierStore::open(&path).unwrap();
    let after = serde_json::to_string(&store.front_json("adder", "analytical", 8, true)).unwrap();
    assert_eq!(expected, after, "torn tail must not corrupt the store");
    // The repaired log stays appendable: further merges and reloads work.
    store
        .merge("adder", "analytical", 4, &pool(Adder, 4))
        .unwrap();
    let reloaded = FrontierStore::open(&path).unwrap();
    assert_eq!(
        reloaded.keys(),
        vec!["adder/analytical/4", "adder/analytical/8"]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_truncates_the_log_and_preserves_answers() {
    let dir = temp_dir("compact");
    let path = dir.join("frontier.json");
    let wal = path.with_extension("wal");
    let store = FrontierStore::open_with(&path, 3).unwrap();
    let designs = pool(Adder, 8);
    // Three record-producing merges trip the threshold. Each pool is a
    // fresh key so every merge appends a record.
    for n in [4u16, 6, 8] {
        store
            .merge("adder", "analytical", n, &pool(Adder, n))
            .unwrap();
    }
    let stats = store.stats_json();
    assert_eq!(
        stats.get("compactions").and_then(|v| match v {
            serde_json::Value::Number(n) => n.as_u64(),
            _ => None,
        }),
        Some(1),
        "threshold of 3 must have compacted once: {stats:?}"
    );
    assert_eq!(
        wal_lines(&wal).len(),
        1,
        "compaction must truncate the log to its header"
    );
    assert!(
        std::fs::read_to_string(&path)
            .unwrap()
            .contains("adder/analytical/8"),
        "compacted snapshot must hold the merged fronts"
    );
    // A post-compaction merge appends to the truncated log.
    store
        .merge("adder", "analytical", 10, &designs[..1])
        .unwrap();
    assert_eq!(wal_lines(&wal).len(), 2);
    // Reload answers identically.
    let before = serde_json::to_string(&store.front_json("adder", "analytical", 8, true)).unwrap();
    drop(store);
    let reloaded = FrontierStore::open_with(&path, 3).unwrap();
    let after =
        serde_json::to_string(&reloaded.front_json("adder", "analytical", 8, true)).unwrap();
    assert_eq!(before, after);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_compaction_replays_idempotently() {
    let dir = temp_dir("idempotent");
    let path = dir.join("frontier.json");
    let wal = path.with_extension("wal");
    let before = {
        let store = FrontierStore::open(&path).unwrap();
        store
            .merge("adder", "analytical", 8, &pool(Adder, 8))
            .unwrap();
        serde_json::to_string(&store.front_json("adder", "analytical", 8, true)).unwrap()
    };
    // Simulate a crash *between* compaction's snapshot write and its log
    // truncation: save the pre-compaction log, let an open with
    // threshold 1 compact (snapshot written, log truncated), then put the
    // old log back — snapshot AND log now both carry the same merge.
    let pre_compaction_log = std::fs::read(&wal).unwrap();
    {
        let _store = FrontierStore::open_with(&path, 1).unwrap();
        assert!(
            std::fs::read_to_string(&path)
                .unwrap()
                .contains("adder/analytical/8"),
            "threshold-1 open must compact the replayed record"
        );
    }
    std::fs::write(&wal, &pre_compaction_log).unwrap();
    // Replaying snapshot + already-absorbed records must converge to the
    // same front, bit for bit.
    let reloaded = FrontierStore::open(&path).unwrap();
    let after =
        serde_json::to_string(&reloaded.front_json("adder", "analytical", 8, true)).unwrap();
    assert_eq!(before, after, "idempotent replay must not duplicate points");
    std::fs::remove_dir_all(&dir).ok();
}
