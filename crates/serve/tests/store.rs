//! Frontier-store contracts: restart survival (bit-identical reload),
//! cross-job merge dominance (a stored front never regresses), and key
//! isolation (no task's results leak into another's query).

use prefix_graph::{structures, PrefixGraph};
use prefixrl_core::evaluator::{Evaluator, ObjectivePoint};
use prefixrl_core::task::{Adder, CircuitTask, PrefixOr, TaskEvaluator};
use prefixrl_serve::FrontierStore;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prefixrl-store-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small design pool scored by the task's analytical oracle.
fn pool(task: impl CircuitTask + 'static, n: u16) -> Vec<(PrefixGraph, ObjectivePoint)> {
    let evaluator = TaskEvaluator::analytical(task);
    [
        PrefixGraph::ripple(n),
        structures::sklansky(n),
        structures::brent_kung(n),
        structures::kogge_stone(n),
        structures::han_carlson(n),
    ]
    .into_iter()
    .map(|g| {
        let p = evaluator.evaluate(&g);
        (g, p)
    })
    .collect()
}

#[test]
fn restart_returns_bit_identical_front() {
    let dir = temp_dir("restart");
    let path = dir.join("frontier.json");
    let before = {
        let store = FrontierStore::open(&path).unwrap();
        store
            .merge("adder", "analytical", 16, &pool(Adder, 16))
            .unwrap();
        store
            .merge("adder", "analytical", 8, &pool(Adder, 8))
            .unwrap();
        serde_json::to_string(&store.front_json("adder", "analytical", 16, true)).unwrap()
    };
    // "Kill" the server (drop the store) and reload from disk: the
    // returned front must be bit-identical, graphs included.
    let store = FrontierStore::open(&path).unwrap();
    let after = serde_json::to_string(&store.front_json("adder", "analytical", 16, true)).unwrap();
    assert_eq!(before, after, "reload must be bit-identical");
    assert_eq!(
        store.keys(),
        vec!["adder/analytical/16", "adder/analytical/8"]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_job_merges_never_regress_the_stored_front() {
    let store = FrontierStore::in_memory();
    store
        .merge("adder", "analytical", 16, &pool(Adder, 16))
        .unwrap();
    let first = store.front("adder", "analytical", 16).unwrap();

    // A second job's pool: one point dominating a stored one, one
    // dominated point, one duplicate.
    let stored = first.points();
    let better = ObjectivePoint {
        area: stored[0].area - 1.0,
        delay: stored[0].delay - 0.01,
    };
    let worse = ObjectivePoint {
        area: stored[0].area + 100.0,
        delay: stored[0].delay + 100.0,
    };
    let graph = PrefixGraph::ripple(16);
    let inserted = store
        .merge(
            "adder",
            "analytical",
            16,
            &[
                (graph.clone(), better),
                (graph.clone(), worse),
                (graph.clone(), stored[0]),
            ],
        )
        .unwrap();
    assert_eq!(inserted, 1, "only the dominating point may join");

    // Monotonicity: at every previously covered delay, the achievable
    // area must be no worse than before.
    let merged = store.front("adder", "analytical", 16).unwrap();
    for p in &stored {
        let now = merged.area_at_delay(p.delay).expect("coverage kept");
        assert!(
            now <= p.area + 1e-12,
            "front regressed at delay {}: {} > {}",
            p.delay,
            now,
            p.area
        );
    }
    assert!(!merged.dominates_point(&better), "new optimum must be kept");
    assert!(merged.dominates_point(&worse), "dominated point rejected");
}

#[test]
fn keys_isolate_tasks_backends_and_widths() {
    let store = FrontierStore::in_memory();
    store
        .merge("adder", "analytical", 8, &pool(Adder, 8))
        .unwrap();
    // Same graphs, different task: must land under its own key only.
    store
        .merge("prefix-or", "analytical", 8, &pool(PrefixOr, 8))
        .unwrap();

    assert!(store.front("adder", "analytical", 8).is_some());
    assert!(store.front("prefix-or", "analytical", 8).is_some());
    // No leakage into other keys along any axis.
    assert!(
        store.front("adder", "synthesis", 8).is_none(),
        "backend axis"
    );
    assert!(
        store.front("adder", "analytical", 16).is_none(),
        "width axis"
    );
    assert!(
        store.front("incrementer", "analytical", 8).is_none(),
        "task axis"
    );
    // And an adder query never reflects the prefix-or merge: both merged
    // the same graphs, so equality of fronts would be possible only via
    // sharing — check the counts are independent per key.
    let adder = store.front("adder", "analytical", 8).unwrap();
    let or = store.front("prefix-or", "analytical", 8).unwrap();
    assert!(!adder.is_empty() && !or.is_empty());
}

#[test]
fn concurrent_merges_on_one_key_are_safe() {
    let dir = temp_dir("concurrent");
    let path = dir.join("frontier.json");
    let store = FrontierStore::open(&path).unwrap();
    let designs = pool(Adder, 12);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10 {
                    store.merge("adder", "analytical", 12, &designs).unwrap();
                }
            });
        }
    });
    let front = store.front("adder", "analytical", 12).unwrap();
    // Identical pools merged repeatedly: the front equals one merge's.
    let reference = FrontierStore::in_memory();
    reference
        .merge("adder", "analytical", 12, &designs)
        .unwrap();
    assert_eq!(
        front.points(),
        reference.front("adder", "analytical", 12).unwrap().points()
    );
    std::fs::remove_dir_all(&dir).ok();
}
