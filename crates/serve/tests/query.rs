//! Query-tier contracts (DESIGN.md §15): `best_at_delay` boundary hits,
//! `best_at_weight` ties, `range` windows, missing-key vs empty-front
//! distinction, name-aliasing rejection, and a concurrent reader/writer
//! stress test asserting readers always observe a complete epoch — never
//! a torn front.

use prefix_graph::PrefixGraph;
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_serve::FrontierStore;
use serde_json::Value;

/// Merges a synthetic strictly-tradeoff front: point `i` of `count` has
/// `delay = i + 1`, `area = count - i` (all mutually non-dominated).
fn merge_tradeoff(store: &FrontierStore, n: u16, count: usize) {
    let designs: Vec<(PrefixGraph, ObjectivePoint)> = (0..count)
        .map(|i| {
            (
                PrefixGraph::ripple(n),
                ObjectivePoint {
                    area: (count - i) as f64,
                    delay: (i + 1) as f64,
                },
            )
        })
        .collect();
    store.merge("adder", "analytical", n, &designs).unwrap();
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Number(n) => n.as_f64(),
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn best_at_delay_boundaries() {
    let store = FrontierStore::in_memory();
    merge_tradeoff(&store, 8, 3); // (area, delay): (3,1) (2,2) (1,3)
    let snapshot = store.snapshot();
    let view = snapshot.front("adder", "analytical", 8).unwrap();

    // Exact delay of a stored point: that point, met.
    let exact = view.best_at_delay(2.0).unwrap();
    assert!(exact.met);
    assert_eq!(view.points()[exact.index].delay, 2.0);
    assert_eq!(view.points()[exact.index].area, 2.0);

    // Between points: the slower-of-the-meeting (minimum area), met.
    let between = view.best_at_delay(2.5).unwrap();
    assert!(between.met);
    assert_eq!(view.points()[between.index].delay, 2.0);

    // Above the maximum: the global minimum-area point, met.
    let above = view.best_at_delay(100.0).unwrap();
    assert!(above.met);
    assert_eq!(view.points()[above.index].area, 1.0);

    // Below the minimum: nothing meets — fastest point, met = false.
    let below = view.best_at_delay(0.5).unwrap();
    assert!(!below.met);
    assert_eq!(view.points()[below.index].delay, 1.0);
}

#[test]
fn best_at_weight_extremes_and_ties() {
    let store = FrontierStore::in_memory();
    merge_tradeoff(&store, 8, 3);
    let snapshot = store.snapshot();
    let view = snapshot.front("adder", "analytical", 8).unwrap();

    // w = 1: pure area minimization → the slowest/smallest point.
    let smallest = view.best_at_weight(1.0).unwrap();
    assert_eq!(view.points()[smallest].area, 1.0);
    // w = 0: pure delay minimization → the fastest point.
    let fastest = view.best_at_weight(0.0).unwrap();
    assert_eq!(view.points()[fastest].delay, 1.0);
    // This front is symmetric after normalization, so at w = 0.5 every
    // point scores identically — the tie must break toward lower delay.
    let tied = view.best_at_weight(0.5).unwrap();
    assert_eq!(view.points()[tied].delay, 1.0, "ties break to lower delay");
}

#[test]
fn range_windows() {
    let store = FrontierStore::in_memory();
    merge_tradeoff(&store, 8, 4); // delays 1, 2, 3, 4
    let snapshot = store.snapshot();
    let view = snapshot.front("adder", "analytical", 8).unwrap();

    assert_eq!(view.range(2.0, 3.0), 1..3, "inclusive both ends");
    assert_eq!(view.range(0.0, 100.0), 0..4, "window covering everything");
    assert_eq!(view.range(2.5, 2.75).len(), 0, "gap between points");
    assert_eq!(view.range(3.0, 2.0).len(), 0, "inverted window is empty");
    assert_eq!(view.range(100.0, 200.0).len(), 0, "past the maximum");
}

#[test]
fn wire_query_distinguishes_missing_key_from_empty_front() {
    let store = FrontierStore::in_memory();
    merge_tradeoff(&store, 8, 3);
    let snapshot = store.snapshot();

    // Known key, in-range query.
    let hit = prefixrl_serve::query::answer_query(
        &snapshot,
        &serde_json::json!({
            "task": "adder", "backend": "analytical", "n": 8,
            "mode": "best_at_delay", "delay": 2.0,
        }),
    )
    .unwrap();
    assert_eq!(hit.get("known"), Some(&Value::Bool(true)));
    assert_eq!(hit.get("found"), Some(&Value::Bool(true)));
    assert_eq!(hit.get("met"), Some(&Value::Bool(true)));
    assert_eq!(num(hit.get("point").unwrap().get("area").unwrap()), 2.0);

    // Unknown key: known = false, found = false, point = null.
    let miss = prefixrl_serve::query::answer_query(
        &snapshot,
        &serde_json::json!({
            "task": "adder", "backend": "analytical", "n": 64,
            "mode": "best_at_delay", "delay": 2.0,
        }),
    )
    .unwrap();
    assert_eq!(miss.get("known"), Some(&Value::Bool(false)));
    assert_eq!(miss.get("found"), Some(&Value::Bool(false)));
    assert_eq!(miss.get("point"), Some(&Value::Null));

    // Range on an unknown key: empty, not an error.
    let range_miss = prefixrl_serve::query::answer_query(
        &snapshot,
        &serde_json::json!({
            "task": "adder", "backend": "analytical", "n": 64,
            "mode": "range", "delay_lo": 0.0, "delay_hi": 9.0,
        }),
    )
    .unwrap();
    assert_eq!(range_miss.get("known"), Some(&Value::Bool(false)));
    assert_eq!(num(range_miss.get("count").unwrap()), 0.0);
}

#[test]
fn wire_query_validates_inputs() {
    let snapshot = FrontierStore::in_memory().snapshot();
    let query = |fields: Value| prefixrl_serve::query::answer_query(&snapshot, &fields);

    // Aliasing names are rejected at query time too.
    let err = query(serde_json::json!({
        "task": "a/b", "backend": "c", "n": 8,
        "mode": "best_at_delay", "delay": 1.0,
    }))
    .unwrap_err();
    assert!(err.contains("alias"), "{err}");

    // Weight outside [0, 1].
    let err = query(serde_json::json!({
        "task": "adder", "backend": "analytical", "n": 8,
        "mode": "best_at_weight", "w": 1.5,
    }))
    .unwrap_err();
    assert!(err.contains("[0, 1]"), "{err}");

    // Unknown mode.
    let err = query(serde_json::json!({
        "task": "adder", "backend": "analytical", "n": 8,
        "mode": "nearest",
    }))
    .unwrap_err();
    assert!(err.contains("unknown query mode"), "{err}");

    // Out-of-range width.
    let err = query(serde_json::json!({
        "task": "adder", "backend": "analytical", "n": 70000,
        "mode": "best_at_delay", "delay": 1.0,
    }))
    .unwrap_err();
    assert!(err.contains("u16"), "{err}");
}

/// The epoch-completeness stress test: one writer publishes fronts whose
/// contents are a pure function of how many merges happened; concurrent
/// readers grab snapshots and assert every observed front exactly matches
/// the front its epoch implies — a torn front (some points of merge k,
/// some of merge k+1) can never satisfy that.
#[test]
fn readers_always_see_a_complete_epoch() {
    let store = std::sync::Arc::new(FrontierStore::in_memory());
    const MERGES: u64 = 200;

    // Merge m inserts the single point (area = MERGES - m, delay = m + 1):
    // all points are mutually non-dominated, so after merge m the front is
    // exactly merges 0..=m — and epoch m+1 implies exactly m+1 points
    // whose delays are 1..=m+1 and whose areas pair up as MERGES - i.
    let writer = {
        let store = std::sync::Arc::clone(&store);
        std::thread::spawn(move || {
            for m in 0..MERGES {
                store
                    .merge(
                        "adder",
                        "analytical",
                        8,
                        &[(
                            PrefixGraph::ripple(8),
                            ObjectivePoint {
                                area: (MERGES - m) as f64,
                                delay: (m + 1) as f64,
                            },
                        )],
                    )
                    .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                while observed < MERGES {
                    let snapshot = store.snapshot();
                    let epoch = snapshot.epoch();
                    assert!(epoch >= last_epoch, "epochs must be monotone");
                    last_epoch = epoch;
                    observed = observed.max(epoch);
                    let Some(view) = snapshot.front("adder", "analytical", 8) else {
                        assert_eq!(epoch, 0, "a published merge implies the key");
                        continue;
                    };
                    // Epoch k ⇒ exactly the first k merges, in delay order.
                    assert_eq!(view.len() as u64, epoch, "torn front at epoch {epoch}");
                    for (i, p) in view.points().iter().enumerate() {
                        assert_eq!(p.delay, (i + 1) as f64);
                        assert_eq!(p.area, (MERGES - i as u64) as f64);
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(store.epoch(), MERGES);
}
