//! Multi-node cluster contracts over real TCP: WAL-shipping replication
//! (followers converge to bit-identical fronts, including across
//! follower *and* primary restarts with epoch change), router read
//! failover to followers in under a second with zero failed queries, and
//! write-side ownership enforcement (submits never fail over).

use prefix_graph::{structures, PrefixGraph};
use prefixrl_core::evaluator::{Evaluator, ObjectivePoint};
use prefixrl_core::task::{Adder, TaskEvaluator};
use prefixrl_serve::cluster::shard_of;
use prefixrl_serve::store::key_of;
use prefixrl_serve::{Client, JobSpec, Router, ServeConfig, Server, ServerHandle, Topology};
use serde_json::Value;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prefixrl-cluster-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves `k` distinct ephemeral ports. The listeners are dropped
/// before the servers bind them — a raced rebind would fail loudly, and
/// the server's `SO_REUSEADDR` bind makes restarts on the same port safe.
fn reserve_ports(k: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..k)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

fn shard_config(
    shard_id: usize,
    peers: &[String],
    replicas: usize,
    state_dir: Option<PathBuf>,
) -> ServeConfig {
    ServeConfig {
        addr: peers[shard_id].clone(),
        workers: 1,
        state_dir,
        cluster: Some(Topology::new(shard_id, peers.to_vec(), replicas).unwrap()),
        ..ServeConfig::default()
    }
}

/// The widest pool of scored adder designs the tests merge in slices, so
/// successive merges keep growing the stored front.
fn designs(n: u16) -> Vec<(PrefixGraph, ObjectivePoint)> {
    let evaluator = TaskEvaluator::analytical(Adder);
    [
        PrefixGraph::ripple(n),
        structures::sklansky(n),
        structures::brent_kung(n),
        structures::kogge_stone(n),
        structures::han_carlson(n),
    ]
    .into_iter()
    .map(|g| {
        let p = evaluator.evaluate(&g);
        (g, p)
    })
    .collect()
}

/// A width in `4..=64` whose `adder/analytical/<n>` key is owned by
/// `shard` in an `num_shards`-way split.
fn width_owned_by(shard: usize, num_shards: usize) -> u16 {
    (4..=64)
        .find(|&n| shard_of(&key_of("adder", "analytical", n), num_shards) == shard)
        .expect("some width in 4..=64 hashes to every shard")
}

/// One shard's stored front for a width, graphs included, as the exact
/// JSON string — the bit-identical comparison unit.
fn front_string(handle: &ServerHandle, n: u16) -> String {
    serde_json::to_string(
        &handle
            .jobs()
            .store()
            .front_json("adder", "analytical", n, true),
    )
    .unwrap()
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timeout waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_ready(addr: &str) {
    Client::new(addr.to_string())
        .wait_until_ready(Duration::from_secs(10))
        .unwrap();
}

#[test]
fn replication_converges_bit_identically_across_restarts() {
    let dirs = [temp_dir("repl-s0"), temp_dir("repl-s1")];
    let peers = reserve_ports(2);
    let n = width_owned_by(0, 2);
    let pool = designs(n);

    let spawn_primary =
        || Server::spawn(shard_config(0, &peers, 1, Some(dirs[0].clone()))).unwrap();
    let spawn_follower =
        || Server::spawn(shard_config(1, &peers, 1, Some(dirs[1].clone()))).unwrap();
    let mut primary = spawn_primary();
    let mut follower = Some(spawn_follower());
    wait_ready(&peers[0]);
    wait_ready(&peers[1]);

    // Live shipping: a merge on the primary appears on the follower.
    primary
        .jobs()
        .store()
        .merge("adder", "analytical", n, &pool[0..2])
        .unwrap();
    let want = front_string(&primary, n);
    assert_ne!(want, "null", "primary merge must store a front");
    wait_until("initial replication", Duration::from_secs(10), || {
        front_string(follower.as_ref().unwrap(), n) == want
    });

    // Interleaved restarts: each round merges one more slice of the pool
    // into the primary; rounds alternate restarting the follower (cursor
    // resume over the same epoch) and the primary (epoch change, so the
    // follower must snapshot-resync). Every round must re-converge to a
    // bit-identical front.
    for round in 0..3usize {
        if round % 2 == 0 {
            follower.take().unwrap().shutdown().unwrap();
        } else {
            primary.shutdown().unwrap();
            primary = spawn_primary();
            wait_ready(&peers[0]);
        }
        let upto = (3 + round).min(pool.len());
        primary
            .jobs()
            .store()
            .merge("adder", "analytical", n, &pool[0..upto])
            .unwrap();
        if round % 2 == 0 {
            follower = Some(spawn_follower());
            wait_ready(&peers[1]);
        }
        let want = front_string(&primary, n);
        wait_until("post-restart convergence", Duration::from_secs(10), || {
            front_string(follower.as_ref().unwrap(), n) == want
        });
    }

    // The replicated key is durable on the follower's own disk: reload
    // its state dir cold and compare byte-for-byte again.
    let want = front_string(&primary, n);
    follower.take().unwrap().shutdown().unwrap();
    let store = prefixrl_serve::FrontierStore::open(&dirs[1].join("frontier.json")).unwrap();
    let cold = serde_json::to_string(&store.front_json("adder", "analytical", n, true)).unwrap();
    assert_eq!(
        cold, want,
        "follower's persisted front must match the primary's"
    );

    primary.shutdown().unwrap();
    for dir in dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn router_fails_reads_over_to_followers_within_a_second() {
    let peers = reserve_ports(3);
    let mut handles: Vec<ServerHandle> = (0..3)
        .map(|i| Server::spawn(shard_config(i, &peers, 1, None)).unwrap())
        .collect();
    for addr in &peers {
        wait_ready(addr);
    }

    // One owned key per shard, merged at its primary.
    let widths: Vec<u16> = (0..3).map(|s| width_owned_by(s, 3)).collect();
    for (shard, &n) in widths.iter().enumerate() {
        handles[shard]
            .jobs()
            .store()
            .merge("adder", "analytical", n, &designs(n))
            .unwrap();
    }

    let router = Router::new(Topology::new(0, peers.clone(), 1).unwrap()).unwrap();
    let found = |response: &Value| {
        response.get("result").and_then(|r| r.get("found")) == Some(&Value::Bool(true))
    };
    let at_delay = || {
        vec![(
            "delay".to_string(),
            Value::Number(serde_json::Number::Float(1e9)),
        )]
    };
    for &n in &widths {
        let response = router
            .query("adder", "analytical", n, "best_at_delay", at_delay())
            .unwrap();
        assert!(
            found(&response),
            "routed query missed for n={n}: {response:?}"
        );
    }

    // Wait for the victim's key to be replicated before killing it.
    let victim = 1usize;
    let follower = 2usize; // ring: shard 1's follower is shard 2
    let n = widths[victim];
    let want = front_string(&handles[victim], n);
    wait_until("victim key replicated", Duration::from_secs(10), || {
        front_string(&handles[follower], n) == want
    });
    handles.remove(victim).shutdown().unwrap();

    // Every read of the dead shard's key must still answer — served by
    // the follower — and the first failover must land in under a second.
    let t0 = Instant::now();
    let first = router
        .query("adder", "analytical", n, "best_at_delay", at_delay())
        .unwrap();
    let elapsed = t0.elapsed();
    assert!(found(&first), "failover query missed: {first:?}");
    assert!(
        elapsed < Duration::from_secs(1),
        "failover took {elapsed:?} (must be < 1s)"
    );
    for _ in 0..20 {
        let response = router
            .query("adder", "analytical", n, "best_at_delay", at_delay())
            .unwrap();
        assert!(
            found(&response),
            "query failed after failover: {response:?}"
        );
    }
    // The follower serves the bit-identical front.
    let fr = router.frontier("adder", "analytical", n).unwrap();
    let want_count = serde_json::from_str::<Value>(&want)
        .unwrap()
        .as_array()
        .map(<[Value]>::len)
        .unwrap() as u64;
    assert_eq!(
        fr.get("count"),
        Some(&Value::Number(serde_json::Number::UInt(want_count))),
        "follower front diverged"
    );

    // A scatter/gather batch touching all three shards reassembles in
    // input order, with the dead shard's sub-batch answered by its
    // follower.
    let batch: Vec<Value> = widths
        .iter()
        .map(|&n| {
            serde_json::json!({
                "task": "adder", "backend": "analytical", "n": n,
                "mode": "best_at_delay", "delay": 1e9,
            })
        })
        .collect();
    let gathered = router.query_batch(batch).unwrap();
    let results = gathered.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    for (i, result) in results.iter().enumerate() {
        assert_eq!(
            result.get("found"),
            Some(&Value::Bool(true)),
            "batch result {i} missed: {result:?}"
        );
    }

    for handle in handles {
        handle.shutdown().unwrap();
    }
}

#[test]
fn submits_are_ownership_checked_and_routed_to_the_primary() {
    let peers = reserve_ports(2);
    let handles: Vec<ServerHandle> = (0..2)
        .map(|i| Server::spawn(shard_config(i, &peers, 1, None)).unwrap())
        .collect();
    for addr in &peers {
        wait_ready(addr);
    }

    let n = width_owned_by(0, 2);
    let spec = JobSpec {
        task: "adder".to_string(),
        backend: "analytical".to_string(),
        n,
        weights: vec![0.3, 0.7],
        steps: 60,
        seed: 0,
    };

    // The wrong shard refuses the write and names the owner.
    let err = Client::new(peers[1].clone()).submit(&spec).unwrap_err();
    assert!(err.contains("wrong shard"), "{err}");
    assert!(err.contains("shard 0"), "{err}");

    // The router lands it on the primary, the job completes, and the
    // resulting merge replicates to the follower.
    let router = Router::new(Topology::new(0, peers.clone(), 1).unwrap()).unwrap();
    let (id, shard) = router.submit(&spec).unwrap();
    assert_eq!(shard, 0);
    Client::new(peers[0].clone())
        .wait_for_phase(id, &["done"], Duration::from_secs(120))
        .unwrap();
    let want = front_string(&handles[0], n);
    assert_ne!(want, "null", "finished job must store a front");
    wait_until("job merge replicated", Duration::from_secs(10), || {
        front_string(&handles[1], n) == want
    });

    // The cluster verb reports topology and resolves key owners.
    let info = Client::new(peers[0].clone())
        .request(&serde_json::json!({
            "proto": "prefixrl.serve.v1",
            "cmd": "cluster",
            "key": key_of("adder", "analytical", n),
        }))
        .unwrap();
    assert_eq!(
        info.get("owner"),
        Some(&Value::Number(serde_json::Number::UInt(0)))
    );
    assert_eq!(
        info.get("owner_addr"),
        Some(&Value::String(peers[0].clone()))
    );

    for handle in handles {
        handle.shutdown().unwrap();
    }
}
