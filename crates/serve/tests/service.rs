//! End-to-end service tests over real TCP: job lifecycle across three
//! concurrent `(task, backend)` keys on one shared eval stack, mid-run
//! cancellation within one event tick, protocol validation, and
//! queue/frontier survival across a server restart.

use prefixrl_serve::{Client, JobSpec, ServeConfig, Server};
use serde_json::Value;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prefixrl-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(workers: usize, state_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        state_dir,
        ..ServeConfig::default()
    }
}

fn spec(task: &str, steps: u64) -> JobSpec {
    JobSpec {
        task: task.to_string(),
        backend: "analytical".to_string(),
        n: 8,
        weights: vec![0.3, 0.7],
        steps,
        seed: 0,
    }
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Number(n) => n.as_f64(),
        other => panic!("expected a number, got {other:?}"),
    }
}

fn phase(snapshot: &Value) -> &str {
    match snapshot.get("phase") {
        Some(Value::String(p)) => p,
        other => panic!("snapshot without phase: {other:?}"),
    }
}

fn history(snapshot: &Value) -> Vec<String> {
    snapshot
        .get("history")
        .and_then(Value::as_array)
        .expect("history array")
        .iter()
        .map(|v| match v {
            Value::String(s) => s.clone(),
            other => panic!("non-string history entry {other:?}"),
        })
        .collect()
}

#[test]
fn three_concurrent_jobs_share_one_stack_and_reach_done() {
    let handle = Server::spawn(config(3, None)).unwrap();
    let client = Client::new(handle.addr().to_string());
    client.wait_until_ready(Duration::from_secs(10)).unwrap();

    // Three different (task, backend) keys, enough steps that they
    // overlap while running.
    let ids: Vec<u64> = ["adder", "prefix-or", "incrementer"]
        .iter()
        .map(|t| client.submit(&spec(t, 400)).unwrap())
        .collect();

    // With three workers, all three must be observably running at once.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let running = ids
            .iter()
            .filter(|&&id| phase(&client.status(id, 0).unwrap()) == "running")
            .count();
        let done = ids
            .iter()
            .filter(|&&id| phase(&client.status(id, 0).unwrap()) == "done")
            .count();
        if running == 3 {
            break;
        }
        assert!(
            done < 3 && std::time::Instant::now() < deadline,
            "never saw 3 jobs running concurrently (running={running}, done={done})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    for id in &ids {
        let snapshot = client
            .wait_for_phase(*id, &["done"], Duration::from_secs(120))
            .unwrap();
        assert_eq!(history(&snapshot), vec!["queued", "running", "done"]);
        assert!(
            num(snapshot.get("events_seen").unwrap()) > 0.0,
            "job streamed no events"
        );
        assert!(
            snapshot.get("submit_to_first_event_sec").unwrap() != &Value::Null,
            "first-event latency missing"
        );
    }

    // Each key has its own stored front; keys never mix.
    for task in ["adder", "prefix-or", "incrementer"] {
        let front = client.frontier(task, "analytical", 8).unwrap();
        assert!(
            num(front.get("count").unwrap()) > 0.0,
            "{task}: empty stored front"
        );
    }
    // A key nothing was merged under is *unknown* — `points` is null and
    // `known` false, distinguishable from a merged-but-empty front.
    let empty = client.frontier("adder", "synthesis", 8).unwrap();
    assert_eq!(num(empty.get("count").unwrap()), 0.0);
    assert_eq!(empty.get("known"), Some(&Value::Bool(false)));
    assert_eq!(empty.get("points"), Some(&Value::Null));

    // All three jobs evaluated through the one shared store.
    let ping = client.ping().unwrap();
    let cache = ping.get("cache").unwrap();
    assert!(num(cache.get("misses").unwrap()) > 0.0);
    assert!(num(cache.get("hits").unwrap()) > 0.0);

    handle.shutdown().unwrap();
}

#[test]
fn cancel_stops_a_running_job_quickly() {
    let handle = Server::spawn(config(1, None)).unwrap();
    let client = Client::new(handle.addr().to_string());
    client.wait_until_ready(Duration::from_secs(10)).unwrap();

    // A job far too long to finish on its own in this test.
    let id = client.submit(&spec("adder", 2_000_000)).unwrap();
    let snapshot = client
        .wait_for_phase(id, &["running"], Duration::from_secs(30))
        .unwrap();
    assert_eq!(phase(&snapshot), "running");
    // Let it actually train a little before cancelling.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while num(client.status(id, 0).unwrap().get("events_seen").unwrap()) == 0.0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no events before cancel"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let t0 = std::time::Instant::now();
    client.cancel(id).unwrap();
    let snapshot = client
        .wait_for_phase(id, &["cancelled"], Duration::from_secs(30))
        .unwrap();
    // "Within one event tick" at test scale: the cancel must land in
    // seconds, not after the 2M-step budget.
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "cancel took {:?}",
        t0.elapsed()
    );
    assert_eq!(history(&snapshot), vec!["queued", "running", "cancelled"]);
    // A cancelled job never merges into the frontier store — its key
    // stays entirely unknown.
    let front = client.frontier("adder", "analytical", 8).unwrap();
    assert_eq!(num(front.get("count").unwrap()), 0.0);
    assert_eq!(front.get("known"), Some(&Value::Bool(false)));
    // Cancelling again is a loud error.
    assert!(client.cancel(id).unwrap_err().contains("already cancelled"));

    handle.shutdown().unwrap();
}

#[test]
fn protocol_rejects_bad_requests_loudly() {
    let handle = Server::spawn(config(1, None)).unwrap();
    let client = Client::new(handle.addr().to_string());
    client.wait_until_ready(Duration::from_secs(10)).unwrap();

    let err = client.submit(&spec("multiplier", 100)).unwrap_err();
    assert!(err.contains("unknown task"), "{err}");
    let err = client
        .submit(&JobSpec {
            backend: "spice".to_string(),
            ..spec("adder", 100)
        })
        .unwrap_err();
    assert!(err.contains("unknown backend"), "{err}");
    // The duplicate-weights bugfix surfaces through the protocol.
    let err = client
        .submit(&JobSpec {
            weights: vec![0.5, 0.5],
            ..spec("adder", 100)
        })
        .unwrap_err();
    assert!(err.contains("duplicate weight"), "{err}");
    let err = client.status(999, 0).unwrap_err();
    assert!(err.contains("no such job"), "{err}");
    let err = client
        .request(&serde_json::json!({"proto": "prefixrl.serve.v1", "cmd": "fly"}))
        .unwrap_err();
    assert!(err.contains("unknown cmd"), "{err}");
    let err = client
        .request(&serde_json::json!({"proto": "prefixrl.serve.v2", "cmd": "ping"}))
        .unwrap_err();
    assert!(err.contains("unsupported protocol"), "{err}");

    handle.shutdown().unwrap();
}

#[test]
fn hostile_connections_do_not_kill_the_accept_loop() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let handle = Server::spawn(config(1, None)).unwrap();
    let addr = handle.addr();
    let client = Client::new(addr.to_string());
    client.wait_until_ready(Duration::from_secs(10)).unwrap();

    // Malformed JSON: a loud inline error, connection still usable.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"{this is not json\n").unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("malformed request"), "{line}");
    s.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");

    // Mid-handshake disconnects: one peer vanishes with no bytes, one
    // with a truncated request and no newline.
    drop(TcpStream::connect(addr).unwrap());
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"{\"proto\":\"prefixrl.serve.v1\",\"cmd\":\"pi")
        .unwrap();
    drop(s);

    // An oversized line (past the request cap, newline never sent) gets
    // an error response and a closed connection, not unbounded buffering.
    let mut s = TcpStream::connect(addr).unwrap();
    let chunk = vec![b'x'; 1 << 20];
    let mut sent = 0u64;
    while sent <= prefixrl_serve::protocol::MAX_REQUEST_LINE {
        // The server may close mid-send once the cap trips; that's fine.
        if s.write_all(&chunk).is_err() {
            break;
        }
        sent += chunk.len() as u64;
    }
    let mut response = String::new();
    let _ = BufReader::new(s).read_line(&mut response);
    assert!(
        response.contains("request line exceeds"),
        "oversized line must be answered loudly, got: {response:?}"
    );

    // Unknown verbs and cluster verbs on a non-clustered server refuse
    // loudly over a normal client.
    let err = client
        .request(&serde_json::json!({"cmd": "gossip"}))
        .unwrap_err();
    assert!(err.contains("unknown cmd"), "{err}");
    let err = client
        .request(&serde_json::json!({"cmd": "repl_subscribe", "epoch": 0, "from_seq": 0}))
        .unwrap_err();
    assert!(err.contains("replication is not enabled"), "{err}");
    let err = client
        .request(&serde_json::json!({"cmd": "cluster"}))
        .unwrap_err();
    assert!(err.contains("not part of a cluster"), "{err}");

    // After all of the above the accept loop still serves.
    assert!(client.ping().is_ok(), "server died serving hostile peers");

    handle.shutdown().unwrap();
}

#[test]
fn query_verbs_answer_over_the_wire() {
    let handle = Server::spawn(config(1, None)).unwrap();
    let client = Client::new(handle.addr().to_string());
    client.wait_until_ready(Duration::from_secs(10)).unwrap();

    // Nothing merged yet: every query answers known = false, not an
    // error, and the snapshot epoch is 0.
    let miss = client
        .query_best_at_delay("adder", "analytical", 8, 10.0)
        .unwrap();
    assert_eq!(num(miss.get("epoch").unwrap()), 0.0);
    let result = miss.get("result").unwrap();
    assert_eq!(result.get("known"), Some(&Value::Bool(false)));
    assert_eq!(result.get("found"), Some(&Value::Bool(false)));

    let id = client.submit(&spec("adder", 200)).unwrap();
    client
        .wait_for_phase(id, &["done"], Duration::from_secs(120))
        .unwrap();

    // The merge bumped the published epoch without any explicit publish
    // call — the store publishes on merge.
    let best = client
        .query_best_at_delay("adder", "analytical", 8, 1e9)
        .unwrap();
    assert!(num(best.get("epoch").unwrap()) >= 1.0);
    let result = best.get("result").unwrap();
    assert_eq!(result.get("found"), Some(&Value::Bool(true)));
    assert_eq!(result.get("met"), Some(&Value::Bool(true)));
    let point = result.get("point").unwrap();
    let best_area = num(point.get("area").unwrap());
    let best_delay = num(point.get("delay").unwrap());
    assert!(best_area > 0.0 && best_delay > 0.0);

    // A delay target below the whole front degrades to the fastest
    // design, flagged met = false.
    let unmet = client
        .query_best_at_delay("adder", "analytical", 8, 1e-6)
        .unwrap();
    let result = unmet.get("result").unwrap();
    assert_eq!(result.get("found"), Some(&Value::Bool(true)));
    assert_eq!(result.get("met"), Some(&Value::Bool(false)));

    // Weight extremes agree with the front's ends.
    let smallest = client
        .query_best_at_weight("adder", "analytical", 8, 1.0)
        .unwrap();
    let small_area = num(smallest
        .get("result")
        .unwrap()
        .get("point")
        .unwrap()
        .get("area")
        .unwrap());
    assert!(
        (small_area - best_area).abs() < 1e-12,
        "w=1 must find the minimum-area point"
    );

    // A full-width range returns the whole front; a graph rides along
    // when asked for.
    let all = client
        .query_range("adder", "analytical", 8, 0.0, 1e9)
        .unwrap();
    let count = num(all.get("result").unwrap().get("count").unwrap());
    assert!(count >= 1.0);

    let with_graph = client
        .query(
            "adder",
            "analytical",
            8,
            "best_at_delay",
            vec![
                (
                    "delay".to_string(),
                    Value::Number(serde_json::Number::Float(1e9)),
                ),
                ("include_graph".to_string(), Value::Bool(true)),
            ],
        )
        .unwrap();
    assert!(
        with_graph
            .get("result")
            .unwrap()
            .get("point")
            .unwrap()
            .get("graph")
            .is_some(),
        "include_graph must attach the stored graph"
    );

    // A batch resolves against one snapshot: same epoch for all results,
    // and per-query failures come back inline instead of failing the
    // batch.
    let batch = client
        .query_batch(vec![
            serde_json::json!({
                "task": "adder", "backend": "analytical", "n": 8,
                "mode": "best_at_weight", "w": 0.0,
            }),
            serde_json::json!({
                "task": "adder", "backend": "analytical", "n": 8,
                "mode": "range", "delay_lo": 0.0, "delay_hi": 1e9,
            }),
            serde_json::json!({
                "task": "a/b", "backend": "analytical", "n": 8,
                "mode": "best_at_weight", "w": 0.0,
            }),
        ])
        .unwrap();
    let results = batch.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("found"), Some(&Value::Bool(true)));
    assert!(num(results[1].get("count").unwrap()) == count);
    assert!(
        results[2]
            .get("error")
            .map(|e| matches!(e, Value::String(s) if s.contains("alias")))
            .unwrap_or(false),
        "aliasing name must fail inline: {:?}",
        results[2]
    );

    handle.shutdown().unwrap();
}

#[test]
fn queue_and_frontier_survive_restart() {
    let dir = temp_dir("restart");

    // First server: finish one job, leave one queued behind a
    // long-running one, then shut down gracefully (the long job is
    // re-queued; kill -9 crash-restart is exercised by the serve-smoke CI
    // job on the real binary).
    let handle = Server::spawn(config(1, Some(dir.clone()))).unwrap();
    let addr = handle.addr().to_string();
    let client = Client::new(addr);
    client.wait_until_ready(Duration::from_secs(10)).unwrap();
    let finished = client.submit(&spec("adder", 120)).unwrap();
    client
        .wait_for_phase(finished, &["done"], Duration::from_secs(120))
        .unwrap();
    let front_before = serde_json::to_string(
        client
            .frontier("adder", "analytical", 8)
            .unwrap()
            .get("points")
            .unwrap(),
    )
    .unwrap();
    let long = client.submit(&spec("prefix-or", 2_000_000)).unwrap();
    let queued = client.submit(&spec("incrementer", 100)).unwrap();
    client
        .wait_for_phase(long, &["running"], Duration::from_secs(30))
        .unwrap();
    handle.shutdown().unwrap();

    // Second server on the same state dir.
    let handle = Server::spawn(config(2, Some(dir.clone()))).unwrap();
    let client = Client::new(handle.addr().to_string());
    client.wait_until_ready(Duration::from_secs(10)).unwrap();

    // The stored front is bit-identical across the restart.
    let front_after = serde_json::to_string(
        client
            .frontier("adder", "analytical", 8)
            .unwrap()
            .get("points")
            .unwrap(),
    )
    .unwrap();
    assert_eq!(front_before, front_after, "stored front changed on restart");

    // The finished job is remembered; the interrupted and queued jobs
    // resume (the long one re-runs from scratch — cancel it rather than
    // wait out 2M steps).
    let snapshot = client.status(finished, 0).unwrap();
    assert_eq!(phase(&snapshot), "done");
    client
        .wait_for_phase(queued, &["done"], Duration::from_secs(120))
        .unwrap();
    let long_snapshot = client
        .wait_for_phase(long, &["running", "queued"], Duration::from_secs(30))
        .unwrap();
    assert!(
        history(&long_snapshot).contains(&"requeued".to_string()),
        "interrupted job must be re-queued: {long_snapshot:?}"
    );
    client.cancel(long).unwrap();
    client
        .wait_for_phase(long, &["cancelled"], Duration::from_secs(30))
        .unwrap();

    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
