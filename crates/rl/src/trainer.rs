//! The scalarized Double-DQN trainer (paper Eq. 4–6).

use crate::policy::ScalarizedPolicy;
use crate::qnetwork::QNetwork;
use crate::replay::ReplayBuffer;
use nn::Scratch;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the scalarized Double-DQN.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Discount factor γ (the paper uses 0.75).
    pub gamma: f32,
    /// Mini-batch size per gradient step.
    pub batch_size: usize,
    /// Target-network sync period in gradient steps (the paper uses 60).
    pub target_sync_every: u64,
    /// Scalarization weight `w = [w_area, w_delay]`; nonnegative, sums to 1.
    pub weight: [f32; 2],
    /// Huber loss threshold.
    pub huber_delta: f32,
    /// Minimum transitions in replay before training starts.
    pub min_replay: usize,
}

impl DqnConfig {
    /// The paper's hyper-parameters for a given scalarization weight.
    pub fn paper(w_area: f32) -> Self {
        DqnConfig {
            gamma: 0.75,
            batch_size: 96,
            target_sync_every: 60,
            weight: [w_area, 1.0 - w_area],
            huber_delta: 1.0,
            min_replay: 500,
        }
    }
}

/// A serializable snapshot of a [`DoubleDqn`]'s learnable state: both
/// networks' parameters plus the gradient-step counter that drives target
/// synchronization.
///
/// Optimizer internals (e.g. Adam moments) live inside the concrete
/// [`QNetwork`] implementation and are checkpointed alongside this snapshot
/// by the caller (see `prefixrl_core::checkpoint`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainerState {
    /// Online-network parameter tensors ([`QNetwork::state`] order).
    pub online: Vec<Vec<f32>>,
    /// Target-network parameter tensors.
    pub target: Vec<Vec<f32>>,
    /// Gradient steps taken (position in the target-sync cycle).
    pub grad_steps: u64,
}

/// Scalarized Double-DQN over a [`QNetwork`] pair (online + target).
///
/// All action selection delegates to the shared [`ScalarizedPolicy`], so
/// the trainer, the serial agent, and detached async actors make identical
/// decisions for identical Q-values.
pub struct DoubleDqn<Q: QNetwork> {
    online: Q,
    target: Q,
    policy: ScalarizedPolicy,
    cfg: DqnConfig,
    grad_steps: u64,
    /// Arena for the trainer's own inference passes (action selection,
    /// bootstrap targets) — reused every step, so the hot loop stops
    /// allocating.
    scratch: Scratch,
}

impl<Q: QNetwork> DoubleDqn<Q> {
    /// Creates a trainer, synchronizing the target network to the online
    /// network's initial parameters.
    ///
    /// # Panics
    ///
    /// Panics if the two networks disagree on the action count, if the
    /// weight vector is not a convex combination, or if the architectures
    /// mismatch.
    pub fn new(mut online: Q, mut target: Q, cfg: DqnConfig) -> Self {
        assert_eq!(
            online.num_actions(),
            target.num_actions(),
            "online/target action spaces differ"
        );
        let policy = ScalarizedPolicy::new(cfg.weight);
        let s = online.state();
        target.load_state(&s).expect("architectures must match");
        DoubleDqn {
            online,
            target,
            policy,
            cfg,
            grad_steps: 0,
            scratch: Scratch::new(),
        }
    }

    /// The trainer configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// The shared action-selection policy (copyable into actor threads).
    pub fn policy(&self) -> ScalarizedPolicy {
        self.policy
    }

    /// Gradient steps taken so far.
    pub fn grad_steps(&self) -> u64 {
        self.grad_steps
    }

    /// Immutable access to the online network — what frozen inference
    /// snapshots are built from.
    pub fn online(&self) -> &Q {
        &self.online
    }

    /// Mutable access to the online network (checkpointing, inspection).
    pub fn online_mut(&mut self) -> &mut Q {
        &mut self.online
    }

    /// Mutable access to the target network (checkpointing).
    pub fn target_mut(&mut self) -> &mut Q {
        &mut self.target
    }

    /// Snapshots both networks and the gradient-step counter.
    pub fn save_state(&mut self) -> TrainerState {
        TrainerState {
            online: self.online.state(),
            target: self.target.state(),
            grad_steps: self.grad_steps,
        }
    }

    /// Restores a snapshot captured by [`DoubleDqn::save_state`], resuming
    /// the target-sync cycle at the recorded gradient step.
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch.
    pub fn load_state_snapshot(&mut self, state: &TrainerState) -> Result<(), String> {
        self.online.load_state(&state.online)?;
        self.target.load_state(&state.target)?;
        self.grad_steps = state.grad_steps;
        Ok(())
    }

    /// Per-action Q-values for a single state (evaluation mode, via the
    /// immutable [`crate::QInfer`] path).
    pub fn q_values(&mut self, state: &[f32]) -> Vec<[f32; 2]> {
        self.online
            .infer(&[state], &mut self.scratch)
            .pop()
            .expect("batch of 1")
    }

    /// The greedy action under the scalarized objective, restricted to
    /// `mask`; `None` when no action is legal.
    pub fn greedy_action(&mut self, state: &[f32], mask: &[bool]) -> Option<usize> {
        self.policy
            .greedy_action(&self.online, state, mask, &mut self.scratch)
    }

    /// ε-greedy acting against the online network, via the shared
    /// [`ScalarizedPolicy`] (Eq. 6 plus exploration).
    pub fn act(
        &mut self,
        state: &[f32],
        mask: &[bool],
        epsilon: f64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        self.policy
            .select_action(&self.online, state, mask, epsilon, rng, &mut self.scratch)
    }

    /// Copies the online parameters into the target network.
    pub fn sync_target(&mut self) {
        let s = self.online.state();
        self.target
            .load_state(&s)
            .expect("architectures must match");
    }

    /// Performs one Double-DQN gradient step from replay, returning the
    /// scalar Huber loss, or `None` while the buffer is below `min_replay`.
    pub fn train_step(&mut self, replay: &ReplayBuffer, rng: &mut StdRng) -> Option<f32> {
        if replay.len() < self.cfg.min_replay.max(1) {
            return None;
        }
        let batch = replay.sample(rng, self.cfg.batch_size);
        let next_states: Vec<&[f32]> = batch.iter().map(|t| t.next_state.as_slice()).collect();
        // Double-DQN action selection: argmax of the *online* scalarized
        // Q over legal next actions…
        let next_q_online = self.online.infer(&next_states, &mut self.scratch);
        let a_star: Vec<Option<usize>> = batch
            .iter()
            .zip(&next_q_online)
            .map(|(t, q)| {
                if t.done {
                    return None;
                }
                self.policy.greedy_from_q(q, &t.next_mask)
            })
            .collect();
        // …evaluated by the *target* network (Eq. 4).
        let next_q_target = self.target.infer(&next_states, &mut self.scratch);
        let targets: Vec<[f32; 2]> = batch
            .iter()
            .zip(&a_star)
            .zip(&next_q_target)
            .map(|((t, a), qt)| {
                let mut y = t.reward;
                if let Some(a) = a {
                    y[0] += self.cfg.gamma * qt[*a][0];
                    y[1] += self.cfg.gamma * qt[*a][1];
                }
                y
            })
            .collect();
        // Forward the current states in training mode and build the
        // masked Huber gradient at the taken actions only.
        let states: Vec<&[f32]> = batch.iter().map(|t| t.state.as_slice()).collect();
        let q_pred = self.online.forward(&states, true);
        let num_actions = self.online.num_actions();
        let mut grad: Vec<Vec<[f32; 2]>> = vec![vec![[0.0; 2]; num_actions]; batch.len()];
        let mut loss = 0.0f64;
        let norm = (batch.len() * 2) as f32;
        for (b, (t, y)) in batch.iter().zip(&targets).enumerate() {
            for obj in 0..2 {
                let d = q_pred[b][t.action][obj] - y[obj];
                let delta = self.cfg.huber_delta;
                let (l, g) = if d.abs() <= delta {
                    (0.5 * d * d, d)
                } else {
                    (delta * (d.abs() - 0.5 * delta), delta * d.signum())
                };
                loss += l as f64;
                grad[b][t.action][obj] = g / norm;
            }
        }
        self.online.apply_gradient(&grad);
        self.grad_steps += 1;
        if self.grad_steps.is_multiple_of(self.cfg.target_sync_every) {
            self.sync_target();
        }
        Some((loss / norm as f64) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qnetwork::QInfer;
    use crate::replay::Transition;
    use nn::{Layer, Linear};

    /// A linear Q-network over one-hot states, for algorithm tests.
    struct LinearQ {
        net: Linear,
        opt: nn::Adam,
        actions: usize,
    }

    impl LinearQ {
        fn new(state_dim: usize, actions: usize, seed: u64, lr: f32) -> Self {
            LinearQ {
                net: Linear::new(state_dim, actions * 2, seed),
                opt: nn::Adam::new(lr),
                actions,
            }
        }
    }

    impl LinearQ {
        fn pack(states: &[&[f32]]) -> nn::Tensor {
            let dim = states[0].len();
            let mut flat = Vec::with_capacity(states.len() * dim);
            for s in states {
                flat.extend_from_slice(s);
            }
            nn::Tensor::from_vec([states.len(), dim, 1, 1], flat)
        }

        fn unpack(&self, n: usize, y: &nn::Tensor) -> Vec<Vec<[f32; 2]>> {
            (0..n)
                .map(|b| {
                    (0..self.actions)
                        .map(|a| {
                            [
                                y.data()[b * self.actions * 2 + a * 2],
                                y.data()[b * self.actions * 2 + a * 2 + 1],
                            ]
                        })
                        .collect()
                })
                .collect()
        }
    }

    impl QInfer for LinearQ {
        fn num_actions(&self) -> usize {
            self.actions
        }

        fn infer(&self, states: &[&[f32]], scratch: &mut Scratch) -> Vec<Vec<[f32; 2]>> {
            let y = self.net.infer(&Self::pack(states), scratch);
            let out = self.unpack(states.len(), &y);
            scratch.recycle(y);
            out
        }
    }

    impl QNetwork for LinearQ {
        fn forward(&mut self, states: &[&[f32]], train: bool) -> Vec<Vec<[f32; 2]>> {
            let y = self.net.forward(&Self::pack(states), train);
            self.unpack(states.len(), &y)
        }

        fn apply_gradient(&mut self, grad: &[Vec<[f32; 2]>]) {
            let n = grad.len();
            let mut flat = vec![0.0f32; n * self.actions * 2];
            for (b, row) in grad.iter().enumerate() {
                for (a, g) in row.iter().enumerate() {
                    flat[b * self.actions * 2 + a * 2] = g[0];
                    flat[b * self.actions * 2 + a * 2 + 1] = g[1];
                }
            }
            let g = nn::Tensor::from_vec([n, self.actions * 2, 1, 1], flat);
            self.net.zero_grad();
            self.net.backward(&g);
            self.opt.step(&mut self.net);
        }

        fn state(&mut self) -> Vec<Vec<f32>> {
            nn::serialize::state(&mut self.net)
        }

        fn load_state(&mut self, s: &[Vec<f32>]) -> Result<(), String> {
            nn::serialize::load_state(&mut self.net, s)
        }
    }

    /// 5-state chain: action 0 = left, 1 = right. Reaching state 0 pays
    /// [0, 1]; reaching state 4 pays [1, 0]; both terminate.
    fn chain_step(s: usize, a: usize) -> (usize, [f32; 2], bool) {
        let s2 = if a == 1 { s + 1 } else { s - 1 };
        match s2 {
            0 => (0, [0.0, 1.0], true),
            4 => (4, [1.0, 0.0], true),
            _ => (s2, [0.0, 0.0], false),
        }
    }

    fn one_hot(s: usize) -> Vec<f32> {
        let mut v = vec![0.0; 5];
        v[s] = 1.0;
        v
    }

    fn fill_replay(rng: &mut StdRng, transitions: usize) -> ReplayBuffer {
        let mut buf = ReplayBuffer::new(10_000);
        let mut s = 2usize;
        for _ in 0..transitions {
            let a = rng.random_range(0..2);
            let (s2, r, done) = chain_step(s, a);
            buf.push(Transition {
                state: one_hot(s),
                action: a,
                reward: r,
                next_state: one_hot(s2),
                next_mask: vec![true, true],
                done,
            });
            s = if done { 2 } else { s2 };
        }
        buf
    }

    fn train_chain(w_area: f32, seed: u64) -> DoubleDqn<LinearQ> {
        let cfg = DqnConfig {
            gamma: 0.9,
            batch_size: 32,
            target_sync_every: 25,
            weight: [w_area, 1.0 - w_area],
            huber_delta: 1.0,
            min_replay: 100,
        };
        let online = LinearQ::new(5, 2, seed, 0.02);
        let target = LinearQ::new(5, 2, seed + 1, 0.02);
        let mut dqn = DoubleDqn::new(online, target, cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let replay = fill_replay(&mut rng, 2000);
        for _ in 0..800 {
            dqn.train_step(&replay, &mut rng).unwrap();
        }
        dqn
    }

    #[test]
    fn learns_weight_dependent_policies() {
        // Area-weighted agent heads right (area reward); delay-weighted
        // heads left — the essence of scalarized multi-objective DQN.
        let mut right = train_chain(1.0, 3);
        let mut left = train_chain(0.0, 4);
        for s in 1..4 {
            assert_eq!(
                right.greedy_action(&one_hot(s), &[true, true]),
                Some(1),
                "w=[1,0] at state {s}"
            );
            assert_eq!(
                left.greedy_action(&one_hot(s), &[true, true]),
                Some(0),
                "w=[0,1] at state {s}"
            );
        }
    }

    #[test]
    fn q_values_approach_returns() {
        let mut dqn = train_chain(1.0, 5);
        // At state 3, going right pays [1, 0] immediately.
        let q = dqn.q_values(&one_hot(3));
        assert!(
            (q[1][0] - 1.0).abs() < 0.2,
            "Q_area(3, right) = {}",
            q[1][0]
        );
        assert!(q[1][1].abs() < 0.2, "Q_delay(3, right) = {}", q[1][1]);
        // At state 1, going right then optimally: γ²·1 discounted area value.
        let q1 = dqn.q_values(&one_hot(1));
        assert!(q1[1][0] > 0.4, "Q_area(1, right) = {}", q1[1][0]);
    }

    #[test]
    fn masking_restricts_selection() {
        let mut dqn = train_chain(1.0, 6);
        // Even though right is optimal, masking it forces left.
        assert_eq!(dqn.greedy_action(&one_hot(2), &[true, false]), Some(0));
        assert_eq!(dqn.greedy_action(&one_hot(2), &[false, false]), None);
    }

    #[test]
    fn epsilon_one_explores_uniformly() {
        let online = LinearQ::new(5, 2, 0, 0.01);
        let target = LinearQ::new(5, 2, 1, 0.01);
        let mut dqn = DoubleDqn::new(online, target, DqnConfig::paper(0.5));
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            let a = dqn.act(&one_hot(2), &[true, true], 1.0, &mut rng).unwrap();
            counts[a] += 1;
        }
        assert!(counts[0] > 350 && counts[1] > 350, "{counts:?}");
    }

    #[test]
    fn target_sync_counts_grad_steps() {
        let online = LinearQ::new(5, 2, 0, 0.01);
        let target = LinearQ::new(5, 2, 1, 0.01);
        let mut dqn = DoubleDqn::new(online, target, DqnConfig::paper(0.5));
        let mut rng = StdRng::seed_from_u64(0);
        let replay = fill_replay(&mut rng, 600);
        assert_eq!(dqn.grad_steps(), 0);
        for _ in 0..10 {
            dqn.train_step(&replay, &mut rng);
        }
        assert_eq!(dqn.grad_steps(), 10);
    }

    #[test]
    fn no_training_below_min_replay() {
        let online = LinearQ::new(5, 2, 0, 0.01);
        let target = LinearQ::new(5, 2, 1, 0.01);
        let mut dqn = DoubleDqn::new(online, target, DqnConfig::paper(0.5));
        let mut rng = StdRng::seed_from_u64(0);
        let replay = fill_replay(&mut rng, 10);
        assert!(dqn.train_step(&replay, &mut rng).is_none());
    }

    #[test]
    fn trainer_state_roundtrip_resumes_sync_cycle() {
        let mut a = train_chain(0.5, 11);
        let state = a.save_state();
        // Serde round-trip through the value tree.
        let v = serde::Serialize::to_value(&state);
        let state: TrainerState = serde::Deserialize::from_value(&v).unwrap();
        let online = LinearQ::new(5, 2, 77, 0.02);
        let target = LinearQ::new(5, 2, 78, 0.02);
        let mut b = DoubleDqn::new(online, target, a.config().clone());
        b.load_state_snapshot(&state).unwrap();
        assert_eq!(b.grad_steps(), a.grad_steps());
        assert_eq!(b.online_mut().state(), a.online_mut().state());
        assert_eq!(b.target_mut().state(), a.target_mut().state());
        for s in 0..5 {
            assert_eq!(
                a.greedy_action(&one_hot(s.clamp(1, 3)), &[true, true]),
                b.greedy_action(&one_hot(s.clamp(1, 3)), &[true, true]),
            );
        }
    }

    #[test]
    #[should_panic(expected = "convex combination")]
    fn invalid_weight_rejected() {
        let online = LinearQ::new(5, 2, 0, 0.01);
        let target = LinearQ::new(5, 2, 1, 0.01);
        let mut cfg = DqnConfig::paper(0.5);
        cfg.weight = [0.9, 0.9];
        let _ = DoubleDqn::new(online, target, cfg);
    }
}
