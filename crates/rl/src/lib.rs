//! Scalarized multi-objective Double-DQN (the paper's Section IV-B).
//!
//! This crate implements the RL algorithm of PrefixRL independent of the
//! prefix-graph domain:
//!
//! - [`replay::ReplayBuffer`] — uniform experience replay over vector-reward
//!   transitions with legality masks;
//! - [`schedule::EpsilonSchedule`] — linearly annealed ε-greedy exploration;
//! - [`qnetwork::QInfer`] / [`qnetwork::QNetwork`] — the two halves of a
//!   Q-value approximator: an immutable, shareable inference interface
//!   (one frozen snapshot serves many actor threads with zero weight
//!   copies) and the mutable training interface on top (the paper's
//!   convolutional network lives in `prefixrl-core`; tests here use a
//!   small linear network);
//! - [`policy::ScalarizedPolicy`] — the one ε-greedy scalarized
//!   action-selection implementation (`argmax w·Q` over legal actions,
//!   Eq. 6), shared by the trainer, the serial agent, and async actors,
//!   with batched variants for multi-environment acting;
//! - [`trainer::DoubleDqn`] — scalarized Double-DQN: per-objective Q-values
//!   `Q = [Q_area, Q_delay]`, acting through the shared policy, and targets
//!   `y = r + γ·Q_target(s', argmax_a w·Q_online(s', a))` (Eq. 4).
//!
//! # Example
//!
//! ```
//! use rl::{ReplayBuffer, Transition, EpsilonSchedule};
//!
//! let mut buf = ReplayBuffer::new(100);
//! buf.push(Transition {
//!     state: vec![0.0, 1.0],
//!     action: 0,
//!     reward: [1.0, -0.5],
//!     next_state: vec![1.0, 0.0],
//!     next_mask: vec![true, true],
//!     done: false,
//! });
//! assert_eq!(buf.len(), 1);
//! let eps = EpsilonSchedule::linear(1.0, 0.0, 10);
//! assert_eq!(eps.value(0), 1.0);
//! assert_eq!(eps.value(10), 0.0);
//! ```

#![warn(missing_docs)]

pub mod policy;
pub mod qnetwork;
pub mod replay;
pub mod schedule;
pub mod trainer;

pub use policy::ScalarizedPolicy;
pub use qnetwork::{QInfer, QNetwork};
pub use replay::{ReplayBuffer, Transition};
pub use schedule::EpsilonSchedule;
pub use trainer::{DoubleDqn, DqnConfig, TrainerState};

/// Number of reward objectives (area, delay).
pub const OBJECTIVES: usize = 2;
