//! Experience replay.

use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// One environment transition with a two-objective reward vector.
///
/// `next_mask` records which flat actions are legal in `next_state`; the
/// Double-DQN target maximization is restricted to these (the paper masks
/// illegal Q-values to `-∞`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Transition {
    /// Flattened state features.
    pub state: Vec<f32>,
    /// Flat action index taken.
    pub action: usize,
    /// Vector reward `[r_area, r_delay]`.
    pub reward: [f32; 2],
    /// Flattened next-state features.
    pub next_state: Vec<f32>,
    /// Legal-action mask at the next state.
    pub next_mask: Vec<bool>,
    /// Whether the episode terminated (no bootstrapping). Time-limit
    /// truncations should leave this `false`.
    pub done: bool,
}

/// A fixed-capacity ring buffer of transitions with uniform sampling.
///
/// The paper uses a buffer of up to 4×10⁵ transitions.
///
/// The buffer serializes in full — storage, ring cursor, and push counter —
/// so a deserialized buffer continues evicting and sampling exactly where
/// the original left off (checkpoint/resume determinism).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    storage: Vec<Transition>,
    next: usize,
    pushed: u64,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            storage: Vec::with_capacity(capacity.min(1 << 16)),
            next: 0,
            pushed: 0,
        }
    }

    /// Adds a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(t);
        } else {
            self.storage[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
        self.pushed += 1;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Total transitions ever pushed (for statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Samples `batch` transitions uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<'a>(&'a self, rng: &mut StdRng, batch: usize) -> Vec<&'a Transition> {
        assert!(!self.is_empty(), "cannot sample from empty replay buffer");
        (0..batch)
            .map(|_| &self.storage[rng.random_range(0..self.storage.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(tag: f32) -> Transition {
        Transition {
            state: vec![tag],
            action: 0,
            reward: [tag, -tag],
            next_state: vec![tag + 1.0],
            next_mask: vec![true],
            done: false,
        }
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.total_pushed(), 5);
        let tags: Vec<f32> = buf.storage.iter().map(|x| x.state[0]).collect();
        // Ring overwrote 0 and 1.
        assert!(tags.contains(&2.0) && tags.contains(&3.0) && tags.contains(&4.0));
    }

    #[test]
    fn sampling_is_uniform_ish() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 4];
        for s in buf.sample(&mut rng, 4000) {
            counts[s.state[0] as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let a: Vec<f32> = buf
            .sample(&mut StdRng::seed_from_u64(7), 16)
            .iter()
            .map(|t| t.state[0])
            .collect();
        let b: Vec<f32> = buf
            .sample(&mut StdRng::seed_from_u64(7), 16)
            .iter()
            .map(|t| t.state[0])
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip_preserves_ring_state() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        let v = serde::Serialize::to_value(&buf);
        let mut back: ReplayBuffer = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.len(), buf.len());
        assert_eq!(back.total_pushed(), buf.total_pushed());
        // The ring cursor survived: the next push must evict the same slot
        // in both buffers.
        buf.push(t(99.0));
        back.push(t(99.0));
        let tags =
            |b: &ReplayBuffer| -> Vec<f32> { b.storage.iter().map(|x| x.state[0]).collect() };
        assert_eq!(tags(&buf), tags(&back));
        // And sampling under the same seed stays identical.
        let sample = |b: &ReplayBuffer| -> Vec<f32> {
            b.sample(&mut StdRng::seed_from_u64(3), 8)
                .iter()
                .map(|t| t.state[0])
                .collect()
        };
        assert_eq!(sample(&buf), sample(&back));
    }

    #[test]
    #[should_panic(expected = "empty replay")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(&mut rng, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        ReplayBuffer::new(0);
    }
}
