//! The Q-function interfaces consumed by the trainer and the actors.
//!
//! The approximator is split into two halves:
//!
//! - [`QInfer`] — the immutable inference half: evaluation-mode Q-values
//!   through `&self`, drawing transient buffers from a caller-supplied
//!   [`Scratch`]. Because it never mutates, one frozen network snapshot
//!   (e.g. behind an `Arc`) can serve any number of actor threads with
//!   zero per-decision weight copies — the paper's many-actors/one-learner
//!   topology at thread scale.
//! - [`QNetwork`] — the mutable training half layered on top: training
//!   forwards, gradient application, and parameter snapshots for target
//!   sync and checkpointing.

use nn::Scratch;

/// The immutable inference half of a multi-objective Q-approximator.
///
/// Implementations map flattened state features to per-action,
/// per-objective Q-values `[Q_area, Q_delay]` in evaluation mode (running
/// batch-norm statistics, no cache writes). `infer` must agree with
/// [`QNetwork::forward`]`(…, false)` on any type implementing both.
pub trait QInfer {
    /// Number of flat actions (e.g. `2·N²` for the add/delete grid).
    fn num_actions(&self) -> usize;

    /// Evaluates Q-values for a batch of states:
    /// `out[b][a] = [q_area, q_delay]`.
    fn infer(&self, states: &[&[f32]], scratch: &mut Scratch) -> Vec<Vec<[f32; 2]>>;
}

/// A trainable multi-objective Q-value approximator over a fixed flat
/// action space.
///
/// The PrefixRL convolutional network (Fig. 2 of the paper) implements
/// this in `prefixrl-core`; the trainer's unit tests use a linear network.
/// Action selection goes through the [`QInfer`] supertrait.
pub trait QNetwork: QInfer {
    /// Evaluates Q-values for a batch of states:
    /// `out[b][a] = [q_area, q_delay]`.
    ///
    /// `train` selects training-mode behaviour of stochastic layers (batch
    /// statistics in batch-norm) and backward caching; `false` must match
    /// [`QInfer::infer`] exactly.
    fn forward(&mut self, states: &[&[f32]], train: bool) -> Vec<Vec<[f32; 2]>>;

    /// Backpropagates `grad[b][a] = [∂L/∂q_area, ∂L/∂q_delay]` through the
    /// most recent `forward(…, true)` call and applies one optimizer step.
    fn apply_gradient(&mut self, grad: &[Vec<[f32; 2]>]);

    /// Snapshot of all parameters (for target-network sync and
    /// checkpointing).
    fn state(&mut self) -> Vec<Vec<f32>>;

    /// Restores parameters produced by [`QNetwork::state`].
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch.
    fn load_state(&mut self, state: &[Vec<f32>]) -> Result<(), String>;
}
