//! The Q-function interface consumed by the trainer.

/// A trainable multi-objective Q-value approximator over a fixed flat
/// action space.
///
/// Implementations map flattened state features to per-action, per-objective
/// Q-values `[Q_area, Q_delay]`. The PrefixRL convolutional network (Fig. 2
/// of the paper) implements this in `prefixrl-core`; the trainer's unit
/// tests use a linear network.
pub trait QNetwork {
    /// Number of flat actions (e.g. `2·N²` for the add/delete grid).
    fn num_actions(&self) -> usize;

    /// Evaluates Q-values for a batch of states:
    /// `out[b][a] = [q_area, q_delay]`.
    ///
    /// `train` selects training-mode behaviour of stochastic layers
    /// (batch-norm statistics); action selection uses `false`.
    fn forward(&mut self, states: &[&[f32]], train: bool) -> Vec<Vec<[f32; 2]>>;

    /// Backpropagates `grad[b][a] = [∂L/∂q_area, ∂L/∂q_delay]` through the
    /// most recent `forward(…, true)` call and applies one optimizer step.
    fn apply_gradient(&mut self, grad: &[Vec<[f32; 2]>]);

    /// Snapshot of all parameters (for target-network sync and
    /// checkpointing).
    fn state(&mut self) -> Vec<Vec<f32>>;

    /// Restores parameters produced by [`QNetwork::state`].
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch.
    fn load_state(&mut self, state: &[Vec<f32>]) -> Result<(), String>;
}
