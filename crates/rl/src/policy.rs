//! The shared action-selection policy (paper Eq. 6).
//!
//! PrefixRL selects actions by scalarizing the per-objective Q-values with
//! the agent's weight vector and taking the masked argmax, with ε-greedy
//! exploration during training. Before this module existed the workspace
//! carried three near-identical copies of that logic (the trainer, the
//! serial agent, and the async actors); [`ScalarizedPolicy`] is now the
//! single implementation every acting path routes through. All selection
//! goes through the **immutable** [`QInfer`] half of the network, so a
//! frozen snapshot shared behind an `Arc` serves any number of actor
//! threads without copies or locks, and its batched entry points let
//! actors evaluate one forward pass over many environments instead of a
//! batch-of-1 per decision.

use crate::qnetwork::QInfer;
use nn::Scratch;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// ε-greedy scalarized action selection over any [`QInfer`].
///
/// The policy is a pure decision rule (the scalarization weight is its only
/// state), so it is `Copy` and can be shared freely between the trainer and
/// detached actor threads.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalarizedPolicy {
    weight: [f32; 2],
}

impl ScalarizedPolicy {
    /// Creates a policy for the scalarization weight `w = [w_area, w_delay]`.
    ///
    /// # Panics
    ///
    /// Panics unless the weight is a convex combination (nonnegative, sums
    /// to 1).
    pub fn new(weight: [f32; 2]) -> Self {
        assert!(
            weight.iter().all(|&w| w >= 0.0) && (weight.iter().sum::<f32>() - 1.0).abs() < 1e-5,
            "weight must be a convex combination"
        );
        ScalarizedPolicy { weight }
    }

    /// The scalarization weight.
    pub fn weight(&self) -> [f32; 2] {
        self.weight
    }

    /// Scalarizes a per-objective Q-value: `w · q`.
    #[inline]
    pub fn scalarize(&self, q: [f32; 2]) -> f32 {
        self.weight[0] * q[0] + self.weight[1] * q[1]
    }

    /// The masked scalarized argmax over precomputed Q-values; `None` when
    /// no action is legal.
    ///
    /// # Panics
    ///
    /// Panics if `q` and `mask` lengths differ.
    pub fn greedy_from_q(&self, q: &[[f32; 2]], mask: &[bool]) -> Option<usize> {
        assert_eq!(mask.len(), q.len(), "mask length mismatch");
        mask.iter()
            .enumerate()
            .filter(|&(_, &legal)| legal)
            .map(|(a, _)| (a, self.scalarize(q[a])))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|(a, _)| a)
    }

    /// The greedy action for one state (ε = 0).
    pub fn greedy_action<Q: QInfer + ?Sized>(
        &self,
        net: &Q,
        state: &[f32],
        mask: &[bool],
        scratch: &mut Scratch,
    ) -> Option<usize> {
        let q = net.infer(&[state], scratch).pop().expect("batch of 1");
        self.greedy_from_q(&q, mask)
    }

    /// Greedy actions for a batch of states in one forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `masks` lengths differ.
    pub fn greedy_actions<Q: QInfer + ?Sized>(
        &self,
        net: &Q,
        states: &[&[f32]],
        masks: &[&[bool]],
        scratch: &mut Scratch,
    ) -> Vec<Option<usize>> {
        assert_eq!(states.len(), masks.len(), "states/masks length mismatch");
        if states.is_empty() {
            return Vec::new();
        }
        net.infer(states, scratch)
            .iter()
            .zip(masks)
            .map(|(q, mask)| self.greedy_from_q(q, mask))
            .collect()
    }

    /// ε-greedy action selection for one state — **the** ε-greedy
    /// implementation of the workspace (Eq. 6 plus exploration): with
    /// probability `epsilon` a uniform legal action, otherwise the masked
    /// scalarized argmax. `None` when no action is legal.
    pub fn select_action<Q: QInfer + ?Sized>(
        &self,
        net: &Q,
        state: &[f32],
        mask: &[bool],
        epsilon: f64,
        rng: &mut StdRng,
        scratch: &mut Scratch,
    ) -> Option<usize> {
        match self.explore(mask, epsilon, rng) {
            Explore::Random(a) => Some(a),
            Explore::NoLegalAction => None,
            Explore::Greedy => self.greedy_action(net, state, mask, scratch),
        }
    }

    /// ε-greedy selection for a batch of states, drawing exploration coins
    /// in state order and evaluating all greedy states in one forward pass
    /// (how async actors avoid batch-of-1 Q-net calls).
    ///
    /// # Panics
    ///
    /// Panics if `states` and `masks` lengths differ.
    pub fn select_actions<Q: QInfer + ?Sized>(
        &self,
        net: &Q,
        states: &[&[f32]],
        masks: &[&[bool]],
        epsilon: f64,
        rng: &mut StdRng,
        scratch: &mut Scratch,
    ) -> Vec<Option<usize>> {
        self.select_actions_with(states, masks, epsilon, rng, |batch| {
            Some(net.infer(batch, scratch))
        })
        .expect("local inference cannot be cancelled")
    }

    /// [`ScalarizedPolicy::select_actions`] with the greedy forward pass
    /// delegated to a caller-supplied evaluator — how actors route their
    /// decisions through a shared inference broker instead of a local
    /// network while keeping coin draws and argmax logic (and therefore
    /// trajectories) identical.
    ///
    /// The evaluator receives only the states whose coins came up greedy
    /// (in state order) and must return one Q-row per state; it may return
    /// `None` to signal the inference service is gone (shutdown), which
    /// propagates as `None` here. Exploration coins are drawn in state
    /// order *before* the evaluator runs, exactly as in `select_actions`,
    /// so the two entry points consume the actor RNG identically.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `masks` lengths differ.
    pub fn select_actions_with<F>(
        &self,
        states: &[&[f32]],
        masks: &[&[bool]],
        epsilon: f64,
        rng: &mut StdRng,
        infer: F,
    ) -> Option<Vec<Option<usize>>>
    where
        F: FnOnce(&[&[f32]]) -> Option<Vec<Vec<[f32; 2]>>>,
    {
        assert_eq!(states.len(), masks.len(), "states/masks length mismatch");
        let mut actions: Vec<Option<usize>> = Vec::with_capacity(states.len());
        let mut greedy_idx = Vec::new();
        for (i, mask) in masks.iter().enumerate() {
            match self.explore(mask, epsilon, rng) {
                Explore::Random(a) => actions.push(Some(a)),
                Explore::NoLegalAction => actions.push(None),
                Explore::Greedy => {
                    greedy_idx.push(i);
                    actions.push(None);
                }
            }
        }
        if !greedy_idx.is_empty() {
            let batch: Vec<&[f32]> = greedy_idx.iter().map(|&i| states[i]).collect();
            let q = infer(&batch)?;
            assert_eq!(q.len(), batch.len(), "evaluator returned a short batch");
            for (&i, q) in greedy_idx.iter().zip(&q) {
                actions[i] = self.greedy_from_q(q, masks[i]);
            }
        }
        Some(actions)
    }

    /// Draws the exploration coin for one state.
    fn explore(&self, mask: &[bool], epsilon: f64, rng: &mut StdRng) -> Explore {
        let legal: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(a, _)| a)
            .collect();
        if legal.is_empty() {
            return Explore::NoLegalAction;
        }
        if rng.random::<f64>() < epsilon {
            return Explore::Random(legal[rng.random_range(0..legal.len())]);
        }
        Explore::Greedy
    }
}

enum Explore {
    Random(usize),
    NoLegalAction,
    Greedy,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qnetwork::QNetwork;

    /// A fixed-table Q-network: `q[s][a]`, one-hot states.
    struct TableQ {
        table: Vec<Vec<[f32; 2]>>,
    }

    impl QInfer for TableQ {
        fn num_actions(&self) -> usize {
            self.table[0].len()
        }

        fn infer(&self, states: &[&[f32]], _scratch: &mut Scratch) -> Vec<Vec<[f32; 2]>> {
            states
                .iter()
                .map(|s| {
                    let idx = s.iter().position(|&x| x == 1.0).unwrap();
                    self.table[idx].clone()
                })
                .collect()
        }
    }

    impl QNetwork for TableQ {
        fn forward(&mut self, states: &[&[f32]], _train: bool) -> Vec<Vec<[f32; 2]>> {
            self.infer(states, &mut Scratch::new())
        }

        fn apply_gradient(&mut self, _grad: &[Vec<[f32; 2]>]) {}

        fn state(&mut self) -> Vec<Vec<f32>> {
            Vec::new()
        }

        fn load_state(&mut self, _state: &[Vec<f32>]) -> Result<(), String> {
            Ok(())
        }
    }

    fn table() -> TableQ {
        TableQ {
            // State 0: area prefers action 0, delay prefers action 2.
            table: vec![
                vec![[1.0, 0.0], [0.5, 0.5], [0.0, 1.0]],
                vec![[0.0, 0.2], [0.9, 0.9], [0.1, 0.0]],
            ],
        }
    }

    fn one_hot(s: usize) -> Vec<f32> {
        let mut v = vec![0.0; 2];
        v[s] = 1.0;
        v
    }

    #[test]
    fn greedy_tracks_weight() {
        let net = table();
        let mut s = Scratch::new();
        let area = ScalarizedPolicy::new([1.0, 0.0]);
        let delay = ScalarizedPolicy::new([0.0, 1.0]);
        let mask = [true, true, true];
        assert_eq!(
            area.greedy_action(&net, &one_hot(0), &mask, &mut s),
            Some(0)
        );
        assert_eq!(
            delay.greedy_action(&net, &one_hot(0), &mask, &mut s),
            Some(2)
        );
    }

    #[test]
    fn masking_restricts_and_empties() {
        let net = table();
        let mut s = Scratch::new();
        let p = ScalarizedPolicy::new([1.0, 0.0]);
        assert_eq!(
            p.greedy_action(&net, &one_hot(0), &[false, true, true], &mut s),
            Some(1)
        );
        assert_eq!(
            p.greedy_action(&net, &one_hot(0), &[false, false, false], &mut s),
            None
        );
    }

    #[test]
    fn batched_matches_single() {
        let net = table();
        let mut scratch = Scratch::new();
        let p = ScalarizedPolicy::new([0.5, 0.5]);
        let (s0, s1) = (one_hot(0), one_hot(1));
        let masks: Vec<&[bool]> = vec![&[true; 3], &[true, true, false]];
        let batched = p.greedy_actions(&net, &[&s0, &s1], &masks, &mut scratch);
        let singles = vec![
            p.greedy_action(&net, &s0, masks[0], &mut scratch),
            p.greedy_action(&net, &s1, masks[1], &mut scratch),
        ];
        assert_eq!(batched, singles);
    }

    #[test]
    fn epsilon_one_is_uniform_over_legal() {
        let net = table();
        let mut scratch = Scratch::new();
        let p = ScalarizedPolicy::new([0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(0);
        let mask = [true, false, true];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            let a = p
                .select_action(&net, &one_hot(0), &mask, 1.0, &mut rng, &mut scratch)
                .unwrap();
            counts[a] += 1;
        }
        assert_eq!(counts[1], 0, "illegal action must never be chosen");
        assert!(counts[0] > 350 && counts[2] > 350, "{counts:?}");
    }

    #[test]
    fn epsilon_zero_batch_is_greedy() {
        let net = table();
        let mut scratch = Scratch::new();
        let p = ScalarizedPolicy::new([1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let (s0, s1) = (one_hot(0), one_hot(1));
        let masks: Vec<&[bool]> = vec![&[true; 3], &[true; 3]];
        let actions = p.select_actions(&net, &[&s0, &s1], &masks, 0.0, &mut rng, &mut scratch);
        assert_eq!(actions, vec![Some(0), Some(1)]);
    }

    #[test]
    fn shared_snapshot_selects_across_threads() {
        // The point of the QInfer split: one network value, many selecting
        // threads, no copies.
        let net = std::sync::Arc::new(table());
        let p = ScalarizedPolicy::new([1.0, 0.0]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let net = std::sync::Arc::clone(&net);
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    assert_eq!(
                        p.greedy_action(&*net, &one_hot(0), &[true; 3], &mut scratch),
                        Some(0)
                    );
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "convex combination")]
    fn invalid_weight_rejected() {
        let _ = ScalarizedPolicy::new([0.9, 0.9]);
    }
}
