//! Exploration schedules.

use serde::{Deserialize, Serialize};

/// A linearly annealed ε-greedy schedule.
///
/// The paper anneals ε to zero over training and evaluates with ε = 0.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    start: f64,
    end: f64,
    decay_steps: u64,
}

impl EpsilonSchedule {
    /// Linear decay from `start` to `end` over `decay_steps` steps, constant
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint lies outside `[0, 1]`.
    pub fn linear(start: f64, end: f64, decay_steps: u64) -> Self {
        assert!((0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end));
        EpsilonSchedule {
            start,
            end,
            decay_steps,
        }
    }

    /// The ε value at a given environment step.
    pub fn value(&self, step: u64) -> f64 {
        if self.decay_steps == 0 || step >= self.decay_steps {
            return self.end;
        }
        let frac = step as f64 / self.decay_steps as f64;
        self.start + (self.end - self.start) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_midpoint() {
        let s = EpsilonSchedule::linear(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.55).abs() < 1e-12);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(10_000), 0.1);
    }

    #[test]
    fn monotone_decreasing() {
        let s = EpsilonSchedule::linear(0.9, 0.0, 1000);
        let mut prev = f64::MAX;
        for step in (0..1200).step_by(50) {
            let v = s.value(step);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn zero_decay_is_constant_end() {
        let s = EpsilonSchedule::linear(1.0, 0.25, 0);
        assert_eq!(s.value(0), 0.25);
    }
}
