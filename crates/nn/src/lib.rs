//! A minimal pure-Rust deep-learning library for the PrefixRL Q-network.
//!
//! The paper's RL/DL stack ran on GPUs with a mainstream framework; the Rust
//! ecosystem substitution (see DESIGN.md) is this crate: NCHW tensors,
//! `Conv2d` (same padding), `BatchNorm2d`, `LeakyReLU`, `Linear`, residual
//! blocks and `Sequential` containers, with full backpropagation, Adam/SGD
//! optimizers, Huber/MSE losses, parameter (de)serialization and
//! finite-difference gradient checking.
//!
//! The design favours determinism *and* throughput: every matrix product
//! routes through the register-tiled, cache-blocked kernels in [`compute`]
//! (explicit AVX lanes via [`simd`] under the default-on `simd` feature,
//! parallelized over disjoint row/sample panels on scoped threads, with a
//! fixed per-element reduction order so results are bit-identical with
//! vectors on or off and at every thread count — see
//! [`compute::set_threads`] and [`simd::set_enabled`]); transient buffers come
//! from a reusable [`Scratch`] arena threaded through
//! [`Layer::forward_with`]/[`Layer::backward_with`] so steady-state
//! training allocates nothing; and inference has a dedicated fast path —
//! immutable [`Layer::infer`] plus [`Conv2d::fused`] batch-norm folding —
//! that skips backward caching entirely. Layers own their parameters and
//! cached activations, a network is a [`Layer`] tree, and optimizers walk
//! parameters through a visitor, so target-network synchronization and
//! checkpointing are just state copies. (DESIGN.md §11.)
//!
//! # Example
//!
//! ```
//! use nn::{Tensor, Layer, Sequential, Conv2d, BatchNorm2d, LeakyReLU, Adam};
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 42)),
//!     Box::new(BatchNorm2d::new(8)),
//!     Box::new(LeakyReLU::default()),
//!     Box::new(Conv2d::new(8, 1, 1, 43)),
//! ]);
//! let x = Tensor::zeros([2, 3, 8, 8]);
//! let y = net.forward(&x, true);
//! assert_eq!(y.shape(), [2, 1, 8, 8]);
//! let grad = Tensor::ones([2, 1, 8, 8]);
//! net.backward(&grad);
//! let mut adam = Adam::new(1e-3);
//! adam.step(&mut net);
//! ```

#![warn(missing_docs)]

pub mod compute;
pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod serialize;
pub mod simd;
pub mod tensor;

pub use compute::{Scratch, ThreadPool};
pub use layers::{BatchNorm2d, Conv2d, Layer, LeakyReLU, Linear, Param, ResidualBlock, Sequential};
pub use loss::{huber_loss_grad, mse_loss_grad};
pub use optim::{Adam, AdamState, Sgd};
pub use tensor::Tensor;
