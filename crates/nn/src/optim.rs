//! Gradient-descent optimizers.
//!
//! Optimizers walk a network's parameters through [`Layer::visit_params`],
//! keeping per-parameter state (Adam moments) indexed by visit order — which
//! is deterministic for any fixed architecture.

use crate::layers::Layer;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of an [`Adam`] optimizer's internal state.
///
/// Adam is stateful — per-parameter first/second moments plus the bias-
/// correction step counter — so resuming training from a checkpoint is only
/// bit-identical if this state is restored alongside the parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdamState {
    /// Bias-correction step counter.
    pub t: u64,
    /// First-moment estimates, one tensor per parameter in visit order.
    pub m: Vec<Vec<f32>>,
    /// Second-moment estimates, one tensor per parameter in visit order.
    pub v: Vec<Vec<f32>>,
}

/// The Adam optimizer (Kingma & Ba). The paper trains with Adam at
/// learning rate `4e-5`; small-scale experiments here default higher.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with conventional betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Adjusts the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Snapshots the moment estimates and step counter.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a snapshot captured by [`Adam::state`].
    ///
    /// # Errors
    ///
    /// Fails if the moment tensor counts or any tensor length disagree
    /// (state from a different architecture). An empty snapshot (optimizer
    /// that never stepped) is always accepted.
    pub fn load_state(&mut self, state: &AdamState) -> Result<(), String> {
        if state.m.len() != state.v.len() {
            return Err(format!(
                "inconsistent Adam state: {} first moments vs {} second moments",
                state.m.len(),
                state.v.len()
            ));
        }
        if !self.m.is_empty() && !state.m.is_empty() {
            if self.m.len() != state.m.len() {
                return Err(format!(
                    "Adam state has {} moment tensors, optimizer tracks {}",
                    state.m.len(),
                    self.m.len()
                ));
            }
            for (i, (cur, new)) in self.m.iter().zip(&state.m).enumerate() {
                if cur.len() != new.len() {
                    return Err(format!(
                        "Adam moment {i}: expected {} values, got {}",
                        cur.len(),
                        new.len()
                    ));
                }
            }
        }
        self.t = state.t;
        self.m = state.m.clone();
        self.v = state.v.clone();
        Ok(())
    }

    /// Applies one Adam update using the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        net.visit_params(&mut |p| {
            if ms.len() <= idx {
                ms.push(vec![0.0; p.data.len()]);
                vs.push(vec![0.0; p.data.len()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(m.len(), p.data.len(), "parameter set changed shape");
            for i in 0..p.data.len() {
                let g = p.grad[i];
                m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p.data[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one SGD update.
    pub fn step(&mut self, net: &mut dyn Layer) {
        let (lr, mom) = (self.lr, self.momentum);
        let vel = &mut self.velocity;
        let mut idx = 0usize;
        net.visit_params(&mut |p| {
            if vel.len() <= idx {
                vel.push(vec![0.0; p.data.len()]);
            }
            let v = &mut vel[idx];
            for ((v, d), &g) in v.iter_mut().zip(p.data.iter_mut()).zip(&p.grad) {
                *v = mom * *v + g;
                *d -= lr * *v;
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::loss::mse_loss_grad;
    use crate::tensor::Tensor;

    fn train(optim: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        // Fit y = 2x with a 1-parameter linear layer.
        let mut lin = Linear::new(1, 1, 0);
        let x = Tensor::from_vec([4, 1, 1, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec([4, 1, 1, 1], vec![2.0, 4.0, 6.0, 8.0]);
        let mut last = f32::MAX;
        for _ in 0..steps {
            let y = lin.forward(&x, true);
            let (l, g) = mse_loss_grad(&y, &t);
            lin.zero_grad();
            lin.backward(&g);
            optim(&mut lin);
            last = l;
        }
        last
    }

    #[test]
    fn adam_converges_on_regression() {
        let mut adam = Adam::new(0.05);
        let loss = train(&mut |l| adam.step(l), 1200);
        assert!(loss < 1e-3, "adam final loss {loss}");
    }

    #[test]
    fn sgd_converges_on_regression() {
        let mut sgd = Sgd::with_momentum(0.01, 0.9);
        let loss = train(&mut |l| sgd.step(l), 400);
        assert!(loss < 1e-2, "sgd final loss {loss}");
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        // Two optimizers: train one, snapshot, restore into the other, and
        // both must produce identical parameters on every further step.
        let mut lin_a = Linear::new(1, 1, 0);
        let mut lin_b = Linear::new(1, 1, 0);
        let mut adam_a = Adam::new(0.05);
        let mut adam_b = Adam::new(0.05);
        let x = Tensor::from_vec([4, 1, 1, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec([4, 1, 1, 1], vec![2.0, 4.0, 6.0, 8.0]);
        let step = |lin: &mut Linear, adam: &mut Adam| {
            let y = lin.forward(&x, true);
            let (_, g) = mse_loss_grad(&y, &t);
            lin.zero_grad();
            lin.backward(&g);
            adam.step(lin);
        };
        for _ in 0..10 {
            step(&mut lin_a, &mut adam_a);
        }
        let snap = adam_a.state();
        crate::serialize::load_state(&mut lin_b, &crate::serialize::state(&mut lin_a)).unwrap();
        adam_b.load_state(&snap).unwrap();
        for _ in 0..10 {
            step(&mut lin_a, &mut adam_a);
            step(&mut lin_b, &mut adam_b);
            assert_eq!(
                crate::serialize::state(&mut lin_a),
                crate::serialize::state(&mut lin_b)
            );
        }
    }

    #[test]
    fn adam_state_rejects_mismatched_shape() {
        let mut lin = Linear::new(2, 2, 0);
        let mut adam = Adam::new(0.05);
        let y = lin.forward(&Tensor::ones([1, 2, 1, 1]), true);
        let (_, g) = mse_loss_grad(&y, &Tensor::ones([1, 2, 1, 1]));
        lin.backward(&g);
        adam.step(&mut lin);
        let mut bad = adam.state();
        bad.m[0].push(0.0);
        assert!(adam.load_state(&bad).is_err());
        bad.v.pop();
        assert!(adam.load_state(&bad).is_err());
    }

    #[test]
    fn adam_lr_is_adjustable() {
        let mut adam = Adam::new(1e-3);
        adam.set_learning_rate(5e-4);
        assert_eq!(adam.learning_rate(), 5e-4);
    }
}
