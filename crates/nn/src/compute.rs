//! The shared compute engine: blocked GEMM kernels, the scoped-thread
//! [`ThreadPool`], and the zero-allocation [`Scratch`] arena
//! (DESIGN.md §11).
//!
//! Every matrix product in this crate routes through the three kernels
//! here. They are register-tiled (`MR`×`NR` accumulator tiles) and
//! cache-blocked (`KC`/`NC` panels), with explicit [`crate::simd`] lanes
//! in the hot tiles when the (default-on) `simd` feature is active and the
//! CPU has AVX — but keep one hard invariant: **every output element
//! accumulates its products in ascending-`k` order, one product at a
//! time** — exactly the order of the scalar reference kernels in
//! [`reference`]. Floating-point addition is not associative, so this
//! fixed reduction order is what makes results bit-identical across kernel
//! generations, SIMD on or off, *and* across thread counts: vector lanes
//! only ever span independent output columns (never a reduction), and
//! parallelism only ever partitions disjoint output rows (or samples)
//! between workers.
//!
//! Threading is opt-in and global: [`set_threads`] (or the
//! `PREFIXRL_NN_THREADS` environment variable) picks the worker budget,
//! layers split work into contiguous panels via [`partition`], and
//! [`ThreadPool::run`] executes one closure per panel on `std::thread`
//! scoped threads. The default is one thread — deterministic by
//! construction, and the right choice inside already-parallel callers
//! (async actors, sweep workers).

use crate::tensor::Tensor;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// ------------------------------------------------------------- thread pool

fn global_threads() -> &'static AtomicUsize {
    static THREADS: OnceLock<AtomicUsize> = OnceLock::new();
    THREADS.get_or_init(|| {
        let from_env = std::env::var("PREFIXRL_NN_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1);
        AtomicUsize::new(from_env.unwrap_or(1))
    })
}

/// The global compute thread budget (defaults to 1, or
/// `PREFIXRL_NN_THREADS` when set).
pub fn threads() -> usize {
    global_threads().load(Ordering::Relaxed)
}

/// Sets the global compute thread budget (clamped to ≥ 1). Results are
/// bit-identical for every setting; only wall-clock changes.
pub fn set_threads(t: usize) {
    global_threads().store(t.max(1), Ordering::Relaxed);
}

/// A scoped-thread worker pool of fixed width.
///
/// The pool owns no long-lived threads: [`ThreadPool::run`] spawns its
/// workers inside a `std::thread::scope`, so jobs may borrow from the
/// caller's stack (disjoint `&mut` panels of one tensor, per-worker scratch
/// buffers) without any `'static` gymnastics, and every worker has joined
/// when `run` returns.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of explicit width (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The pool matching the global [`threads`] setting.
    pub fn global() -> Self {
        Self::new(threads())
    }

    /// A single-threaded pool (for use inside already-parallel callers).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one job per element of `jobs`, the last on the calling thread
    /// and the rest on scoped threads. Callers build one job per panel of
    /// a [`partition`]; jobs must touch disjoint data.
    pub fn run<F: FnOnce() + Send>(&self, jobs: Vec<F>) {
        let mut jobs = jobs;
        let Some(last) = jobs.pop() else {
            return;
        };
        if jobs.is_empty() {
            last();
            return;
        }
        std::thread::scope(|s| {
            for job in jobs {
                s.spawn(job);
            }
            last();
        });
    }
}

/// Splits `0..tasks` into at most `parts` contiguous, near-equal ranges
/// (empty ranges are dropped). Deterministic: depends only on the two
/// arguments, so a fixed thread count always produces the same panels.
pub fn partition(tasks: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(tasks.max(1));
    let base = tasks / parts;
    let extra = tasks % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Minimum useful work (in multiply-add flops) per extra worker thread.
///
/// Spawning a scoped thread plus the partitioning bookkeeping costs on the
/// order of 10µs; below ~256k flops of work per worker that overhead
/// exceeds the compute it offloads, which is exactly the regression
/// BENCH_nn.json showed at tiny/small configs (2/4-thread rows slower
/// than 1). The floor is deliberately coarse — it only needs to separate
/// "paper-scale panels" from "toy panels".
pub const MIN_FLOPS_PER_WORKER: usize = 1 << 18;

/// The number of workers actually worth using for `flops` of arithmetic:
/// `threads` capped so every worker gets at least
/// [`MIN_FLOPS_PER_WORKER`], and never less than one.
///
/// Using fewer workers than the configured budget never changes results —
/// partitioning is over disjoint outputs — so layers call this to fall
/// back to serial (or narrower) execution on small batches where thread
/// spawn overhead would dominate.
pub fn plan_workers(threads: usize, flops: usize) -> usize {
    threads.min(flops / MIN_FLOPS_PER_WORKER).max(1)
}

/// Splits one buffer into consecutive disjoint `&mut` chunks of the given
/// sizes (for handing panels to pool workers).
///
/// # Panics
///
/// Panics if the sizes overrun the buffer.
pub fn split_by_sizes<'a>(mut buf: &'a mut [f32], sizes: &[usize]) -> Vec<&'a mut [f32]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &len in sizes {
        let (head, tail) = buf.split_at_mut(len);
        out.push(head);
        buf = tail;
    }
    out
}

// ------------------------------------------------------------------ arena

/// A reusable buffer arena: layers borrow transient `f32` buffers (im2col
/// panels, column gradients, output tensors) from here instead of
/// allocating per call, and return them when done.
///
/// After a warm-up pass every `take` is served from the free list, so the
/// steady-state training loop performs no heap allocation in the compute
/// path. Buffers are handed out zero-filled (the kernels accumulate with
/// `+=`).
#[derive(Debug, Default)]
pub struct Scratch {
    /// Free buffers, sorted by capacity (ascending) for best-fit reuse.
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// An empty arena.
    pub fn new() -> Self {
        Scratch { free: Vec::new() }
    }

    /// Borrows a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest free buffer that fits (allocating only if none does).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let idx = self.free.partition_point(|b| b.capacity() < len);
        let mut buf = if idx < self.free.len() {
            self.free.remove(idx)
        } else {
            // No free buffer fits; recycle the largest (its allocation
            // grows once and then serves all future takes of this size).
            self.free.pop().unwrap_or_default()
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the arena.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let idx = self.free.partition_point(|b| b.capacity() < buf.capacity());
        self.free.insert(idx, buf);
    }

    /// Borrows a zero-filled tensor of the given shape.
    pub fn tensor(&mut self, shape: [usize; 4]) -> Tensor {
        Tensor::from_vec(shape, self.take(shape.iter().product()))
    }

    /// Returns a tensor's storage to the arena.
    pub fn recycle(&mut self, t: Tensor) {
        self.give(t.into_data());
    }

    /// Number of buffers currently free (diagnostics/tests).
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

// ---------------------------------------------------------------- kernels

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile.
const NR: usize = 8;
/// k-panel (cache block) for kernels whose accumulators live in `c`.
const KC: usize = 256;
/// Column panel (cache block).
const NC: usize = 1024;

/// `C[m,n] += A[m,k] · B[k,n]`, all row-major.
///
/// Bit-identical to [`reference::gemm`]: each `C[i,j]` receives its `k`
/// products one at a time in ascending-`k` order. Full tiles take the
/// [`crate::simd`] AVX path when it is enabled — lanes span the `NR`
/// output columns, so the per-element order is untouched.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::enabled() {
        B_PACK.with(|cell| {
            let pack = &mut cell.borrow_mut();
            // SAFETY: `simd::enabled()` requires AVX in CPUID.
            unsafe { gemm_avx(m, k, n, a, b, c, pack) };
        });
        return;
    }
    gemm_scalar(m, k, n, a, b, c)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
std::thread_local! {
    /// Reusable packed-`B` buffer for [`gemm`]'s AVX path (`KC`×`NC`
    /// worst case; thread-local so row-panel workers don't contend).
    static B_PACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Columns per AVX register tile: two [`crate::simd::F32x8`] per row.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const NRV: usize = 16;

/// AVX form of [`gemm`]: identical blocking to the scalar form, but each
/// `B` block is first packed into contiguous `kc`×[`NRV`] panels (pure
/// data movement — the reduction order cannot change) so the microkernel
/// streams `B` sequentially instead of striding a cache line per `k`
/// step. The register tile is `MR`×`NRV` (two [`crate::simd::F32x8`] per
/// row — eight independent accumulator chains, one broadcast of `A` per
/// row per `k` step feeding both halves); per lane the recurrence is
/// exactly the scalar tile's `acc += a[i,p] * b[p,j]` in ascending `p`,
/// with separate multiply and add instructions (no FMA contraction). The
/// inner loop runs on raw pointers: bounds are established once per tile
/// by the packing layout, so the hot path carries no checks.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn gemm_avx(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    pack: &mut Vec<f32>,
) {
    use crate::simd::F32x8;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let full_panels = nc / NRV;
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // Pack the full NRV-wide panels of this B block: panel `t`
            // holds columns jc+t*NRV.. as kc rows of NRV contiguous floats.
            pack.clear();
            pack.resize(full_panels * kc * NRV, 0.0);
            for t in 0..full_panels {
                let dst = &mut pack[t * kc * NRV..(t + 1) * kc * NRV];
                let j0 = jc + t * NRV;
                for (off, p) in (pc..pc + kc).enumerate() {
                    dst[off * NRV..off * NRV + NRV]
                        .copy_from_slice(&b[p * n + j0..p * n + j0 + NRV]);
                }
            }
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                if mr == MR {
                    let ap = a.as_ptr();
                    let cp = c.as_mut_ptr();
                    for t in 0..full_panels {
                        let j0 = jc + t * NRV;
                        let mut acc = [[F32x8::zero(); 2]; MR];
                        let mut arows = [std::ptr::null::<f32>(); MR];
                        for ir in 0..MR {
                            let crow = cp.add((i0 + ir) * n + j0);
                            acc[ir][0] = F32x8::load_ptr(crow);
                            acc[ir][1] = F32x8::load_ptr(crow.add(F32x8::LANES));
                            arows[ir] = ap.add((i0 + ir) * k + pc);
                        }
                        let mut pp = pack.as_ptr().add(t * kc * NRV);
                        for off in 0..kc {
                            let b0 = F32x8::load_ptr(pp);
                            let b1 = F32x8::load_ptr(pp.add(F32x8::LANES));
                            for ir in 0..MR {
                                let av = F32x8::splat(*arows[ir].add(off));
                                acc[ir][0] = acc[ir][0].add(av.mul(b0));
                                acc[ir][1] = acc[ir][1].add(av.mul(b1));
                            }
                            pp = pp.add(NRV);
                        }
                        for (ir, a) in acc.iter().enumerate() {
                            let crow = cp.add((i0 + ir) * n + j0);
                            a[0].store_ptr(crow);
                            a[1].store_ptr(crow.add(F32x8::LANES));
                        }
                    }
                }
                // Remainder columns (nc % NRV) — and remainder rows over
                // the whole block — use the scalar per-element loop (same
                // ascending-k order).
                let (rem_lo, rem_hi) = if mr == MR {
                    (jc + full_panels * NRV, jc + nc)
                } else {
                    (jc, jc + nc)
                };
                for i in i0..i0 + mr {
                    if rem_lo >= rem_hi {
                        break;
                    }
                    for j in rem_lo..rem_hi {
                        let mut acc = c[i * n + j];
                        for p in pc..pc + kc {
                            acc += a[i * k + p] * b[p * n + j];
                        }
                        c[i * n + j] = acc;
                    }
                }
            }
        }
    }
}

/// Scalar form of [`gemm`].
fn gemm_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            // Storing and reloading the accumulator tile between k-panels
            // is exact (f32 round-trips losslessly), so cache blocking
            // does not disturb the reduction order.
            let kc = KC.min(k - pc);
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                for j0 in (jc..jc + nc).step_by(NR) {
                    let nr = NR.min(jc + nc - j0);
                    if mr == MR && nr == NR {
                        tile_ab(k, n, a, b, c, i0, j0, pc, kc);
                    } else {
                        for i in i0..i0 + mr {
                            for j in j0..j0 + nr {
                                let mut acc = c[i * n + j];
                                for p in pc..pc + kc {
                                    acc += a[i * k + p] * b[p * n + j];
                                }
                                c[i * n + j] = acc;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Full `MR`×`NR` tile of [`gemm`]: accumulators in registers, `B` row
/// loaded once per `p` and reused across the `MR` rows. Row slices are
/// hoisted so the hot loop is bounds-check-free.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_ab(
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    j0: usize,
    pc: usize,
    kc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (ir, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[(i0 + ir) * n + j0..(i0 + ir) * n + j0 + NR]);
    }
    let arows: [&[f32]; MR] = std::array::from_fn(|ir| &a[(i0 + ir) * k + pc..][..kc]);
    for (off, p) in (pc..pc + kc).enumerate() {
        let brow: &[f32; NR] = b[p * n + j0..p * n + j0 + NR].try_into().expect("NR slice");
        for (ir, row) in acc.iter_mut().enumerate() {
            let av = arows[ir][off];
            for (jr, acc_v) in row.iter_mut().enumerate() {
                *acc_v += av * brow[jr];
            }
        }
    }
    for (ir, row) in acc.iter().enumerate() {
        c[(i0 + ir) * n + j0..(i0 + ir) * n + j0 + NR].copy_from_slice(row);
    }
}

/// `C[m,n] += A[m,k] · Bᵀ` where `B` is `[n,k]` row-major.
///
/// Bit-identical to [`reference::gemm_a_bt`]: each element's dot product
/// accumulates from zero in ascending-`k` order and is then added to `C`
/// once — so the full `k` extent stays in the register tile (no k-panel
/// blocking, which would split that single add).
///
/// The AVX path transposes sixteen `B` rows at a time into a `k`×16
/// panel (a thread-local buffer, so parallel conv-backward workers do
/// not contend) and keeps sixteen dot products per `A` row in two
/// registers: per lane that is still one dot from zero in ascending `k`,
/// then one add into `C` — the same element order as the scalar tile.
pub fn gemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::enabled() {
        BT_PANEL.with(|cell| {
            let panel = &mut cell.borrow_mut();
            // SAFETY: `simd::enabled()` requires AVX in CPUID.
            unsafe { gemm_a_bt_avx(m, k, n, a, b, c, panel) };
        });
        return;
    }
    gemm_a_bt_scalar(m, k, n, a, b, c)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
std::thread_local! {
    /// Reusable `k`×16 transposed-`B` panel for [`gemm_a_bt`]'s AVX path.
    static BT_PANEL: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// AVX form of [`gemm_a_bt`]: full [`NRV`]-column panels vectorized with
/// the same `MR`×`NRV` raw-pointer microkernel shape as [`gemm_avx`]
/// (here each accumulator is a dot from zero — the panel must span the
/// full `k` extent so that single add into `C` is never split), remainder
/// columns via the scalar dot loop.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_a_bt_avx(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    panel: &mut Vec<f32>,
) {
    use crate::simd::F32x8;
    panel.clear();
    panel.resize(k * NRV, 0.0);
    let mut j0 = 0;
    while j0 + NRV <= n {
        // Transpose the sixteen B rows into k×16 so each `p` step streams
        // one contiguous lane row.
        for jr in 0..NRV {
            let brow = &b[(j0 + jr) * k..][..k];
            for (p, &bv) in brow.iter().enumerate() {
                panel[p * NRV + jr] = bv;
            }
        }
        // Four A rows per pass: the panel row loaded once per `p` feeds
        // eight independent accumulator chains (each still its own dot
        // from zero in ascending `p`).
        let ap = a.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i0 = 0;
        while i0 + MR <= m {
            let mut arows = [std::ptr::null::<f32>(); MR];
            for (ir, arow) in arows.iter_mut().enumerate() {
                *arow = ap.add((i0 + ir) * k);
            }
            let mut acc = [[F32x8::zero(); 2]; MR];
            let mut pp = panel.as_ptr();
            for off in 0..k {
                let b0 = F32x8::load_ptr(pp);
                let b1 = F32x8::load_ptr(pp.add(F32x8::LANES));
                for ir in 0..MR {
                    let av = F32x8::splat(*arows[ir].add(off));
                    acc[ir][0] = acc[ir][0].add(av.mul(b0));
                    acc[ir][1] = acc[ir][1].add(av.mul(b1));
                }
                pp = pp.add(NRV);
            }
            for (ir, a) in acc.iter().enumerate() {
                let crow = cp.add((i0 + ir) * n + j0);
                F32x8::load_ptr(crow).add(a[0]).store_ptr(crow);
                F32x8::load_ptr(crow.add(F32x8::LANES))
                    .add(a[1])
                    .store_ptr(crow.add(F32x8::LANES));
            }
            i0 += MR;
        }
        for i in i0..m {
            let arow = &a[i * k..][..k];
            let mut acc0 = F32x8::zero();
            let mut acc1 = F32x8::zero();
            for (p, &av) in arow.iter().enumerate() {
                let avs = F32x8::splat(av);
                acc0 = acc0.add(avs.mul(F32x8::load(&panel[p * NRV..])));
                acc1 = acc1.add(avs.mul(F32x8::load(&panel[p * NRV + F32x8::LANES..])));
            }
            let crow = &mut c[i * n + j0..][..NRV];
            F32x8::load(crow).add(acc0).store(crow);
            F32x8::load(&crow[F32x8::LANES..])
                .add(acc1)
                .store(&mut crow[F32x8::LANES..]);
        }
        j0 += NRV;
    }
    // Remainder columns (n % 16): the scalar dot, element order unchanged.
    if j0 < n {
        for i in 0..m {
            let arow = &a[i * k..][..k];
            for j in j0..n {
                let brow = &b[j * k..][..k];
                let mut acc = 0.0f32;
                for (p, &av) in arow.iter().enumerate() {
                    acc += av * brow[p];
                }
                c[i * n + j] += acc;
            }
        }
    }
}

/// Scalar form of [`gemm_a_bt`]: both operands stream contiguously in
/// `k`; a lean 2×4 tile gives eight independent accumulator chains (ILP)
/// without spilling.
fn gemm_a_bt_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    const TM: usize = 2;
    const TN: usize = 4;
    let mut i0 = 0;
    while i0 < m {
        let mr = TM.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nr = TN.min(n - j0);
            if mr == TM && nr == TN {
                let a0 = &a[i0 * k..][..k];
                let a1 = &a[(i0 + 1) * k..][..k];
                let brows: [&[f32]; TN] = std::array::from_fn(|jr| &b[(j0 + jr) * k..][..k]);
                let mut acc = [[0.0f32; TN]; TM];
                for p in 0..k {
                    let (x0, x1) = (a0[p], a1[p]);
                    for jr in 0..TN {
                        let bv = brows[jr][p];
                        acc[0][jr] += x0 * bv;
                        acc[1][jr] += x1 * bv;
                    }
                }
                for (ir, row) in acc.iter().enumerate() {
                    for (jr, acc_v) in row.iter().enumerate() {
                        c[(i0 + ir) * n + j0 + jr] += acc_v;
                    }
                }
            } else {
                for i in i0..i0 + mr {
                    let arow = &a[i * k..][..k];
                    for j in j0..j0 + nr {
                        let brow = &b[j * k..][..k];
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            acc += arow[p] * brow[p];
                        }
                        c[i * n + j] += acc;
                    }
                }
            }
            j0 += TN;
        }
        i0 += TM;
    }
}

/// `C[m,n] += Aᵀ · B` where `A` is `[k,m]` and `B` is `[k,n]`, row-major.
///
/// Bit-identical to [`reference::gemm_at_b`]: `k` ascending in the outer
/// loop, each product added directly into its `C` element. The axpy shape
/// is kept deliberately — the `C` row is a contiguous run of independent
/// lanes, which the AVX form vectorizes eight at a time (same per-element
/// order); a register tile would serialize strided loads instead. Row
/// slices are hoisted so the inner loop is bounds-check-free.
pub fn gemm_at_b(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(a.len() >= k * m && b.len() >= k * n && c.len() >= m * n);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::enabled() {
        // SAFETY: `simd::enabled()` requires AVX in CPUID.
        unsafe { gemm_at_b_avx(m, k, n, a, b, c) };
        return;
    }
    gemm_at_b_scalar(m, k, n, a, b, c)
}

/// AVX form of [`gemm_at_b`]: each `C` row is an axpy of independent
/// lanes.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn gemm_at_b_avx(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    use crate::simd::F32x8;
    let nv = n / F32x8::LANES * F32x8::LANES;
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            let avs = F32x8::splat(av);
            for j in (0..nv).step_by(F32x8::LANES) {
                F32x8::load(&crow[j..])
                    .add(avs.mul(F32x8::load(&brow[j..])))
                    .store(&mut crow[j..]);
            }
            for (cv, &bv) in crow[nv..].iter_mut().zip(&brow[nv..]) {
                *cv += av * bv;
            }
        }
    }
}

/// Scalar form of [`gemm_at_b`].
fn gemm_at_b_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// [`gemm`] with output rows split into panels across `pool` workers.
///
/// Each worker runs the serial kernel on a disjoint row range, so results
/// are bit-identical for every pool width — including when the
/// [`plan_workers`] floor shrinks the effective width (small products run
/// serial rather than paying thread-spawn overhead).
pub fn gemm_rows_parallel(
    pool: &ThreadPool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let workers = plan_workers(pool.threads(), m * k * n);
    if workers == 1 || m < 2 * MR {
        gemm(m, k, n, a, b, c);
        return;
    }
    let ranges = partition(m, workers);
    let sizes: Vec<usize> = ranges.iter().map(|r| r.len() * n).collect();
    let panels = split_by_sizes(&mut c[..m * n], &sizes);
    let jobs: Vec<_> = ranges
        .into_iter()
        .zip(panels)
        .map(|(r, cpanel)| {
            let apanel = &a[r.start * k..r.end * k];
            move || gemm(r.len(), k, n, apanel, b, cpanel)
        })
        .collect();
    pool.run(jobs);
}

// -------------------------------------------------------------- reference

/// The scalar reference kernels and the original convolution built on
/// them, preserved verbatim as the bit-exactness oracle for the parity
/// suite and the single-thread baseline for the `nn_throughput`
/// benchmark.
pub mod reference {
    use crate::tensor::Tensor;

    fn valid_range(w: usize, kw: usize, pad: usize) -> (usize, usize) {
        let lo = pad.saturating_sub(kw);
        let hi = (w + pad - kw).min(w);
        (lo, hi)
    }

    fn im2col(in_c: usize, k: usize, x: &Tensor, n: usize, col: &mut [f32]) {
        let [_, _, h, w] = x.shape();
        let pad = k / 2;
        let hw = h * w;
        col.fill(0.0);
        for ci in 0..in_c {
            for kh in 0..k {
                for kw in 0..k {
                    let q = (ci * k + kh) * k + kw;
                    let dst = &mut col[q * hw..(q + 1) * hw];
                    for oh in 0..h {
                        let ih = oh as isize + kh as isize - pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        let ih = ih as usize;
                        let (ow_lo, ow_hi) = valid_range(w, kw, pad);
                        if ow_lo >= ow_hi {
                            continue;
                        }
                        let iw_lo = ow_lo + kw - pad;
                        let src_base = x.index(n, ci, ih, iw_lo);
                        let dst_base = oh * w + ow_lo;
                        let len = ow_hi - ow_lo;
                        dst[dst_base..dst_base + len]
                            .copy_from_slice(&x.data()[src_base..src_base + len]);
                    }
                }
            }
        }
    }

    fn col2im(in_c: usize, k: usize, col: &[f32], gin: &mut Tensor, n: usize) {
        let [_, _, h, w] = gin.shape();
        let pad = k / 2;
        let hw = h * w;
        for ci in 0..in_c {
            for kh in 0..k {
                for kw in 0..k {
                    let q = (ci * k + kh) * k + kw;
                    let src = &col[q * hw..(q + 1) * hw];
                    for oh in 0..h {
                        let ih = oh as isize + kh as isize - pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        let ih = ih as usize;
                        let (ow_lo, ow_hi) = valid_range(w, kw, pad);
                        if ow_lo >= ow_hi {
                            continue;
                        }
                        let iw_lo = ow_lo + kw - pad;
                        let dst_base = gin.index(n, ci, ih, iw_lo);
                        let src_base = oh * w + ow_lo;
                        let gdata = gin.data_mut();
                        for t in 0..(ow_hi - ow_lo) {
                            gdata[dst_base + t] += src[src_base + t];
                        }
                    }
                }
            }
        }
    }

    /// Output of [`conv2d_forward`]: the convolution result plus the
    /// per-sample im2col panels (needed by [`conv2d_backward`]).
    pub struct ConvForward {
        /// The convolution output.
        pub out: Tensor,
        /// Concatenated im2col panels, `[n · in_c·k·k · h·w]`.
        pub cols: Vec<f32>,
    }

    /// The original (pre-compute-engine) stride-1, same-padding conv
    /// forward: per-sample im2col then naive GEMM, single-threaded.
    pub fn conv2d_forward(
        in_c: usize,
        out_c: usize,
        k: usize,
        weight: &[f32],
        bias: Option<&[f32]>,
        x: &Tensor,
    ) -> ConvForward {
        let [n, _, h, w] = x.shape();
        let hw = h * w;
        let q = in_c * k * k;
        let mut out = Tensor::zeros([n, out_c, h, w]);
        let mut cols = vec![0.0f32; n * q * hw];
        for s in 0..n {
            let col = &mut cols[s * q * hw..(s + 1) * q * hw];
            im2col(in_c, k, x, s, col);
            let dst = &mut out.data_mut()[s * out_c * hw..(s + 1) * out_c * hw];
            gemm(out_c, q, hw, weight, col, dst);
            if let Some(bias) = bias {
                for o in 0..out_c {
                    let bv = bias[o];
                    for v in &mut dst[o * hw..(o + 1) * hw] {
                        *v += bv;
                    }
                }
            }
        }
        ConvForward { out, cols }
    }

    /// Gradients produced by [`conv2d_backward`].
    pub struct ConvBackward {
        /// ∂L/∂input.
        pub grad_in: Tensor,
        /// ∂L/∂weight, `[out_c · in_c·k·k]`.
        pub weight_grad: Vec<f32>,
        /// ∂L/∂bias when the convolution has one.
        pub bias_grad: Option<Vec<f32>>,
    }

    /// The original conv backward over panels captured by
    /// [`conv2d_forward`].
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_backward(
        in_c: usize,
        out_c: usize,
        k: usize,
        weight: &[f32],
        has_bias: bool,
        cols: &[f32],
        in_shape: [usize; 4],
        grad_out: &Tensor,
    ) -> ConvBackward {
        let [n, oc, h, w] = grad_out.shape();
        let hw = h * w;
        let q = in_c * k * k;
        let mut grad_in = Tensor::zeros(in_shape);
        let mut weight_grad = vec![0.0f32; out_c * q];
        let mut bias_grad = has_bias.then(|| vec![0.0f32; out_c]);
        let mut grad_col = vec![0.0f32; q * hw];
        for s in 0..n {
            let go = &grad_out.data()[s * oc * hw..(s + 1) * oc * hw];
            let col = &cols[s * q * hw..(s + 1) * q * hw];
            gemm_a_bt(oc, hw, q, go, col, &mut weight_grad);
            if let Some(bg) = &mut bias_grad {
                for o in 0..oc {
                    bg[o] += go[o * hw..(o + 1) * hw].iter().sum::<f32>();
                }
            }
            grad_col.fill(0.0);
            gemm_at_b(q, oc, hw, weight, go, &mut grad_col);
            col2im(in_c, k, &grad_col, &mut grad_in, s);
        }
        ConvBackward {
            grad_in,
            weight_grad,
            bias_grad,
        }
    }
    /// `C[m,n] += A[m,k] · B[k,n]`, all row-major (axpy ordering).
    pub fn gemm(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * kk..(i + 1) * kk];
            let crow = &mut c[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }

    /// `C[m,n] += A[m,k] · Bᵀ` where `B` is `[n,k]` row-major.
    pub fn gemm_a_bt(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * kk..(i + 1) * kk];
            for j in 0..n {
                let brow = &b[j * kk..(j + 1) * kk];
                let dot: f32 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
                c[i * n + j] += dot;
            }
        }
    }

    /// `C[m,n] += Aᵀ · B` where `A` is `[k,m]` and `B` is `[k,n]`.
    pub fn gemm_at_b(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for p in 0..kk {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
    }

    #[test]
    fn gemm_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (13, 300, 257),
            (12, 100, 64),
        ] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let mut c0 = randv(&mut rng, m * n);
            let mut c1 = c0.clone();
            reference::gemm(m, k, n, &a, &b, &mut c0);
            gemm(m, k, n, &a, &b, &mut c1);
            assert_eq!(c0, c1, "gemm mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_a_bt_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (5, 9, 3), (8, 64, 12), (7, 600, 75)] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, n * k);
            let mut c0 = randv(&mut rng, m * n);
            let mut c1 = c0.clone();
            reference::gemm_a_bt(m, k, n, &a, &b, &mut c0);
            gemm_a_bt(m, k, n, &a, &b, &mut c1);
            assert_eq!(c0, c1, "gemm_a_bt mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_at_b_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (9, 4, 6), (300, 12, 64), (75, 600, 9)] {
            let a = randv(&mut rng, k * m);
            let b = randv(&mut rng, k * n);
            let mut c0 = randv(&mut rng, m * n);
            let mut c1 = c0.clone();
            reference::gemm_at_b(m, k, n, &a, &b, &mut c0);
            gemm_at_b(m, k, n, &a, &b, &mut c1);
            assert_eq!(c0, c1, "gemm_at_b mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_rows_bit_identical_across_widths() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, n) = (37, 50, 33);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let mut serial = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut serial);
        for width in [2, 3, 4, 16] {
            let mut par = vec![0.0; m * n];
            gemm_rows_parallel(&ThreadPool::new(width), m, k, n, &a, &b, &mut par);
            assert_eq!(serial, par, "width {width} diverged");
        }
    }

    #[test]
    fn plan_workers_floors_small_work() {
        // Tiny products run serial regardless of the configured budget.
        assert_eq!(plan_workers(8, 0), 1);
        assert_eq!(plan_workers(8, MIN_FLOPS_PER_WORKER - 1), 1);
        // Each extra worker requires another MIN_FLOPS_PER_WORKER of work.
        assert_eq!(plan_workers(8, 3 * MIN_FLOPS_PER_WORKER), 3);
        // Big work saturates at the configured budget.
        assert_eq!(plan_workers(4, 100 * MIN_FLOPS_PER_WORKER), 4);
        assert_eq!(plan_workers(1, usize::MAX), 1);
    }

    #[test]
    fn partition_covers_everything_contiguously() {
        for tasks in 0..40 {
            for parts in 1..9 {
                let ranges = partition(tasks, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, tasks);
                assert!(ranges.len() <= parts);
            }
        }
    }

    #[test]
    fn scratch_reuses_allocations() {
        let mut s = Scratch::new();
        let a = s.take(100);
        let cap = a.capacity();
        s.give(a);
        let b = s.take(60);
        assert_eq!(b.len(), 60);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(b.capacity(), cap, "buffer was not reused");
        s.give(b);
        // A larger request recycles the existing allocation (grown once).
        let c = s.take(200);
        assert_eq!(s.free_buffers(), 0);
        s.give(c);
        assert_eq!(s.free_buffers(), 1);
    }

    #[test]
    fn scratch_tensor_roundtrip() {
        let mut s = Scratch::new();
        let t = s.tensor([2, 3, 1, 1]);
        assert_eq!(t.shape(), [2, 3, 1, 1]);
        s.recycle(t);
        assert_eq!(s.free_buffers(), 1);
    }

    #[test]
    fn pool_runs_all_jobs() {
        let done: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<_> = done
            .iter()
            .map(|d| {
                move || {
                    d.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        ThreadPool::new(3).run(jobs);
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }
}
