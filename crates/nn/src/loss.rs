//! Loss functions returning `(loss, ∂loss/∂prediction)` pairs.
//!
//! The DQN trainer only updates the Q-values of actions actually taken, so
//! masked variants are provided: masked-out entries contribute neither loss
//! nor gradient. Losses are averaged over the *selected* entries.

use crate::tensor::Tensor;

/// Mean-squared-error loss and gradient.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse_loss_grad(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    masked(pred, target, None, |d| (d * d, 2.0 * d))
}

/// Huber (smooth-L1) loss with threshold `delta` and its gradient — the
/// standard DQN choice for robustness to large TD errors.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn huber_loss_grad(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    masked(pred, target, None, |d| huber(d, delta))
}

/// MSE over entries where `mask > 0.5` only.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn masked_mse_loss_grad(pred: &Tensor, target: &Tensor, mask: &Tensor) -> (f32, Tensor) {
    masked(pred, target, Some(mask), |d| (d * d, 2.0 * d))
}

/// Huber loss over entries where `mask > 0.5` only.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn masked_huber_loss_grad(
    pred: &Tensor,
    target: &Tensor,
    mask: &Tensor,
    delta: f32,
) -> (f32, Tensor) {
    masked(pred, target, Some(mask), |d| huber(d, delta))
}

fn huber(d: f32, delta: f32) -> (f32, f32) {
    if d.abs() <= delta {
        (0.5 * d * d, d)
    } else {
        (delta * (d.abs() - 0.5 * delta), delta * d.signum())
    }
}

fn masked(
    pred: &Tensor,
    target: &Tensor,
    mask: Option<&Tensor>,
    f: impl Fn(f32) -> (f32, f32),
) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    if let Some(m) = mask {
        assert_eq!(pred.shape(), m.shape(), "mask shape mismatch");
    }
    let mut grad = Tensor::zeros(pred.shape());
    let mut total = 0.0f64;
    let mut count = 0usize;
    for i in 0..pred.len() {
        if let Some(m) = mask {
            if m.data()[i] <= 0.5 {
                continue;
            }
        }
        let d = pred.data()[i] - target.data()[i];
        let (l, g) = f(d);
        total += l as f64;
        grad.data_mut()[i] = g;
        count += 1;
    }
    let count = count.max(1);
    grad.scale(1.0 / count as f32);
    ((total / count as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_on_known_values() {
        let p = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 3.0]);
        let t = Tensor::from_vec([1, 1, 1, 2], vec![0.0, 1.0]);
        let (l, g) = mse_loss_grad(&p, &t);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert_eq!(g.data(), &[1.0, 2.0]); // 2d/n
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let p = Tensor::from_vec([1, 1, 1, 2], vec![0.5, 5.0]);
        let t = Tensor::zeros([1, 1, 1, 2]);
        let (l, g) = huber_loss_grad(&p, &t, 1.0);
        let expect = (0.5 * 0.25 + (5.0 - 0.5)) / 2.0;
        assert!((l - expect).abs() < 1e-6);
        assert_eq!(g.data(), &[0.25, 0.5]); // d/n inside; delta/n outside
    }

    #[test]
    fn mask_selects_entries() {
        let p = Tensor::from_vec([1, 1, 1, 3], vec![1.0, 100.0, 2.0]);
        let t = Tensor::zeros([1, 1, 1, 3]);
        let m = Tensor::from_vec([1, 1, 1, 3], vec![1.0, 0.0, 1.0]);
        let (l, g) = masked_mse_loss_grad(&p, &t, &m);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert_eq!(g.data()[1], 0.0, "masked entry gets no gradient");
        assert!(g.data()[0] > 0.0 && g.data()[2] > 0.0);
    }

    #[test]
    fn all_masked_is_zero_loss() {
        let p = Tensor::ones([1, 1, 1, 2]);
        let t = Tensor::zeros([1, 1, 1, 2]);
        let m = Tensor::zeros([1, 1, 1, 2]);
        let (l, g) = masked_huber_loss_grad(&p, &t, &m, 1.0);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }
}
