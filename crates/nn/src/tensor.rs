//! A 4-dimensional NCHW tensor.

use serde::{Deserialize, Serialize};

/// A dense `f32` tensor with NCHW layout `[batch, channels, height, width]`.
///
/// All layers in this crate operate on 4-D tensors; vectors are represented
/// as `[n, c, 1, 1]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: [usize; 4],
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: [usize; 4]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: [usize; 4]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![1.0; len],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: [usize; 4], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "tensor data length mismatch"
        );
        Tensor { shape, data }
    }

    /// The tensor shape `[n, c, h, w]`.
    #[inline]
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its storage (for recycling into a
    /// [`crate::compute::Scratch`] arena).
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Copies `other` into `self`, reusing the existing allocation when
    /// the volumes match (the zero-allocation path for cached activations).
    pub fn copy_from(&mut self, other: &Tensor) {
        self.shape = other.shape;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Flat index of `[n, c, h, w]`.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.index(n, c, h, w);
        &mut self.data[i]
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "tensor shape mismatch");
        crate::simd::add_assign(&mut self.data, &other.data);
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_indexing() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        *t.at_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at(1, 2, 3, 4), 7.0);
        assert_eq!(t.data()[119], 7.0, "last element in row-major NCHW");
    }

    #[test]
    fn arithmetic() {
        let mut a = Tensor::ones([1, 1, 2, 2]);
        let b = Tensor::ones([1, 1, 2, 2]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.0; 4]);
        assert_eq!(a.max_abs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_len() {
        Tensor::from_vec([1, 1, 2, 2], vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_checks_shape() {
        let mut a = Tensor::zeros([1, 1, 2, 2]);
        a.add_assign(&Tensor::zeros([1, 1, 2, 3]));
    }
}
