//! Parameter serialization and network state copies.
//!
//! Networks are rebuilt from their architecture (code) and re-filled with
//! parameters; only the flat parameter tensors are stored. The same
//! mechanism implements Double-DQN target-network synchronization: read the
//! online network's state, load it into the target network.

use crate::layers::Layer;

/// Extracts every parameter tensor, followed by every state buffer
/// (batch-norm running statistics), in visit order.
pub fn state(net: &mut dyn Layer) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| out.push(p.data.clone()));
    net.visit_buffers(&mut |b| out.push(b.clone()));
    out
}

/// Loads tensors produced by [`state`] back into a network of the same
/// architecture (parameters first, then buffers).
///
/// # Errors
///
/// Fails if the tensor count or any tensor length differs.
pub fn load_state(net: &mut dyn Layer, state: &[Vec<f32>]) -> Result<(), String> {
    let mut idx = 0usize;
    let mut error: Option<String> = None;
    {
        let mut fill = |dst: &mut [f32]| {
            if error.is_some() {
                return;
            }
            match state.get(idx) {
                Some(s) if s.len() == dst.len() => dst.copy_from_slice(s),
                Some(s) => {
                    error = Some(format!(
                        "tensor {idx}: expected {} values, got {}",
                        dst.len(),
                        s.len()
                    ))
                }
                None => error = Some(format!("missing tensor {idx}")),
            }
            idx += 1;
        };
        net.visit_params(&mut |p| fill(&mut p.data));
        net.visit_buffers(&mut |b| fill(b));
    }
    if let Some(e) = error {
        return Err(e);
    }
    let expected = idx;
    if state.len() != expected {
        return Err(format!(
            "state has {} tensors, network expects {expected}",
            state.len()
        ));
    }
    Ok(())
}

/// Encodes a network's parameters as little-endian bytes.
pub fn to_bytes(net: &mut dyn Layer) -> Vec<u8> {
    let tensors = state(net);
    let mut out = Vec::new();
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for t in &tensors {
        out.extend_from_slice(&(t.len() as u32).to_le_bytes());
        for v in t {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes parameters encoded by [`to_bytes`] into a network.
///
/// # Errors
///
/// Fails on truncated input or architecture mismatch.
pub fn from_bytes(net: &mut dyn Layer, bytes: &[u8]) -> Result<(), String> {
    let mut cur = 0usize;
    let read_u32 = |cur: &mut usize| -> Result<u32, String> {
        let end = *cur + 4;
        let s = bytes.get(*cur..end).ok_or("truncated state")?;
        *cur = end;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    };
    let count = read_u32(&mut cur)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u32(&mut cur)? as usize;
        let mut t = Vec::with_capacity(len);
        for _ in 0..len {
            let end = cur + 4;
            let s = bytes.get(cur..end).ok_or("truncated tensor data")?;
            cur = end;
            t.push(f32::from_le_bytes(s.try_into().unwrap()));
        }
        tensors.push(t);
    }
    load_state(net, &tensors)
}

/// A 64-bit FNV-1a digest over parameter tensors, for cheap integrity
/// checks of checkpointed network state (two identical states always agree;
/// any flipped bit almost surely disagrees).
pub fn digest(tensors: &[Vec<f32>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for t in tensors {
        for b in (t.len() as u64).to_le_bytes() {
            mix(b);
        }
        for v in t {
            for b in v.to_le_bytes() {
                mix(b);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, LeakyReLU, Sequential};
    use crate::tensor::Tensor;

    fn build() -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, 3, 1)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(4, 1, 1, 2)),
        ])
    }

    #[test]
    fn state_roundtrip_preserves_outputs() {
        let mut a = build();
        let mut b = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, 3, 99)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(4, 1, 1, 98)),
        ]);
        let x = Tensor::ones([1, 2, 4, 4]);
        assert_ne!(a.forward(&x, false).data(), b.forward(&x, false).data());
        let s = state(&mut a);
        load_state(&mut b, &s).unwrap();
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut a = build();
        let bytes = to_bytes(&mut a);
        let mut b = build();
        b.visit_params(&mut |p| p.data.iter_mut().for_each(|v| *v = 0.0));
        from_bytes(&mut b, &bytes).unwrap();
        let x = Tensor::ones([1, 2, 3, 3]);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn mismatched_architecture_errors() {
        let mut a = build();
        let s = state(&mut a);
        let mut tiny = Sequential::new(vec![Box::new(Conv2d::new(1, 1, 1, 0)) as Box<_>]);
        assert!(load_state(&mut tiny, &s).is_err());
    }

    #[test]
    fn digest_distinguishes_states() {
        let mut a = build();
        let s = state(&mut a);
        let d = digest(&s);
        assert_eq!(d, digest(&s), "digest is deterministic");
        let mut tweaked = s.clone();
        tweaked[0][0] += 1.0;
        assert_ne!(d, digest(&tweaked));
        // Tensor boundaries matter: [[x],[y]] != [[x,y]].
        let split = vec![vec![1.0f32], vec![2.0]];
        let joined = vec![vec![1.0f32, 2.0]];
        assert_ne!(digest(&split), digest(&joined));
    }

    #[test]
    fn truncated_bytes_error() {
        let mut a = build();
        let mut bytes = to_bytes(&mut a);
        bytes.truncate(bytes.len() / 2);
        let mut b = build();
        assert!(from_bytes(&mut b, &bytes).is_err());
    }
}
