//! Explicit f32 SIMD lanes for the compute engine (DESIGN.md §14).
//!
//! This module is the workspace's one home for vector intrinsics: a
//! `compat`-style [`F32x8`] wrapper over the x86-64 AVX registers, the
//! runtime dispatch switch ([`enabled`]/[`set_enabled`]), and the
//! vectorized elementwise hot paths shared by the layers (LReLU, BN
//! normalize, bias add, residual add, axpy). The GEMM register tiles in
//! [`crate::compute`] build on [`F32x8`] directly.
//!
//! # The bit-identity contract
//!
//! Every function here produces results **bit-identical** to its scalar
//! fallback (and therefore to `compute::reference`), which is what lets
//! the engine switch freely between vector and scalar paths — across
//! machines, feature configurations, and the [`set_enabled`] override —
//! without perturbing training trajectories or checkpoint resume. Three
//! rules make that possible:
//!
//! 1. **Lanes run across independent output elements, never across a
//!    reduction.** A vectorized loop computes eight *separate* outputs per
//!    instruction; per-element reduction order (ascending `k`, one product
//!    at a time) is untouched.
//! 2. **Multiply and add stay separate instructions.** FMA contracts
//!    `a*b + c` into one rounding where the scalar code has two, which
//!    changes low bits — so `_mm256_fmadd_ps` is banned from this
//!    codebase even where the CPU offers it.
//! 3. **Branch-free selects use exact multiplicative identities.** LReLU
//!    becomes `x * s` with `s ∈ {1.0, α}`; `x * 1.0` is exact for every
//!    finite and infinite `f32`, so the blend is bitwise equal to the
//!    branchy scalar form. One caveat: the *historical* branchy LReLU
//!    (`if v <= 0 { v *= α }`) left NaN untouched, while the
//!    multiplicative form scales NaN lanes (`NaN > 0` is false, so
//!    `s = α`). The product is still NaN — only its payload/sign bits
//!    are platform-defined — and the vector and scalar paths multiply
//!    with the same operand order, so *they* stay bit-identical to each
//!    other. What is lost is bit-equivalence with the pre-SIMD kernels
//!    on NaN activations, i.e. only after training has already diverged.
//!
//! # Dispatch
//!
//! The vector paths compile only under the (default-on) `simd` cargo
//! feature on x86-64; at runtime they additionally require AVX in CPUID
//! (cached on first query) and the process-wide [`set_enabled`] switch
//! (default on, `PREFIXRL_NN_SIMD=0` clears it at startup — the same
//! shape as the `PREFIXRL_NN_THREADS` budget). Everything falls back to
//! the scalar forms otherwise, so non-x86 targets and `--no-default-
//! features` builds are first-class, just slower.
//!
//! # Adding a lane width
//!
//! Wider (or narrower) registers slot in as a sibling of [`F32x8`]: wrap
//! the arch type, expose the same `splat`/`load`/`store`/`add`/`sub`/
//! `mul`/`select_gt_zero` surface, keep multiply and add separate, and
//! vectorize only across outputs. Any function obeying those rules is
//! automatically bit-identical to the scalar fallback, so the parity
//! suite (`tests/simd_parity.rs`) needs no new oracles — only new shape
//! coverage for the added remainder widths.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

// ------------------------------------------------------------- dispatch

/// Whether the vector paths were compiled in at all.
const COMPILED: bool = cfg!(all(feature = "simd", target_arch = "x86_64"));

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn cpu_has_avx() -> bool {
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

fn force_scalar() -> &'static AtomicBool {
    static FORCE: OnceLock<AtomicBool> = OnceLock::new();
    FORCE.get_or_init(|| {
        let off = std::env::var("PREFIXRL_NN_SIMD").is_ok_and(|v| v == "0" || v == "off");
        AtomicBool::new(off)
    })
}

/// Whether the vector paths are active: compiled in (`simd` feature,
/// x86-64), supported by the CPU (AVX), and not switched off via
/// [`set_enabled`] or `PREFIXRL_NN_SIMD=0`.
///
/// Results are bit-identical either way; only throughput changes.
pub fn enabled() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        COMPILED && cpu_has_avx() && !force_scalar().load(Ordering::Relaxed)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Switches the vector paths on or off process-wide at runtime (used by
/// the parity suite and the SIMD-vs-scalar benchmark rows to compare both
/// engines in one process). A no-op when the paths are not compiled in or
/// the CPU lacks AVX.
pub fn set_enabled(on: bool) {
    force_scalar().store(!on, Ordering::Relaxed);
}

/// Whether the `simd` feature was compiled in for this target (reported
/// by benchmarks so BENCH_nn.json records which engine produced it).
pub fn compiled() -> bool {
    COMPILED
}

// ------------------------------------------------------------ the lanes

/// Eight f32 lanes over one AVX `__m256` register.
///
/// All methods are `unsafe` and `#[inline(always)]`: callers wrap their
/// loops in an `#[target_feature(enable = "avx")]` function guarded by
/// [`enabled`], and the methods inline into it so the compiler emits bare
/// VEX instructions. Loads and stores are unaligned (`loadu`/`storeu`) —
/// tensor rows have no alignment guarantee.
///
/// Deliberately absent: any fused multiply-add. See the module docs.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Clone, Copy, Debug)]
pub struct F32x8(core::arch::x86_64::__m256);

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl F32x8 {
    /// Lane count.
    pub const LANES: usize = 8;

    /// All lanes set to `v`.
    ///
    /// # Safety
    ///
    /// Requires AVX (call under `#[target_feature(enable = "avx")]`).
    #[inline(always)]
    pub unsafe fn splat(v: f32) -> Self {
        F32x8(core::arch::x86_64::_mm256_set1_ps(v))
    }

    /// All lanes zero.
    ///
    /// # Safety
    ///
    /// Requires AVX.
    #[inline(always)]
    pub unsafe fn zero() -> Self {
        F32x8(core::arch::x86_64::_mm256_setzero_ps())
    }

    /// Unaligned load of `src[0..8]`.
    ///
    /// # Safety
    ///
    /// Requires AVX and `src.len() >= 8`.
    #[inline(always)]
    pub unsafe fn load(src: &[f32]) -> Self {
        debug_assert!(src.len() >= Self::LANES);
        F32x8(core::arch::x86_64::_mm256_loadu_ps(src.as_ptr()))
    }

    /// Unaligned store into `dst[0..8]`.
    ///
    /// # Safety
    ///
    /// Requires AVX and `dst.len() >= 8`.
    #[inline(always)]
    pub unsafe fn store(self, dst: &mut [f32]) {
        debug_assert!(dst.len() >= Self::LANES);
        core::arch::x86_64::_mm256_storeu_ps(dst.as_mut_ptr(), self.0);
    }

    /// Unaligned load of `src[0..8]` through a raw pointer — for the GEMM
    /// microkernels, whose slice bounds are established once per tile so
    /// the per-`k` loop carries no checks.
    ///
    /// # Safety
    ///
    /// Requires AVX and 8 readable floats at `src`.
    #[inline(always)]
    pub unsafe fn load_ptr(src: *const f32) -> Self {
        F32x8(core::arch::x86_64::_mm256_loadu_ps(src))
    }

    /// Unaligned store of 8 lanes through a raw pointer.
    ///
    /// # Safety
    ///
    /// Requires AVX and 8 writable floats at `dst`.
    #[inline(always)]
    pub unsafe fn store_ptr(self, dst: *mut f32) {
        core::arch::x86_64::_mm256_storeu_ps(dst, self.0);
    }

    /// Lanewise `self + rhs`.
    ///
    /// # Safety
    ///
    /// Requires AVX.
    #[inline(always)]
    pub unsafe fn add(self, rhs: Self) -> Self {
        F32x8(core::arch::x86_64::_mm256_add_ps(self.0, rhs.0))
    }

    /// Lanewise `self - rhs`.
    ///
    /// # Safety
    ///
    /// Requires AVX.
    #[inline(always)]
    pub unsafe fn sub(self, rhs: Self) -> Self {
        F32x8(core::arch::x86_64::_mm256_sub_ps(self.0, rhs.0))
    }

    /// Lanewise `self * rhs` (a separate rounding from any following add —
    /// never contracted to FMA).
    ///
    /// # Safety
    ///
    /// Requires AVX.
    #[inline(always)]
    pub unsafe fn mul(self, rhs: Self) -> Self {
        F32x8(core::arch::x86_64::_mm256_mul_ps(self.0, rhs.0))
    }

    /// Lanewise select: `if self > 0.0 { a } else { b }` (NaN lanes take
    /// `b`, matching scalar `v > 0.0` being false for NaN).
    ///
    /// # Safety
    ///
    /// Requires AVX.
    #[inline(always)]
    pub unsafe fn select_gt_zero(self, a: Self, b: Self) -> Self {
        use core::arch::x86_64::*;
        let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(self.0, _mm256_setzero_ps());
        F32x8(_mm256_blendv_ps(b.0, a.0, mask))
    }
}

// ----------------------------------------------------- elementwise ops
//
// Each operation has a scalar form and (under the feature) an AVX twin
// whose vector body applies the identical per-element formula, with the
// scalar form finishing the `len % 8` tail. The public function picks at
// runtime. The scalar forms are written multiplicatively (rule 3 above)
// so both paths are bit-identical by construction.

macro_rules! dispatch {
    ($avx:ident($($arg:expr),*), $scalar:ident) => {{
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if enabled() {
            // SAFETY: `enabled()` is true only when CPUID reports AVX.
            unsafe { $avx($($arg),*) };
            return;
        }
        $scalar($($arg),*)
    }};
}

/// In-place LReLU: `v = v * (v > 0 ? 1.0 : alpha)` — the cache-free
/// inference rectifier ([`crate::LeakyReLU::apply`]).
pub fn lrelu_apply(buf: &mut [f32], alpha: f32) {
    dispatch!(lrelu_apply_avx(buf, alpha), lrelu_apply_scalar)
}

fn lrelu_apply_scalar(buf: &mut [f32], alpha: f32) {
    for v in buf {
        let s = if *v > 0.0 { 1.0 } else { alpha };
        *v *= s;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn lrelu_apply_avx(buf: &mut [f32], alpha: f32) {
    let ones = F32x8::splat(1.0);
    let alphas = F32x8::splat(alpha);
    let mut chunks = buf.chunks_exact_mut(F32x8::LANES);
    for c in &mut chunks {
        let v = F32x8::load(c);
        v.mul(v.select_gt_zero(ones, alphas)).store(c);
    }
    lrelu_apply_scalar(chunks.into_remainder(), alpha);
}

/// Training-mode LReLU forward: `out = x * s`, recording the per-element
/// scale `s ∈ {1.0, alpha}` for backward.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn lrelu_forward_scale(x: &[f32], out: &mut [f32], scale: &mut [f32], alpha: f32) {
    assert!(
        x.len() == out.len() && x.len() == scale.len(),
        "length mismatch"
    );
    dispatch!(
        lrelu_forward_scale_avx(x, out, scale, alpha),
        lrelu_forward_scale_scalar
    )
}

fn lrelu_forward_scale_scalar(x: &[f32], out: &mut [f32], scale: &mut [f32], alpha: f32) {
    for ((&v, o), s) in x.iter().zip(out.iter_mut()).zip(scale.iter_mut()) {
        *s = if v > 0.0 { 1.0 } else { alpha };
        *o = v * *s;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn lrelu_forward_scale_avx(x: &[f32], out: &mut [f32], scale: &mut [f32], alpha: f32) {
    let ones = F32x8::splat(1.0);
    let alphas = F32x8::splat(alpha);
    let n = x.len() / F32x8::LANES * F32x8::LANES;
    for i in (0..n).step_by(F32x8::LANES) {
        let v = F32x8::load(&x[i..]);
        let s = v.select_gt_zero(ones, alphas);
        s.store(&mut scale[i..]);
        v.mul(s).store(&mut out[i..]);
    }
    lrelu_forward_scale_scalar(&x[n..], &mut out[n..], &mut scale[n..], alpha);
}

/// Lanewise `dst *= src` (LReLU backward: grad times cached scale).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn mul_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    dispatch!(mul_assign_avx(dst, src), mul_assign_scalar)
}

fn mul_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn mul_assign_avx(dst: &mut [f32], src: &[f32]) {
    let n = dst.len() / F32x8::LANES * F32x8::LANES;
    for i in (0..n).step_by(F32x8::LANES) {
        F32x8::load(&dst[i..])
            .mul(F32x8::load(&src[i..]))
            .store(&mut dst[i..]);
    }
    mul_assign_scalar(&mut dst[n..], &src[n..]);
}

/// Lanewise `dst += src` (residual adds).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    dispatch!(add_assign_avx(dst, src), add_assign_scalar)
}

fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn add_assign_avx(dst: &mut [f32], src: &[f32]) {
    let n = dst.len() / F32x8::LANES * F32x8::LANES;
    for i in (0..n).step_by(F32x8::LANES) {
        F32x8::load(&dst[i..])
            .add(F32x8::load(&src[i..]))
            .store(&mut dst[i..]);
    }
    add_assign_scalar(&mut dst[n..], &src[n..]);
}

/// `dst += v` over a contiguous run (conv bias over one output plane).
pub fn add_scalar(dst: &mut [f32], v: f32) {
    dispatch!(add_scalar_avx(dst, v), add_scalar_scalar)
}

fn add_scalar_scalar(dst: &mut [f32], v: f32) {
    for d in dst {
        *d += v;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn add_scalar_avx(dst: &mut [f32], v: f32) {
    let vs = F32x8::splat(v);
    let mut chunks = dst.chunks_exact_mut(F32x8::LANES);
    for c in &mut chunks {
        F32x8::load(c).add(vs).store(c);
    }
    add_scalar_scalar(chunks.into_remainder(), v);
}

/// Evaluation-mode BN normalize over one channel plane:
/// `out = ((g * (x - mean)) * inv) + b` — the exact association of the
/// scalar evaluation forward.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn bn_apply(x: &[f32], out: &mut [f32], mean: f32, inv: f32, g: f32, b: f32) {
    assert_eq!(x.len(), out.len(), "length mismatch");
    dispatch!(bn_apply_avx(x, out, mean, inv, g, b), bn_apply_scalar)
}

fn bn_apply_scalar(x: &[f32], out: &mut [f32], mean: f32, inv: f32, g: f32, b: f32) {
    for (&v, o) in x.iter().zip(out.iter_mut()) {
        *o = g * (v - mean) * inv + b;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn bn_apply_avx(x: &[f32], out: &mut [f32], mean: f32, inv: f32, g: f32, b: f32) {
    let (means, invs) = (F32x8::splat(mean), F32x8::splat(inv));
    let (gs, bs) = (F32x8::splat(g), F32x8::splat(b));
    let n = x.len() / F32x8::LANES * F32x8::LANES;
    for i in (0..n).step_by(F32x8::LANES) {
        let v = F32x8::load(&x[i..]);
        // Same association as the scalar form: ((g*(x-mean))*inv)+b.
        gs.mul(v.sub(means)).mul(invs).add(bs).store(&mut out[i..]);
    }
    bn_apply_scalar(&x[n..], &mut out[n..], mean, inv, g, b);
}

/// Training-mode BN normalize over one channel plane: caches
/// `xhat = (x - mean) * inv` and writes `out = g * xhat + b` (the exact
/// association of the scalar training forward — note it differs from
/// [`bn_apply`]'s, which is why the two stay separate functions).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn bn_normalize_cache(
    x: &[f32],
    out: &mut [f32],
    xhat: &mut [f32],
    mean: f32,
    inv: f32,
    g: f32,
    b: f32,
) {
    assert!(
        x.len() == out.len() && x.len() == xhat.len(),
        "length mismatch"
    );
    dispatch!(
        bn_normalize_cache_avx(x, out, xhat, mean, inv, g, b),
        bn_normalize_cache_scalar
    )
}

#[allow(clippy::too_many_arguments)]
fn bn_normalize_cache_scalar(
    x: &[f32],
    out: &mut [f32],
    xhat: &mut [f32],
    mean: f32,
    inv: f32,
    g: f32,
    b: f32,
) {
    for ((&v, o), xh) in x.iter().zip(out.iter_mut()).zip(xhat.iter_mut()) {
        let h = (v - mean) * inv;
        *xh = h;
        *o = g * h + b;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn bn_normalize_cache_avx(
    x: &[f32],
    out: &mut [f32],
    xhat: &mut [f32],
    mean: f32,
    inv: f32,
    g: f32,
    b: f32,
) {
    let (means, invs) = (F32x8::splat(mean), F32x8::splat(inv));
    let (gs, bs) = (F32x8::splat(g), F32x8::splat(b));
    let n = x.len() / F32x8::LANES * F32x8::LANES;
    for i in (0..n).step_by(F32x8::LANES) {
        let h = F32x8::load(&x[i..]).sub(means).mul(invs);
        h.store(&mut xhat[i..]);
        gs.mul(h).add(bs).store(&mut out[i..]);
    }
    bn_normalize_cache_scalar(&x[n..], &mut out[n..], &mut xhat[n..], mean, inv, g, b);
}

/// `acc += a * x` over a contiguous row (the axpy inner loop of
/// `gemm`/`gemm_at_b`-shaped kernels). Each `acc` element is an
/// independent lane; reduction order per element is unchanged.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "length mismatch");
    dispatch!(axpy_avx(acc, a, x), axpy_scalar)
}

fn axpy_scalar(acc: &mut [f32], a: f32, x: &[f32]) {
    for (cv, &bv) in acc.iter_mut().zip(x) {
        *cv += a * bv;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn axpy_avx(acc: &mut [f32], a: f32, x: &[f32]) {
    let av = F32x8::splat(a);
    let n = acc.len() / F32x8::LANES * F32x8::LANES;
    for i in (0..n).step_by(F32x8::LANES) {
        F32x8::load(&acc[i..])
            .add(av.mul(F32x8::load(&x[i..])))
            .store(&mut acc[i..]);
    }
    axpy_scalar(&mut acc[n..], a, &x[n..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
    }

    /// Every elementwise op, vector vs scalar path, across remainder
    /// lengths — bit-identical by contract. (One test body, because
    /// [`set_enabled`] is process-global: splitting the toggling across
    /// concurrently-running `#[test]`s would race.)
    #[test]
    fn vector_paths_match_scalar_bitwise() {
        if !enabled() {
            return; // scalar-only build or CPU: nothing to compare
        }
        set_enabled(false);
        assert!(!enabled(), "set_enabled(false) must force the scalar path");
        set_enabled(true);
        assert!(enabled(), "set_enabled(true) must restore the vector path");
        let mut rng = StdRng::seed_from_u64(77);
        for len in [0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 100] {
            let x = randv(&mut rng, len);
            let base = randv(&mut rng, len);

            let mut a = base.clone();
            let mut b = base.clone();
            set_enabled(true);
            lrelu_apply(&mut a, 0.01);
            set_enabled(false);
            lrelu_apply(&mut b, 0.01);
            assert_eq!(a, b, "lrelu_apply len {len}");

            let (mut oa, mut ob) = (vec![0.0; len], vec![0.0; len]);
            let (mut sa, mut sb) = (vec![0.0; len], vec![0.0; len]);
            set_enabled(true);
            lrelu_forward_scale(&x, &mut oa, &mut sa, 0.01);
            set_enabled(false);
            lrelu_forward_scale(&x, &mut ob, &mut sb, 0.01);
            assert_eq!(oa, ob, "lrelu fwd len {len}");
            assert_eq!(sa, sb, "lrelu scale len {len}");

            let mut a = base.clone();
            let mut b = base.clone();
            set_enabled(true);
            mul_assign(&mut a, &x);
            set_enabled(false);
            mul_assign(&mut b, &x);
            assert_eq!(a, b, "mul_assign len {len}");

            let mut a = base.clone();
            let mut b = base.clone();
            set_enabled(true);
            add_assign(&mut a, &x);
            set_enabled(false);
            add_assign(&mut b, &x);
            assert_eq!(a, b, "add_assign len {len}");

            let mut a = base.clone();
            let mut b = base.clone();
            set_enabled(true);
            add_scalar(&mut a, 0.37);
            set_enabled(false);
            add_scalar(&mut b, 0.37);
            assert_eq!(a, b, "add_scalar len {len}");

            set_enabled(true);
            bn_apply(&x, &mut oa, 0.1, 1.7, 0.9, -0.2);
            set_enabled(false);
            bn_apply(&x, &mut ob, 0.1, 1.7, 0.9, -0.2);
            assert_eq!(oa, ob, "bn_apply len {len}");

            set_enabled(true);
            bn_normalize_cache(&x, &mut oa, &mut sa, 0.1, 1.7, 0.9, -0.2);
            set_enabled(false);
            bn_normalize_cache(&x, &mut ob, &mut sb, 0.1, 1.7, 0.9, -0.2);
            assert_eq!(oa, ob, "bn_normalize out len {len}");
            assert_eq!(sa, sb, "bn_normalize xhat len {len}");

            let mut a = base.clone();
            let mut b = base.clone();
            set_enabled(true);
            axpy(&mut a, 0.77, &x);
            set_enabled(false);
            axpy(&mut b, 0.77, &x);
            assert_eq!(a, b, "axpy len {len}");

            set_enabled(true);
        }

        // NaN lanes (module docs, rule 3 caveat): both LReLU paths
        // compute `NaN * alpha` with identical operand order, so even
        // the NaN output bits must agree between vector and scalar.
        let mut a = vec![f32::NAN, -f32::NAN, -1.0, 2.0];
        a.resize(17, f32::NAN); // one full vector body plus a tail
        let mut b = a.clone();
        set_enabled(true);
        lrelu_apply(&mut a, 0.01);
        set_enabled(false);
        lrelu_apply(&mut b, 0.01);
        set_enabled(true);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "NaN lrelu_apply parity");
    }

    /// The multiplicative LReLU form is bitwise equal to the historical
    /// branchy form (`if v <= 0 { v *= alpha }`) for every non-NaN input
    /// — the identity that made the scale-vector refactor safe. NaN is
    /// the one documented divergence (module docs, rule 3): the branchy
    /// form left NaN untouched, the multiplicative form computes
    /// `NaN * alpha`. Accepted behavior is "NaN stays NaN", with
    /// platform-defined payload bits.
    #[test]
    fn multiplicative_lrelu_equals_branchy_form() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut a = randv(&mut rng, 1000);
        a.extend_from_slice(&[
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ]);
        let mut b = a.clone();
        lrelu_apply(&mut a, 0.01);
        for v in &mut b {
            if *v <= 0.0 {
                *v *= 0.01;
            }
        }
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
        // NaN: not bit-preserved (unlike the branchy form), but never
        // anything other than NaN.
        let mut n = vec![f32::NAN, -f32::NAN];
        lrelu_apply(&mut n, 0.01);
        assert!(n.iter().all(|v| v.is_nan()), "{n:?}");
    }
}
