//! Fully connected layer.

use super::{he_normal, Layer, Param};
use crate::compute::{self, Scratch};
use crate::tensor::Tensor;
use rand::SeedableRng;

/// A dense layer over `[n, in, 1, 1]` tensors producing `[n, out, 1, 1]`.
///
/// Both passes run on the shared blocked kernels in [`crate::compute`];
/// the input is cached for backward only in training mode.
pub struct Linear {
    in_f: usize,
    out_f: usize,
    weight: Param,
    bias: Param,
    cached_input: Tensor,
}

impl Linear {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(in_f: usize, out_f: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let weight: Vec<f32> = (0..out_f * in_f)
            .map(|_| he_normal(&mut rng, in_f))
            .collect();
        Linear {
            in_f,
            out_f,
            weight: Param::new(weight),
            bias: Param::new(vec![0.0; out_f]),
            cached_input: Tensor::zeros([0, 0, 0, 0]),
        }
    }

    /// The affine map shared by all forward entry points.
    fn compute(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert_eq!(c * h * w, self.in_f, "Linear input feature mismatch");
        let mut out = scratch.tensor([n, self.out_f, 1, 1]);
        // out[s,o] = x_s · w_o (ascending-k dots, bit-stable), then + bias.
        compute::gemm_a_bt(
            n,
            self.in_f,
            self.out_f,
            x.data(),
            &self.weight.data,
            out.data_mut(),
        );
        for s in 0..n {
            let row = &mut out.data_mut()[s * self.out_f..(s + 1) * self.out_f];
            for (v, &b) in row.iter_mut().zip(&self.bias.data) {
                *v += b;
            }
        }
        out
    }
}

impl Layer for Linear {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        if train {
            self.cached_input.copy_from(x);
        } else {
            self.cached_input = Tensor::zeros([0, 0, 0, 0]);
        }
        self.compute(x, scratch)
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [n, o, _, _] = grad_out.shape();
        assert_eq!(o, self.out_f, "Linear grad feature mismatch");
        assert!(
            !self.cached_input.is_empty(),
            "Linear::backward requires a preceding train-mode forward"
        );
        let mut grad_in = scratch.tensor(self.cached_input.shape());
        // dW[o,i] += Σ_s go[s,o]·x[s,i]  (samples ascending per element).
        compute::gemm_at_b(
            self.out_f,
            n,
            self.in_f,
            grad_out.data(),
            self.cached_input.data(),
            &mut self.weight.grad,
        );
        // dX[s,i] += Σ_o go[s,o]·W[o,i].
        compute::gemm(
            n,
            self.out_f,
            self.in_f,
            grad_out.data(),
            &self.weight.data,
            grad_in.data_mut(),
        );
        for s in 0..n {
            let go = &grad_out.data()[s * self.out_f..(s + 1) * self.out_f];
            for (bg, &g) in self.bias.grad.iter_mut().zip(go) {
                *bg += g;
            }
        }
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.compute(x, scratch)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_affine_map() {
        let mut lin = Linear::new(2, 1, 0);
        lin.weight.data.copy_from_slice(&[2.0, -1.0]);
        lin.bias.data[0] = 0.5;
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]);
        let y = lin.forward(&x, true);
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn flattens_spatial_input() {
        let mut lin = Linear::new(8, 3, 1);
        let x = Tensor::zeros([2, 2, 2, 2]);
        let y = lin.forward(&x, true);
        assert_eq!(y.shape(), [2, 3, 1, 1]);
    }

    #[test]
    fn gradient_check() {
        let lin = Linear::new(6, 4, 2);
        let err = crate::gradcheck::check_layer(Box::new(lin), [3, 6, 1, 1], 17);
        assert!(err < 2e-2, "linear gradient error {err}");
    }

    #[test]
    fn infer_matches_forward_without_caching() {
        let mut lin = Linear::new(4, 3, 9);
        let x = Tensor::from_vec([2, 4, 1, 1], (0..8).map(|i| i as f32 * 0.5 - 2.0).collect());
        let y = lin.forward(&x, true);
        let mut scratch = Scratch::new();
        let z = lin.infer(&x, &mut scratch);
        assert_eq!(y.data(), z.data());
        lin.forward(&x, false);
        assert!(lin.cached_input.is_empty(), "eval forward cached its input");
    }
}
