//! Fully connected layer.

use super::{he_normal, Layer, Param};
use crate::tensor::Tensor;
use rand::SeedableRng;

/// A dense layer over `[n, in, 1, 1]` tensors producing `[n, out, 1, 1]`.
pub struct Linear {
    in_f: usize,
    out_f: usize,
    weight: Param,
    bias: Param,
    cached_input: Tensor,
}

impl Linear {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(in_f: usize, out_f: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let weight: Vec<f32> = (0..out_f * in_f)
            .map(|_| he_normal(&mut rng, in_f))
            .collect();
        Linear {
            in_f,
            out_f,
            weight: Param::new(weight),
            bias: Param::new(vec![0.0; out_f]),
            cached_input: Tensor::zeros([0, 0, 0, 0]),
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert_eq!(c * h * w, self.in_f, "Linear input feature mismatch");
        self.cached_input = x.clone();
        let mut out = Tensor::zeros([n, self.out_f, 1, 1]);
        for s in 0..n {
            let xin = &x.data()[s * self.in_f..(s + 1) * self.in_f];
            for o in 0..self.out_f {
                let wrow = &self.weight.data[o * self.in_f..(o + 1) * self.in_f];
                let dot: f32 = wrow.iter().zip(xin).map(|(a, b)| a * b).sum();
                out.data_mut()[s * self.out_f + o] = dot + self.bias.data[o];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, o, _, _] = grad_out.shape();
        assert_eq!(o, self.out_f, "Linear grad feature mismatch");
        let mut grad_in = Tensor::zeros(self.cached_input.shape());
        for s in 0..n {
            let xin = &self.cached_input.data()[s * self.in_f..(s + 1) * self.in_f];
            let go = &grad_out.data()[s * self.out_f..(s + 1) * self.out_f];
            for (oi, &g) in go.iter().enumerate() {
                self.bias.grad[oi] += g;
                let wrow = &self.weight.data[oi * self.in_f..(oi + 1) * self.in_f];
                let wgrad = &mut self.weight.grad[oi * self.in_f..(oi + 1) * self.in_f];
                let gin = &mut grad_in.data_mut()[s * self.in_f..(s + 1) * self.in_f];
                for i in 0..self.in_f {
                    wgrad[i] += g * xin[i];
                    gin[i] += g * wrow[i];
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_affine_map() {
        let mut lin = Linear::new(2, 1, 0);
        lin.weight.data.copy_from_slice(&[2.0, -1.0]);
        lin.bias.data[0] = 0.5;
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]);
        let y = lin.forward(&x, true);
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn flattens_spatial_input() {
        let mut lin = Linear::new(8, 3, 1);
        let x = Tensor::zeros([2, 2, 2, 2]);
        let y = lin.forward(&x, true);
        assert_eq!(y.shape(), [2, 3, 1, 1]);
    }

    #[test]
    fn gradient_check() {
        let lin = Linear::new(6, 4, 2);
        let err = crate::gradcheck::check_layer(Box::new(lin), [3, 6, 1, 1], 17);
        assert!(err < 2e-2, "linear gradient error {err}");
    }
}
