//! 2-D convolution with "same" padding (stride 1), via im2col + GEMM.

use super::{he_normal, Layer, Param};
use crate::tensor::Tensor;
use rand::SeedableRng;

/// A stride-1, same-padding 2-D convolution.
///
/// Kernel sizes are odd (1, 3, 5 in the Q-network of the paper's Fig. 2).
/// The optional bias is typically disabled when a batch-norm follows.
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: Param,
    bias: Option<Param>,
    // Cached forward state for backward.
    cached_cols: Vec<f32>,
    cached_in_shape: [usize; 4],
}

impl Conv2d {
    /// Creates a convolution with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even.
    pub fn new(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        Self::build(in_c, out_c, k, seed, true)
    }

    /// Creates a convolution without bias (for conv→batchnorm stacks).
    pub fn new_no_bias(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        Self::build(in_c, out_c, k, seed, false)
    }

    fn build(in_c: usize, out_c: usize, k: usize, seed: u64, bias: bool) -> Self {
        assert!(k % 2 == 1, "kernel size {k} must be odd for same padding");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fan_in = in_c * k * k;
        let weight: Vec<f32> = (0..out_c * fan_in)
            .map(|_| he_normal(&mut rng, fan_in))
            .collect();
        Conv2d {
            in_c,
            out_c,
            k,
            weight: Param::new(weight),
            bias: bias.then(|| Param::new(vec![0.0; out_c])),
            cached_cols: Vec::new(),
            cached_in_shape: [0; 4],
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }
}

/// `C[m,n] += A[m,k] · B[k,n]`, all row-major.
fn gemm(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * kk..(i + 1) * kk];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `C[m,n] += A[m,k] · Bᵀ` where `B` is `[n,k]` row-major.
fn gemm_a_bt(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * kk..(i + 1) * kk];
        for j in 0..n {
            let brow = &b[j * kk..(j + 1) * kk];
            let dot: f32 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            c[i * n + j] += dot;
        }
    }
}

/// `C[m,n] += Aᵀ · B` where `A` is `[k,m]` and `B` is `[k,n]`, row-major.
fn gemm_at_b(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for p in 0..kk {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Expands one sample into its im2col matrix `[in_c·k·k, h·w]`.
fn im2col(in_c: usize, k: usize, x: &Tensor, n: usize, col: &mut [f32]) {
    let [_, _, h, w] = x.shape();
    let pad = k / 2;
    let hw = h * w;
    col.fill(0.0);
    for ci in 0..in_c {
        for kh in 0..k {
            for kw in 0..k {
                let q = (ci * k + kh) * k + kw;
                let dst = &mut col[q * hw..(q + 1) * hw];
                for oh in 0..h {
                    let ih = oh as isize + kh as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let ih = ih as usize;
                    // Valid output columns for this kw.
                    let (ow_lo, ow_hi) = valid_range(w, kw, pad);
                    if ow_lo >= ow_hi {
                        continue;
                    }
                    let iw_lo = ow_lo + kw - pad;
                    let src_base = x.index(n, ci, ih, iw_lo);
                    let dst_base = oh * w + ow_lo;
                    let len = ow_hi - ow_lo;
                    dst[dst_base..dst_base + len]
                        .copy_from_slice(&x.data()[src_base..src_base + len]);
                }
            }
        }
    }
}

/// Scatters a col-gradient back into an input-gradient sample.
fn col2im(in_c: usize, k: usize, col: &[f32], gin: &mut Tensor, n: usize) {
    let [_, _, h, w] = gin.shape();
    let pad = k / 2;
    let hw = h * w;
    for ci in 0..in_c {
        for kh in 0..k {
            for kw in 0..k {
                let q = (ci * k + kh) * k + kw;
                let src = &col[q * hw..(q + 1) * hw];
                for oh in 0..h {
                    let ih = oh as isize + kh as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let ih = ih as usize;
                    let (ow_lo, ow_hi) = valid_range(w, kw, pad);
                    if ow_lo >= ow_hi {
                        continue;
                    }
                    let iw_lo = ow_lo + kw - pad;
                    let dst_base = gin.index(n, ci, ih, iw_lo);
                    let src_base = oh * w + ow_lo;
                    let gdata = gin.data_mut();
                    for t in 0..(ow_hi - ow_lo) {
                        gdata[dst_base + t] += src[src_base + t];
                    }
                }
            }
        }
    }
}

/// Output-column range `[lo, hi)` for which `iw = ow + kw - pad` is valid.
fn valid_range(w: usize, kw: usize, pad: usize) -> (usize, usize) {
    let lo = pad.saturating_sub(kw);
    let hi = (w + pad - kw).min(w);
    (lo, hi)
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert_eq!(c, self.in_c, "Conv2d input channel mismatch");
        let hw = h * w;
        let q = self.in_c * self.k * self.k;
        let mut out = Tensor::zeros([n, self.out_c, h, w]);
        self.cached_cols = vec![0.0; n * q * hw];
        self.cached_in_shape = x.shape();
        for s in 0..n {
            let col = &mut self.cached_cols[s * q * hw..(s + 1) * q * hw];
            im2col(self.in_c, self.k, x, s, col);
            let dst = &mut out.data_mut()[s * self.out_c * hw..(s + 1) * self.out_c * hw];
            gemm(self.out_c, q, hw, &self.weight.data, col, dst);
            if let Some(bias) = &self.bias {
                for o in 0..self.out_c {
                    let bv = bias.data[o];
                    for v in &mut dst[o * hw..(o + 1) * hw] {
                        *v += bv;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, oc, h, w] = grad_out.shape();
        assert_eq!(oc, self.out_c, "Conv2d grad channel mismatch");
        let hw = h * w;
        let q = self.in_c * self.k * self.k;
        let mut grad_in = Tensor::zeros(self.cached_in_shape);
        let mut grad_col = vec![0.0f32; q * hw];
        for s in 0..n {
            let go = &grad_out.data()[s * oc * hw..(s + 1) * oc * hw];
            let col = &self.cached_cols[s * q * hw..(s + 1) * q * hw];
            // dW += dY · colᵀ
            gemm_a_bt(oc, hw, q, go, col, &mut self.weight.grad);
            // dbias += Σ dY
            if let Some(bias) = &mut self.bias {
                for o in 0..oc {
                    bias.grad[o] += go[o * hw..(o + 1) * hw].iter().sum::<f32>();
                }
            }
            // dcol = Wᵀ · dY ; dX = col2im(dcol)
            grad_col.fill(0.0);
            gemm_at_b(q, oc, hw, &self.weight.data, go, &mut grad_col);
            col2im(self.in_c, self.k, &grad_col, &mut grad_in, s);
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_1x1_conv() {
        let mut conv = Conv2d::new(1, 1, 1, 0);
        conv.weight.data[0] = 1.0;
        if let Some(b) = &mut conv.bias {
            b.data[0] = 0.0;
        }
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // A 3x3 all-ones kernel computes neighbourhood sums with zero pad.
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.data.iter_mut().for_each(|w| *w = 1.0);
        if let Some(b) = &mut conv.bias {
            b.data[0] = 0.0;
        }
        let x = Tensor::from_vec([1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let y = conv.forward(&x, true);
        // Centre = sum of all = 45; corner (0,0) = 1+2+4+5 = 12.
        assert_eq!(y.at(0, 0, 1, 1), 45.0);
        assert_eq!(y.at(0, 0, 0, 0), 12.0);
        assert_eq!(y.at(0, 0, 2, 2), 5.0 + 6.0 + 8.0 + 9.0);
    }

    #[test]
    fn shapes_preserved_multichannel() {
        let mut conv = Conv2d::new(4, 7, 5, 1);
        let x = Tensor::zeros([3, 4, 8, 8]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), [3, 7, 8, 8]);
        let g = conv.backward(&Tensor::zeros([3, 7, 8, 8]));
        assert_eq!(g.shape(), [3, 4, 8, 8]);
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = Conv2d::new(1, 1, 1, 0);
        conv.weight.data[0] = 0.0;
        conv.bias.as_mut().unwrap().data[0] = 2.5;
        let y = conv.forward(&Tensor::zeros([1, 1, 2, 2]), true);
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn gradient_check_small() {
        let conv = Conv2d::new(2, 3, 3, 7);
        let err = crate::gradcheck::check_layer(Box::new(conv), [2, 2, 4, 4], 11);
        assert!(err < 3e-2, "conv gradient error {err}");
    }

    #[test]
    fn gradient_check_5x5() {
        let conv = Conv2d::new(1, 2, 5, 9);
        let err = crate::gradcheck::check_layer(Box::new(conv), [1, 1, 6, 6], 13);
        assert!(err < 3e-2, "conv5 gradient error {err}");
    }
}
