//! 2-D convolution with "same" padding (stride 1), via im2col + GEMM.
//!
//! All matrix products route through the blocked kernels in
//! [`crate::compute`]; batches parallelize over samples (and single samples
//! over output-row panels) on the global thread budget, with bit-identical
//! results at every width. Training-mode forwards cache the im2col panels
//! for backward in a buffer that is reused call over call; evaluation-mode
//! forwards and [`Layer::infer`] draw transient panels from the
//! [`Scratch`] arena and leave no resident cache behind.

use super::{he_normal, BatchNorm2d, Layer, Param};
use crate::compute::{self, Scratch, ThreadPool};
use crate::tensor::Tensor;
use rand::SeedableRng;

/// A stride-1, same-padding 2-D convolution.
///
/// Kernel sizes are odd (1, 3, 5 in the Q-network of the paper's Fig. 2).
/// The optional bias is typically disabled when a batch-norm follows.
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: Param,
    bias: Option<Param>,
    // Cached forward state for backward (training-mode forwards only).
    cached_cols: Vec<f32>,
    cached_in_shape: [usize; 4],
}

impl Clone for Conv2d {
    /// Clones parameters and dimensions; backward caches start empty.
    fn clone(&self) -> Self {
        Conv2d {
            in_c: self.in_c,
            out_c: self.out_c,
            k: self.k,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            cached_cols: Vec::new(),
            cached_in_shape: [0; 4],
        }
    }
}

impl Conv2d {
    /// Creates a convolution with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even.
    pub fn new(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        Self::build(in_c, out_c, k, seed, true)
    }

    /// Creates a convolution without bias (for conv→batchnorm stacks).
    pub fn new_no_bias(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        Self::build(in_c, out_c, k, seed, false)
    }

    fn build(in_c: usize, out_c: usize, k: usize, seed: u64, bias: bool) -> Self {
        assert!(k % 2 == 1, "kernel size {k} must be odd for same padding");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fan_in = in_c * k * k;
        let weight: Vec<f32> = (0..out_c * fan_in)
            .map(|_| he_normal(&mut rng, fan_in))
            .collect();
        Self::from_parts(in_c, out_c, k, weight, bias.then(|| vec![0.0; out_c]))
    }

    /// Wraps explicit weights (`[out_c, in_c·k·k]` row-major) and an
    /// optional bias — how fused inference convolutions are assembled.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or a buffer length mismatches.
    pub fn from_parts(
        in_c: usize,
        out_c: usize,
        k: usize,
        weight: Vec<f32>,
        bias: Option<Vec<f32>>,
    ) -> Self {
        assert!(k % 2 == 1, "kernel size {k} must be odd for same padding");
        assert_eq!(weight.len(), out_c * in_c * k * k, "weight length mismatch");
        if let Some(b) = &bias {
            assert_eq!(b.len(), out_c, "bias length mismatch");
        }
        Conv2d {
            in_c,
            out_c,
            k,
            weight: Param::new(weight),
            bias: bias.map(Param::new),
            cached_cols: Vec::new(),
            cached_in_shape: [0; 4],
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Folds a following [`BatchNorm2d`] (evaluation semantics: running
    /// statistics) into this convolution, returning a bias-ful convolution
    /// computing `bn(conv(x))` in one pass:
    ///
    /// `W'ₒ = γₒ/√(σ²ₒ+ε) · Wₒ` and `b'ₒ = βₒ + (bₒ − μₒ)·γₒ/√(σ²ₒ+ε)`.
    ///
    /// This is the inference fast path — a frozen snapshot built from fused
    /// convolutions does half the passes of conv→BN and never touches
    /// batch statistics.
    ///
    /// # Panics
    ///
    /// Panics if the batch-norm's channel count differs from `out_c`.
    pub fn fused(&self, bn: &BatchNorm2d) -> Conv2d {
        let (gamma, beta) = (bn.gamma(), bn.beta());
        assert_eq!(gamma.len(), self.out_c, "fused: channel mismatch");
        let (mean, var) = (bn.running_mean(), bn.running_var());
        let fan_in = self.in_c * self.k * self.k;
        let mut weight = self.weight.data.clone();
        let mut bias = vec![0.0f32; self.out_c];
        for o in 0..self.out_c {
            let scale = gamma[o] / (var[o] + bn.eps()).sqrt();
            for w in &mut weight[o * fan_in..(o + 1) * fan_in] {
                *w *= scale;
            }
            let b0 = self.bias.as_ref().map_or(0.0, |b| b.data[o]);
            bias[o] = beta[o] + (b0 - mean[o]) * scale;
        }
        Self::from_parts(self.in_c, self.out_c, self.k, weight, Some(bias))
    }
}

/// Expands one sample `[in_c, h, w]` into its im2col matrix
/// `[in_c·k·k, h·w]`.
fn im2col(in_c: usize, k: usize, h: usize, w: usize, x: &[f32], col: &mut [f32]) {
    let pad = k / 2;
    let hw = h * w;
    col.fill(0.0);
    for ci in 0..in_c {
        for kh in 0..k {
            for kw in 0..k {
                let q = (ci * k + kh) * k + kw;
                let dst = &mut col[q * hw..(q + 1) * hw];
                for oh in 0..h {
                    let ih = oh as isize + kh as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let ih = ih as usize;
                    // Valid output columns for this kw.
                    let (ow_lo, ow_hi) = valid_range(w, kw, pad);
                    if ow_lo >= ow_hi {
                        continue;
                    }
                    let iw_lo = ow_lo + kw - pad;
                    let src_base = (ci * h + ih) * w + iw_lo;
                    let dst_base = oh * w + ow_lo;
                    let len = ow_hi - ow_lo;
                    dst[dst_base..dst_base + len].copy_from_slice(&x[src_base..src_base + len]);
                }
            }
        }
    }
}

/// Scatters a col-gradient back into one input-gradient sample
/// `[in_c, h, w]`.
fn col2im(in_c: usize, k: usize, h: usize, w: usize, col: &[f32], gin: &mut [f32]) {
    let pad = k / 2;
    let hw = h * w;
    for ci in 0..in_c {
        for kh in 0..k {
            for kw in 0..k {
                let q = (ci * k + kh) * k + kw;
                let src = &col[q * hw..(q + 1) * hw];
                for oh in 0..h {
                    let ih = oh as isize + kh as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let ih = ih as usize;
                    let (ow_lo, ow_hi) = valid_range(w, kw, pad);
                    if ow_lo >= ow_hi {
                        continue;
                    }
                    let iw_lo = ow_lo + kw - pad;
                    let dst_base = (ci * h + ih) * w + iw_lo;
                    let src_base = oh * w + ow_lo;
                    for t in 0..(ow_hi - ow_lo) {
                        gin[dst_base + t] += src[src_base + t];
                    }
                }
            }
        }
    }
}

/// Output-column range `[lo, hi)` for which `iw = ow + kw - pad` is valid.
fn valid_range(w: usize, kw: usize, pad: usize) -> (usize, usize) {
    let lo = pad.saturating_sub(kw);
    let hi = (w + pad - kw).min(w);
    (lo, hi)
}

/// One sample of the forward product: `out_s += W·col_s` plus bias.
#[allow(clippy::too_many_arguments)]
fn forward_sample(
    out_c: usize,
    q: usize,
    hw: usize,
    weight: &[f32],
    bias: Option<&[f32]>,
    col: &[f32],
    dst: &mut [f32],
    pool: &ThreadPool,
) {
    compute::gemm_rows_parallel(pool, out_c, q, hw, weight, col, dst);
    if let Some(bias) = bias {
        for (o, &bv) in bias.iter().enumerate().take(out_c) {
            crate::simd::add_scalar(&mut dst[o * hw..(o + 1) * hw], bv);
        }
    }
}

/// The one forward implementation behind every entry point (train-mode and
/// eval-mode [`Layer::forward_with`], [`Layer::infer`]).
///
/// `cached`, when present, is the layer's backward cache: it is resized to
/// hold every sample's im2col panel and each worker writes its panels
/// there. When absent, each worker recycles one scratch buffer per sample
/// and nothing is retained. Sample batches partition across workers; a
/// lone sample splits its output rows across the pool instead.
#[allow(clippy::too_many_arguments)]
fn forward_impl(
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: &[f32],
    bias: Option<&[f32]>,
    x: &Tensor,
    scratch: &mut Scratch,
    cached: Option<&mut Vec<f32>>,
) -> Tensor {
    let [n, _, h, w] = x.shape();
    let hw = h * w;
    let q = in_c * k * k;
    let mut out = scratch.tensor([n, out_c, h, w]);
    // Cap the worker count so each gets a worthwhile amount of GEMM work —
    // small batches run serial instead of paying thread-spawn overhead
    // (results are identical either way; partitioning is over disjoint
    // samples).
    let threads = compute::plan_workers(compute::threads(), n * out_c * q * hw);
    let ranges = if threads == 1 || n == 1 {
        compute::partition(n, 1)
    } else {
        compute::partition(n, threads)
    };
    // With one worker and one sample, the row-panel pool picks up the
    // parallelism instead (gemm_rows_parallel applies its own work floor).
    let rows_pool = if ranges.len() == 1 && n == 1 {
        ThreadPool::new(threads)
    } else {
        ThreadPool::serial()
    };
    // Per-worker column storage: a panel of the backward cache advancing
    // by `q·hw` per sample, or one reused scratch buffer (stride 0).
    let mut transient: Vec<Vec<f32>> = Vec::new();
    let (col_panels, col_stride): (Vec<&mut [f32]>, usize) = match cached {
        Some(cols) => {
            cols.resize(n * q * hw, 0.0);
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len() * q * hw).collect();
            (compute::split_by_sizes(cols, &sizes), q * hw)
        }
        None => {
            transient = ranges.iter().map(|_| scratch.take(q * hw)).collect();
            (transient.iter_mut().map(Vec::as_mut_slice).collect(), 0)
        }
    };
    let out_sizes: Vec<usize> = ranges.iter().map(|r| r.len() * out_c * hw).collect();
    let out_panels = compute::split_by_sizes(out.data_mut(), &out_sizes);
    let jobs: Vec<_> = ranges
        .iter()
        .zip(col_panels)
        .zip(out_panels)
        .map(|((r, cols), panel)| {
            let r = r.clone();
            let rows_pool = &rows_pool;
            move || {
                for (i, s) in r.clone().enumerate() {
                    let col = &mut cols[i * col_stride..i * col_stride + q * hw];
                    im2col(
                        in_c,
                        k,
                        h,
                        w,
                        &x.data()[s * in_c * hw..(s + 1) * in_c * hw],
                        col,
                    );
                    let dst = &mut panel[i * out_c * hw..(i + 1) * out_c * hw];
                    forward_sample(out_c, q, hw, weight, bias, col, dst, rows_pool);
                }
            }
        })
        .collect();
    ThreadPool::new(jobs.len()).run(jobs);
    for buf in transient {
        scratch.give(buf);
    }
    out
}

impl Layer for Conv2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let [_, c, _, _] = x.shape();
        assert_eq!(c, self.in_c, "Conv2d input channel mismatch");
        let cached = if train {
            self.cached_in_shape = x.shape();
            Some(&mut self.cached_cols)
        } else {
            // Evaluation-mode forwards must not leave a resident im2col
            // cache behind (every inference-only holder of the network
            // would otherwise pin O(batch·q·h·w) floats).
            self.cached_cols = Vec::new();
            self.cached_in_shape = [0; 4];
            None
        };
        forward_impl(
            self.in_c,
            self.out_c,
            self.k,
            &self.weight.data,
            self.bias.as_ref().map(|b| b.data.as_slice()),
            x,
            scratch,
            cached,
        )
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [n, oc, h, w] = grad_out.shape();
        assert_eq!(oc, self.out_c, "Conv2d grad channel mismatch");
        let hw = h * w;
        let q = self.in_c * self.k * self.k;
        assert_eq!(
            self.cached_cols.len(),
            n * q * hw,
            "Conv2d::backward requires a preceding train-mode forward"
        );
        let mut grad_in = scratch.tensor(self.cached_in_shape);
        // Same work floor as forward: both phases are dominated by one
        // GEMM of n·q·oc·hw multiply-adds, so small batches run serial.
        let threads = compute::plan_workers(compute::threads(), n * q * oc * hw);
        let (in_c, k) = (self.in_c, self.k);
        let weight = &self.weight.data;
        let cols = &self.cached_cols;
        let go = grad_out.data();

        // Phase A — per sample (disjoint): dcol = Wᵀ·dY, dX = col2im(dcol).
        {
            let ranges = compute::partition(n, threads);
            let gin_sizes: Vec<usize> = ranges.iter().map(|r| r.len() * in_c * hw).collect();
            let gin_panels = compute::split_by_sizes(grad_in.data_mut(), &gin_sizes);
            let mut bufs: Vec<Vec<f32>> = ranges.iter().map(|_| scratch.take(q * hw)).collect();
            let jobs: Vec<_> = ranges
                .iter()
                .zip(gin_panels)
                .zip(bufs.iter_mut())
                .map(|((r, panel), grad_col)| {
                    let r = r.clone();
                    move || {
                        for (i, s) in r.clone().enumerate() {
                            grad_col.fill(0.0);
                            compute::gemm_at_b(
                                q,
                                oc,
                                hw,
                                weight,
                                &go[s * oc * hw..(s + 1) * oc * hw],
                                grad_col,
                            );
                            col2im(
                                in_c,
                                k,
                                h,
                                w,
                                grad_col,
                                &mut panel[i * in_c * hw..(i + 1) * in_c * hw],
                            );
                        }
                    }
                })
                .collect();
            ThreadPool::new(threads).run(jobs);
            for b in bufs {
                scratch.give(b);
            }
        }

        // Phase B — per output-channel row panel (disjoint): for each row,
        // samples accumulate in ascending order, so results are identical
        // at every thread count. dW += dY·colᵀ and dbias += Σ dY.
        {
            let ranges = compute::partition(oc, threads);
            let wg_sizes: Vec<usize> = ranges.iter().map(|r| r.len() * q).collect();
            let wg_panels = compute::split_by_sizes(&mut self.weight.grad, &wg_sizes);
            let bias_sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let mut bias_panels: Vec<Option<&mut [f32]>> = match &mut self.bias {
                Some(bias) => compute::split_by_sizes(&mut bias.grad, &bias_sizes)
                    .into_iter()
                    .map(Some)
                    .collect(),
                None => ranges.iter().map(|_| None).collect(),
            };
            let jobs: Vec<_> = ranges
                .iter()
                .zip(wg_panels)
                .zip(bias_panels.drain(..))
                .map(|((r, wg), bias_grad)| {
                    let r = r.clone();
                    move || {
                        let mut bias_grad = bias_grad;
                        for s in 0..n {
                            let go_s = &go[s * oc * hw..(s + 1) * oc * hw];
                            let col_s = &cols[s * q * hw..(s + 1) * q * hw];
                            compute::gemm_a_bt(
                                r.len(),
                                hw,
                                q,
                                &go_s[r.start * hw..r.end * hw],
                                col_s,
                                wg,
                            );
                            if let Some(bg) = bias_grad.as_deref_mut() {
                                for (i, o) in r.clone().enumerate() {
                                    bg[i] += go_s[o * hw..(o + 1) * hw].iter().sum::<f32>();
                                }
                            }
                        }
                    }
                })
                .collect();
            ThreadPool::new(threads).run(jobs);
        }
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [_, c, _, _] = x.shape();
        assert_eq!(c, self.in_c, "Conv2d input channel mismatch");
        forward_impl(
            self.in_c,
            self.out_c,
            self.k,
            &self.weight.data,
            self.bias.as_ref().map(|b| b.data.as_slice()),
            x,
            scratch,
            None,
        )
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_1x1_conv() {
        let mut conv = Conv2d::new(1, 1, 1, 0);
        conv.weight.data[0] = 1.0;
        if let Some(b) = &mut conv.bias {
            b.data[0] = 0.0;
        }
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // A 3x3 all-ones kernel computes neighbourhood sums with zero pad.
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.data.iter_mut().for_each(|w| *w = 1.0);
        if let Some(b) = &mut conv.bias {
            b.data[0] = 0.0;
        }
        let x = Tensor::from_vec([1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let y = conv.forward(&x, true);
        // Centre = sum of all = 45; corner (0,0) = 1+2+4+5 = 12.
        assert_eq!(y.at(0, 0, 1, 1), 45.0);
        assert_eq!(y.at(0, 0, 0, 0), 12.0);
        assert_eq!(y.at(0, 0, 2, 2), 5.0 + 6.0 + 8.0 + 9.0);
    }

    #[test]
    fn shapes_preserved_multichannel() {
        let mut conv = Conv2d::new(4, 7, 5, 1);
        let x = Tensor::zeros([3, 4, 8, 8]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), [3, 7, 8, 8]);
        let g = conv.backward(&Tensor::zeros([3, 7, 8, 8]));
        assert_eq!(g.shape(), [3, 4, 8, 8]);
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = Conv2d::new(1, 1, 1, 0);
        conv.weight.data[0] = 0.0;
        conv.bias.as_mut().unwrap().data[0] = 2.5;
        let y = conv.forward(&Tensor::zeros([1, 1, 2, 2]), true);
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn gradient_check_small() {
        let conv = Conv2d::new(2, 3, 3, 7);
        let err = crate::gradcheck::check_layer(Box::new(conv), [2, 2, 4, 4], 11);
        assert!(err < 3e-2, "conv gradient error {err}");
    }

    #[test]
    fn gradient_check_5x5() {
        let conv = Conv2d::new(1, 2, 5, 9);
        let err = crate::gradcheck::check_layer(Box::new(conv), [1, 1, 6, 6], 13);
        assert!(err < 3e-2, "conv5 gradient error {err}");
    }

    #[test]
    fn eval_forward_leaves_no_cache_and_matches_train() {
        let mut conv = Conv2d::new(3, 5, 3, 21);
        let x = Tensor::from_vec(
            [2, 3, 4, 4],
            (0..96).map(|i| (i as f32) * 0.03 - 1.0).collect(),
        );
        let y_train = conv.forward(&x, true);
        assert!(!conv.cached_cols.is_empty());
        let y_eval = conv.forward(&x, false);
        assert_eq!(y_train.data(), y_eval.data(), "conv output depends on mode");
        assert!(
            conv.cached_cols.is_empty(),
            "eval-mode forward retained the im2col cache"
        );
        let mut scratch = Scratch::new();
        let y_infer = conv.infer(&x, &mut scratch);
        assert_eq!(y_train.data(), y_infer.data());
    }

    #[test]
    #[should_panic(expected = "train-mode forward")]
    fn backward_after_eval_forward_panics() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        let x = Tensor::ones([1, 1, 3, 3]);
        conv.forward(&x, false);
        conv.backward(&Tensor::ones([1, 1, 3, 3]));
    }

    #[test]
    fn fused_matches_conv_then_bn_eval() {
        let mut conv = Conv2d::new_no_bias(2, 4, 3, 5);
        let mut bn = BatchNorm2d::new(4);
        // Drive the running statistics away from the identity.
        let x = Tensor::from_vec(
            [2, 2, 3, 3],
            (0..36).map(|i| ((i * 7) % 11) as f32 * 0.2 - 1.0).collect(),
        );
        for _ in 0..20 {
            let y = conv.forward(&x, true);
            bn.forward(&y, true);
        }
        let unfused = bn.forward(&conv.forward(&x, false), false);
        let mut fused = conv.fused(&bn);
        let fused_out = fused.forward(&x, false);
        for (a, b) in unfused.data().iter().zip(fused_out.data()) {
            assert!((a - b).abs() <= 1e-5 + 1e-5 * a.abs(), "{a} vs {b}");
        }
    }
}
