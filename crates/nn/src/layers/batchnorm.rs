//! 2-D batch normalization.

use super::{Layer, Param};
use crate::compute::Scratch;
use crate::simd;
use crate::tensor::Tensor;

/// Batch normalization over the channel dimension of NCHW tensors.
///
/// In training mode, statistics come from the batch, running statistics
/// are updated with momentum, and the normalized activations are cached
/// for backward; in evaluation mode (and [`Layer::infer`]) the running
/// statistics are used, nothing is cached, and nothing is mutated — so a
/// trained Q-network evaluates deterministically and inference-only
/// holders carry no cache memory.
pub struct BatchNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Cached forward state (training-mode forwards only).
    xhat: Vec<f32>,
    inv_std: Vec<f32>,
    cached_shape: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with unit scale and zero shift.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: Param::new(vec![1.0; channels]),
            beta: Param::new(vec![0.0; channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            xhat: Vec::new(),
            inv_std: Vec::new(),
            cached_shape: [0; 4],
        }
    }

    /// The per-channel scale γ (for [`super::Conv2d::fused`]).
    pub fn gamma(&self) -> &[f32] {
        &self.gamma.data
    }

    /// The per-channel shift β.
    pub fn beta(&self) -> &[f32] {
        &self.beta.data
    }

    /// The numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// The running mean per channel (for serialization and tests).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Copies the non-parameter state (running statistics) from another
    /// instance — needed when synchronizing a target network.
    pub fn copy_stats_from(&mut self, other: &BatchNorm2d) {
        self.running_mean.clone_from(&other.running_mean);
        self.running_var.clone_from(&other.running_var);
    }

    /// The shared evaluation-mode forward: running statistics, no caching,
    /// no mutation.
    fn eval_forward(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let plane = h * w;
        let mut out = scratch.tensor(x.shape());
        for ci in 0..c {
            let (mean, var) = (self.running_mean[ci], self.running_var[ci]);
            let inv = 1.0 / (var + self.eps).sqrt();
            let (g, b) = (self.gamma.data[ci], self.beta.data[ci]);
            for s in 0..n {
                let base = (s * c + ci) * plane;
                // Vectorized normalize over the contiguous channel plane.
                simd::bn_apply(
                    &x.data()[base..base + plane],
                    &mut out.data_mut()[base..base + plane],
                    mean,
                    inv,
                    g,
                    b,
                );
            }
        }
        out
    }
}

impl Layer for BatchNorm2d {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        if !train {
            // Evaluation-mode forwards leave no cache behind.
            self.xhat = Vec::new();
            self.cached_shape = [0; 4];
            return self.eval_forward(x, scratch);
        }
        let [n, c, h, w] = x.shape();
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let m = (n * h * w) as f32;
        let plane = h * w;
        let mut out = scratch.tensor(x.shape());
        self.xhat.resize(x.len(), 0.0);
        self.inv_std.resize(c, 0.0);
        self.cached_shape = x.shape();
        for ci in 0..c {
            let (mean, var) = {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for s in 0..n {
                    let base = (s * c + ci) * plane;
                    for &v in &x.data()[base..base + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / m as f64) as f32;
                let var = ((sq / m as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            };
            let inv = 1.0 / (var + self.eps).sqrt();
            self.inv_std[ci] = inv;
            let (g, b) = (self.gamma.data[ci], self.beta.data[ci]);
            for s in 0..n {
                let base = (s * c + ci) * plane;
                // Vectorized normalize + xhat cache over the contiguous
                // plane (the f64 statistics reductions above stay scalar:
                // they are sequential sums whose order must not change).
                simd::bn_normalize_cache(
                    &x.data()[base..base + plane],
                    &mut out.data_mut()[base..base + plane],
                    &mut self.xhat[base..base + plane],
                    mean,
                    inv,
                    g,
                    b,
                );
            }
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let [n, c, h, w] = self.cached_shape;
        assert!(
            !self.xhat.is_empty(),
            "BatchNorm2d::backward requires a preceding train-mode forward"
        );
        assert_eq!(
            grad_out.shape(),
            self.cached_shape,
            "BatchNorm2d grad shape"
        );
        let plane = h * w;
        let m = (n * h * w) as f32;
        let mut grad_in = scratch.tensor(self.cached_shape);
        for ci in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in base..base + plane {
                    let dy = grad_out.data()[i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * self.xhat[i] as f64;
                }
            }
            self.gamma.grad[ci] += sum_dy_xhat as f32;
            self.beta.grad[ci] += sum_dy as f32;
            let g = self.gamma.data[ci];
            let inv = self.inv_std[ci];
            let k = g * inv / m;
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in base..base + plane {
                    let dy = grad_out.data()[i];
                    grad_in.data_mut()[i] =
                        k * (m * dy - sum_dy as f32 - self.xhat[i] * sum_dy_xhat as f32);
                }
            }
        }
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.eval_forward(x, scratch)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(
            [2, 2, 1, 2],
            vec![1.0, 3.0, 10.0, 30.0, 5.0, 7.0, 20.0, 40.0],
        );
        let y = bn.forward(&x, true);
        // Per channel, output mean ≈ 0 and variance ≈ 1.
        for ci in 0..2 {
            let vals: Vec<f32> = (0..2)
                .flat_map(|s| (0..2).map(move |w| (s, w)))
                .map(|(s, w)| y.at(s, ci, 0, w))
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / 4.0;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![4.0, 4.0, 4.0, 4.0]);
        // Train a few times to move running stats toward mean 4, var 0.
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        let y = bn.forward(&Tensor::from_vec([1, 1, 1, 1], vec![4.0]), false);
        assert!(y.data()[0].abs() < 0.1, "eval output {}", y.data()[0]);
    }

    #[test]
    fn infer_matches_eval_and_leaves_no_cache() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec([1, 2, 1, 3], vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        bn.forward(&x, true);
        let eval = bn.forward(&x, false);
        assert!(bn.xhat.is_empty(), "eval-mode forward retained xhat");
        let mut scratch = Scratch::new();
        let infer = bn.infer(&x, &mut scratch);
        assert_eq!(eval.data(), infer.data());
    }

    #[test]
    #[should_panic(expected = "train-mode forward")]
    fn backward_after_eval_forward_panics() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::ones([1, 1, 1, 2]);
        bn.forward(&x, false);
        bn.backward(&Tensor::ones([1, 1, 1, 2]));
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.data[0] = 3.0;
        bn.beta.data[0] = 1.0;
        let x = Tensor::from_vec([1, 1, 1, 2], vec![-1.0, 1.0]);
        let y = bn.forward(&x, true);
        // xhat = ±1 → y = ±3 + 1.
        assert!((y.data()[0] + 2.0).abs() < 1e-3);
        assert!((y.data()[1] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn gradient_check_train_mode() {
        let bn = BatchNorm2d::new(3);
        let err = crate::gradcheck::check_layer(Box::new(bn), [2, 3, 3, 3], 5);
        assert!(err < 3e-2, "batchnorm gradient error {err}");
    }

    #[test]
    fn target_sync_copies_stats() {
        let mut a = BatchNorm2d::new(1);
        let x = Tensor::from_vec([1, 1, 1, 2], vec![10.0, 12.0]);
        a.forward(&x, true);
        let mut b = BatchNorm2d::new(1);
        b.copy_stats_from(&a);
        assert_eq!(b.running_mean(), a.running_mean());
        assert_eq!(b.running_var(), a.running_var());
    }
}
