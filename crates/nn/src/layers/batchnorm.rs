//! 2-D batch normalization.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Batch normalization over the channel dimension of NCHW tensors.
///
/// In training mode, statistics come from the batch and running statistics
/// are updated with momentum; in evaluation mode the running statistics are
/// used (so a trained Q-network evaluates deterministically).
pub struct BatchNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Cached forward state.
    xhat: Vec<f32>,
    inv_std: Vec<f32>,
    cached_shape: [usize; 4],
    cached_train: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with unit scale and zero shift.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: Param::new(vec![1.0; channels]),
            beta: Param::new(vec![0.0; channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            xhat: Vec::new(),
            inv_std: Vec::new(),
            cached_shape: [0; 4],
            cached_train: false,
        }
    }

    /// The running mean per channel (for serialization and tests).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Copies the non-parameter state (running statistics) from another
    /// instance — needed when synchronizing a target network.
    pub fn copy_stats_from(&mut self, other: &BatchNorm2d) {
        self.running_mean.clone_from(&other.running_mean);
        self.running_var.clone_from(&other.running_var);
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let m = (n * h * w) as f32;
        let plane = h * w;
        let mut out = Tensor::zeros(x.shape());
        self.xhat = vec![0.0; x.len()];
        self.inv_std = vec![0.0; c];
        self.cached_shape = x.shape();
        self.cached_train = train;
        for ci in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for s in 0..n {
                    let base = (s * c + ci) * plane;
                    for &v in &x.data()[base..base + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / m as f64) as f32;
                let var = ((sq / m as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv = 1.0 / (var + self.eps).sqrt();
            self.inv_std[ci] = inv;
            let (g, b) = (self.gamma.data[ci], self.beta.data[ci]);
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in base..base + plane {
                    let xh = (x.data()[i] - mean) * inv;
                    self.xhat[i] = xh;
                    out.data_mut()[i] = g * xh + b;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.cached_shape;
        assert_eq!(
            grad_out.shape(),
            self.cached_shape,
            "BatchNorm2d grad shape"
        );
        let plane = h * w;
        let m = (n * h * w) as f32;
        let mut grad_in = Tensor::zeros(self.cached_shape);
        for ci in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in base..base + plane {
                    let dy = grad_out.data()[i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * self.xhat[i] as f64;
                }
            }
            self.gamma.grad[ci] += sum_dy_xhat as f32;
            self.beta.grad[ci] += sum_dy as f32;
            let g = self.gamma.data[ci];
            let inv = self.inv_std[ci];
            if self.cached_train {
                let k = g * inv / m;
                for s in 0..n {
                    let base = (s * c + ci) * plane;
                    for i in base..base + plane {
                        let dy = grad_out.data()[i];
                        grad_in.data_mut()[i] =
                            k * (m * dy - sum_dy as f32 - self.xhat[i] * sum_dy_xhat as f32);
                    }
                }
            } else {
                // Eval mode: statistics are constants.
                let k = g * inv;
                for s in 0..n {
                    let base = (s * c + ci) * plane;
                    for i in base..base + plane {
                        grad_in.data_mut()[i] = k * grad_out.data()[i];
                    }
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(
            [2, 2, 1, 2],
            vec![1.0, 3.0, 10.0, 30.0, 5.0, 7.0, 20.0, 40.0],
        );
        let y = bn.forward(&x, true);
        // Per channel, output mean ≈ 0 and variance ≈ 1.
        for ci in 0..2 {
            let vals: Vec<f32> = (0..2)
                .flat_map(|s| (0..2).map(move |w| (s, w)))
                .map(|(s, w)| y.at(s, ci, 0, w))
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / 4.0;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![4.0, 4.0, 4.0, 4.0]);
        // Train a few times to move running stats toward mean 4, var 0.
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        let y = bn.forward(&Tensor::from_vec([1, 1, 1, 1], vec![4.0]), false);
        assert!(y.data()[0].abs() < 0.1, "eval output {}", y.data()[0]);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.data[0] = 3.0;
        bn.beta.data[0] = 1.0;
        let x = Tensor::from_vec([1, 1, 1, 2], vec![-1.0, 1.0]);
        let y = bn.forward(&x, true);
        // xhat = ±1 → y = ±3 + 1.
        assert!((y.data()[0] + 2.0).abs() < 1e-3);
        assert!((y.data()[1] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn gradient_check_train_mode() {
        let bn = BatchNorm2d::new(3);
        let err = crate::gradcheck::check_layer(Box::new(bn), [2, 3, 3, 3], 5);
        assert!(err < 3e-2, "batchnorm gradient error {err}");
    }

    #[test]
    fn target_sync_copies_stats() {
        let mut a = BatchNorm2d::new(1);
        let x = Tensor::from_vec([1, 1, 1, 2], vec![10.0, 12.0]);
        a.forward(&x, true);
        let mut b = BatchNorm2d::new(1);
        b.copy_stats_from(&a);
        assert_eq!(b.running_mean(), a.running_mean());
        assert_eq!(b.running_var(), a.running_var());
    }
}
