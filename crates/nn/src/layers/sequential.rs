//! Sequential layer container.

use super::{Layer, Param};
use crate::compute::Scratch;
use crate::tensor::Tensor;

/// A chain of layers applied in order.
///
/// Intermediate activations/gradients are recycled into the pass's
/// [`Scratch`] arena as soon as the next layer has consumed them, so a
/// chained forward/backward allocates nothing once the arena is warm.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential network from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return x.clone();
        };
        let mut cur = first.forward_with(x, train, scratch);
        for layer in rest {
            let next = layer.forward_with(&cur, train, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        cur
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let Some((last, front)) = self.layers.split_last_mut() else {
            return grad_out.clone();
        };
        let mut grad = last.backward_with(grad_out, scratch);
        for layer in front.iter_mut().rev() {
            let next = layer.backward_with(&grad, scratch);
            scratch.recycle(grad);
            grad = next;
        }
        grad
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let Some((first, rest)) = self.layers.split_first() else {
            return x.clone();
        };
        let mut cur = first.infer(x, scratch);
        for layer in rest {
            let next = layer.infer(&cur, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, LeakyReLU};

    #[test]
    fn chains_forward_and_backward() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 0)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(2, 1, 1, 1)),
        ]);
        let x = Tensor::ones([1, 1, 4, 4]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), [1, 1, 4, 4]);
        let g = net.backward(&Tensor::ones([1, 1, 4, 4]));
        assert_eq!(g.shape(), [1, 1, 4, 4]);
    }

    #[test]
    fn param_visit_order_is_stable() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 0)),
            Box::new(Conv2d::new(2, 1, 1, 1)),
        ]);
        let mut sizes = Vec::new();
        net.visit_params(&mut |p| sizes.push(p.data.len()));
        // conv1 weight (2·1·9), conv1 bias (2), conv2 weight (1·2·1), conv2 bias (1).
        assert_eq!(sizes, vec![18, 2, 2, 1]);
    }

    #[test]
    fn gradient_check_composite() {
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(2, 3, 3, 4)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(3, 1, 1, 5)),
        ]);
        let err = crate::gradcheck::check_layer(Box::new(net), [2, 2, 4, 4], 23);
        assert!(err < 3e-2, "sequential gradient error {err}");
    }

    #[test]
    fn infer_matches_eval_forward_with_reused_scratch() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 3, 3, 7)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(3, 2, 1, 8)),
        ]);
        let x = Tensor::from_vec(
            [2, 1, 3, 3],
            (0..18).map(|i| (i as f32) * 0.1 - 0.9).collect(),
        );
        let y = net.forward(&x, false);
        let mut scratch = Scratch::new();
        for _ in 0..3 {
            // Repeated inference through one arena stays bit-identical.
            let z = net.infer(&x, &mut scratch);
            assert_eq!(y.data(), z.data());
            scratch.recycle(z);
        }
    }
}
