//! Sequential layer container.

use super::{Layer, Param};
use crate::tensor::Tensor;

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential network from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, LeakyReLU};

    #[test]
    fn chains_forward_and_backward() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 0)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(2, 1, 1, 1)),
        ]);
        let x = Tensor::ones([1, 1, 4, 4]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), [1, 1, 4, 4]);
        let g = net.backward(&Tensor::ones([1, 1, 4, 4]));
        assert_eq!(g.shape(), [1, 1, 4, 4]);
    }

    #[test]
    fn param_visit_order_is_stable() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 0)),
            Box::new(Conv2d::new(2, 1, 1, 1)),
        ]);
        let mut sizes = Vec::new();
        net.visit_params(&mut |p| sizes.push(p.data.len()));
        // conv1 weight (2·1·9), conv1 bias (2), conv2 weight (1·2·1), conv2 bias (1).
        assert_eq!(sizes, vec![18, 2, 2, 1]);
    }

    #[test]
    fn gradient_check_composite() {
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(2, 3, 3, 4)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(3, 1, 1, 5)),
        ]);
        let err = crate::gradcheck::check_layer(Box::new(net), [2, 2, 4, 4], 23);
        assert!(err < 3e-2, "sequential gradient error {err}");
    }
}
