//! Activation functions.

use super::Layer;
use crate::tensor::Tensor;

/// Leaky rectified linear unit, `f(x) = x` for `x > 0` else `αx`.
///
/// The paper's Q-network uses LReLU after every batch-norm (Fig. 2).
pub struct LeakyReLU {
    alpha: f32,
    mask: Vec<bool>,
}

impl LeakyReLU {
    /// Creates a LeakyReLU with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyReLU {
            alpha,
            mask: Vec::new(),
        }
    }
}

impl Default for LeakyReLU {
    /// The conventional negative slope of 0.01.
    fn default() -> Self {
        LeakyReLU::new(0.01)
    }
}

impl Layer for LeakyReLU {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut out = x.clone();
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        for v in out.data_mut() {
            if *v <= 0.0 {
                *v *= self.alpha;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "LeakyReLU grad length");
        let mut grad_in = grad_out.clone();
        for (g, &pos) in grad_in.data_mut().iter_mut().zip(&self.mask) {
            if !pos {
                *g *= self.alpha;
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_behaviour() {
        let mut act = LeakyReLU::new(0.1);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = act.forward(&x, true);
        assert_eq!(y.data(), &[-0.2, -0.05, 0.5, 2.0]);
    }

    #[test]
    fn backward_scales_negative_side() {
        let mut act = LeakyReLU::new(0.1);
        let x = Tensor::from_vec([1, 1, 1, 2], vec![-1.0, 1.0]);
        act.forward(&x, true);
        let g = act.backward(&Tensor::ones([1, 1, 1, 2]));
        assert_eq!(g.data(), &[0.1, 1.0]);
    }

    #[test]
    fn gradient_check() {
        let act = LeakyReLU::default();
        let err = crate::gradcheck::check_layer(Box::new(act), [2, 2, 3, 3], 3);
        assert!(err < 1e-2, "lrelu gradient error {err}");
    }
}
