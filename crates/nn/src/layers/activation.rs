//! Activation functions.

use super::Layer;
use crate::compute::Scratch;
use crate::simd;
use crate::tensor::Tensor;

/// Leaky rectified linear unit, `f(x) = x` for `x > 0` else `αx`.
///
/// The paper's Q-network uses LReLU after every batch-norm (Fig. 2).
/// Forward and backward are pure elementwise multiplies by a per-element
/// scale `s ∈ {1.0, α}` (exact: `x·1.0 == x` bitwise), which is what lets
/// them run on the [`crate::simd`] lanes while staying bit-identical to
/// the historical branchy form. Training-mode forwards cache the scale
/// vector for backward; evaluation forwards and [`LeakyReLU::apply`] are
/// cache-free (inference holders carry no per-activation state).
pub struct LeakyReLU {
    alpha: f32,
    scale: Vec<f32>,
}

impl LeakyReLU {
    /// Creates a LeakyReLU with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyReLU {
            alpha,
            scale: Vec::new(),
        }
    }

    /// The negative slope α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Applies the activation in place without caching — the inference
    /// fast path (fused frozen networks rectify their conv outputs with
    /// this, allocating nothing).
    pub fn apply(&self, t: &mut Tensor) {
        simd::lrelu_apply(t.data_mut(), self.alpha);
    }
}

impl Clone for LeakyReLU {
    /// Clones the slope; the backward cache starts empty.
    fn clone(&self) -> Self {
        LeakyReLU::new(self.alpha)
    }
}

impl Default for LeakyReLU {
    /// The conventional negative slope of 0.01.
    fn default() -> Self {
        LeakyReLU::new(0.01)
    }
}

impl Layer for LeakyReLU {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let mut out = scratch.tensor(x.shape());
        if train {
            self.scale.resize(x.len(), 0.0);
            simd::lrelu_forward_scale(x.data(), out.data_mut(), &mut self.scale, self.alpha);
        } else {
            self.scale = Vec::new();
            out.data_mut().copy_from_slice(x.data());
            self.apply(&mut out);
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            !self.scale.is_empty() || grad_out.is_empty(),
            "LeakyReLU::backward requires a preceding train-mode forward"
        );
        assert_eq!(grad_out.len(), self.scale.len(), "LeakyReLU grad length");
        let mut grad_in = scratch.tensor(grad_out.shape());
        grad_in.data_mut().copy_from_slice(grad_out.data());
        simd::mul_assign(grad_in.data_mut(), &self.scale);
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let mut out = scratch.tensor(x.shape());
        out.data_mut().copy_from_slice(x.data());
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_behaviour() {
        let mut act = LeakyReLU::new(0.1);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = act.forward(&x, true);
        assert_eq!(y.data(), &[-0.2, -0.05, 0.5, 2.0]);
    }

    #[test]
    fn backward_scales_negative_side() {
        let mut act = LeakyReLU::new(0.1);
        let x = Tensor::from_vec([1, 1, 1, 2], vec![-1.0, 1.0]);
        act.forward(&x, true);
        let g = act.backward(&Tensor::ones([1, 1, 1, 2]));
        assert_eq!(g.data(), &[0.1, 1.0]);
    }

    #[test]
    fn gradient_check() {
        let act = LeakyReLU::default();
        let err = crate::gradcheck::check_layer(Box::new(act), [2, 2, 3, 3], 3);
        assert!(err < 1e-2, "lrelu gradient error {err}");
    }

    #[test]
    fn infer_and_apply_match_forward() {
        let mut act = LeakyReLU::new(0.2);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-2.0, 0.0, 0.5, 2.0]);
        let y = act.forward(&x, true);
        let mut scratch = Scratch::new();
        let z = act.infer(&x, &mut scratch);
        assert_eq!(y.data(), z.data());
        let mut w = x.clone();
        act.apply(&mut w);
        assert_eq!(y.data(), w.data());
        // Eval-mode forwards leave no scale cache behind.
        act.forward(&x, false);
        assert!(act.scale.is_empty());
    }
}
