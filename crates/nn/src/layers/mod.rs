//! Neural-network layers with explicit forward/backward passes.

mod activation;
mod batchnorm;
mod conv;
mod linear;
mod residual;
mod sequential;

pub use activation::LeakyReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use linear::Linear;
pub use residual::ResidualBlock;
pub use sequential::Sequential;

use crate::compute::Scratch;
use crate::tensor::Tensor;

/// A trainable parameter: data plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// The parameter values.
    pub data: Vec<f32>,
    /// The gradient accumulated by the last backward pass.
    pub grad: Vec<f32>,
}

impl Param {
    /// Creates a parameter with zeroed gradient.
    pub fn new(data: Vec<f32>) -> Self {
        let grad = vec![0.0; data.len()];
        Param { data, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// A differentiable network layer.
///
/// Layers cache whatever they need during a **training-mode** forward pass
/// and consume it in [`Layer::backward`]; a backward call must follow the
/// `train == true` forward call it differentiates. Evaluation-mode forwards
/// (`train == false`) and [`Layer::infer`] skip all caching — they cannot
/// be backpropagated through, and they keep inference-only holders (async
/// actors, frozen snapshots) from accumulating resident cache memory.
///
/// The `*_with` entry points thread a [`Scratch`] arena through the pass so
/// transient buffers (im2col panels, column gradients, outputs) are reused
/// call over call; the plain [`Layer::forward`]/[`Layer::backward`]
/// wrappers allocate a throwaway arena per call for convenience. Parameters
/// are exposed through a visitor so optimizers, serialization and
/// target-network sync can walk any composite network in a deterministic
/// order.
pub trait Layer {
    /// Computes the layer output. `train` selects training behaviour
    /// (e.g. batch statistics in [`BatchNorm2d`]) and backward caching.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_with(x, train, &mut Scratch::new())
    }

    /// [`Layer::forward`] drawing transient buffers from `scratch`.
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor;

    /// Backpropagates `grad_out` (∂L/∂output), accumulating parameter
    /// gradients and returning ∂L/∂input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_with(grad_out, &mut Scratch::new())
    }

    /// [`Layer::backward`] drawing transient buffers from `scratch`.
    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor;

    /// Evaluation-mode forward through `&self`: no cache writes, no
    /// running-statistic updates, shareable across threads. This is the
    /// path frozen policy snapshots serve actors through.
    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor;

    /// Visits every parameter in a deterministic order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Visits every non-parameter state buffer (e.g. batch-norm running
    /// statistics) in a deterministic order. Buffers are carried by
    /// serialization and target-network synchronization but are not touched
    /// by optimizers.
    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        let _ = f;
    }

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Samples a He-normal weight via Box-Muller from a seeded RNG.
pub(crate) fn he_normal(rng: &mut rand::rngs::StdRng, fan_in: usize) -> f32 {
    use rand::Rng;
    let std = (2.0 / fan_in as f32).sqrt();
    let u1: f32 = rng.random::<f32>().max(1e-9);
    let u2: f32 = rng.random::<f32>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    z * std
}
