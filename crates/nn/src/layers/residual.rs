//! Residual blocks in the style of the paper's Fig. 2.

use super::{BatchNorm2d, Conv2d, Layer, LeakyReLU, Param, Sequential};
use crate::compute::Scratch;
use crate::tensor::Tensor;

/// A residual block: `LReLU(body(x) + x)`.
///
/// The paper's body is `Conv5x5 → BN → LReLU → Conv5x5 → BN` with the skip
/// connection added before the final activation (Fig. 2), as in AlphaZero.
pub struct ResidualBlock {
    body: Sequential,
    act: LeakyReLU,
}

impl ResidualBlock {
    /// Creates the paper's residual block over `channels` feature maps.
    pub fn paper(channels: usize, seed: u64) -> Self {
        let body = Sequential::new(vec![
            Box::new(Conv2d::new_no_bias(channels, channels, 5, seed)),
            Box::new(BatchNorm2d::new(channels)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new_no_bias(
                channels,
                channels,
                5,
                seed.wrapping_add(1),
            )),
            Box::new(BatchNorm2d::new(channels)),
        ]);
        ResidualBlock {
            body,
            act: LeakyReLU::default(),
        }
    }

    /// Creates a residual block with a custom body (the skip connection and
    /// final activation are added around it).
    pub fn with_body(body: Sequential) -> Self {
        Self::with_body_and_activation(body, LeakyReLU::default())
    }

    /// Creates a residual block with a custom body and output activation.
    pub fn with_body_and_activation(body: Sequential, act: LeakyReLU) -> Self {
        ResidualBlock { body, act }
    }
}

impl Layer for ResidualBlock {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let mut y = self.body.forward_with(x, train, scratch);
        y.add_assign(x);
        let out = self.act.forward_with(&y, train, scratch);
        scratch.recycle(y);
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let g = self.act.backward_with(grad_out, scratch);
        let mut grad_in = self.body.backward_with(&g, scratch);
        grad_in.add_assign(&g);
        scratch.recycle(g);
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let mut y = self.body.infer(x, scratch);
        y.add_assign(x);
        self.act.apply(&mut y);
        y
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.body.visit_buffers(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shape() {
        let mut block = ResidualBlock::paper(4, 0);
        let x = Tensor::ones([2, 4, 6, 6]);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
        let g = block.backward(&Tensor::ones([2, 4, 6, 6]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn zero_body_is_identity_plus_activation() {
        // With a body that outputs zero, the block reduces to LReLU(x).
        let mut conv = Conv2d::new(1, 1, 1, 0);
        conv.visit_params(&mut |p| p.data.iter_mut().for_each(|v| *v = 0.0));
        let mut block = ResidualBlock::with_body(Sequential::new(vec![Box::new(conv)]));
        let x = Tensor::from_vec([1, 1, 1, 2], vec![-1.0, 2.0]);
        let y = block.forward(&x, true);
        assert_eq!(y.data(), &[-0.01, 2.0]);
    }

    #[test]
    fn gradient_check() {
        // Small custom body (3x3 convs, no BN) for a tight numeric check.
        let body = Sequential::new(vec![
            Box::new(Conv2d::new(2, 2, 3, 6)),
            Box::new(LeakyReLU::default()),
            Box::new(Conv2d::new(2, 2, 3, 7)),
        ]);
        let block = ResidualBlock::with_body(body);
        let err = crate::gradcheck::check_layer(Box::new(block), [1, 2, 4, 4], 31);
        assert!(err < 3e-2, "residual gradient error {err}");
    }

    #[test]
    fn paper_block_gradient_check_smooth() {
        // The exact paper topology (conv5-BN-act-conv5-BN + skip + act) with
        // slope-1 (identity) activations: batch-norm centres values at zero,
        // so finite differences through the LeakyReLU kink are meaningless,
        // but with a smooth activation the full BN/conv/skip gradient math
        // is checkable exactly. (LeakyReLU's own gradient is covered by its
        // unit tests.)
        let smooth = |seed: u64| -> Sequential {
            Sequential::new(vec![
                Box::new(Conv2d::new_no_bias(2, 2, 5, seed)),
                Box::new(BatchNorm2d::new(2)),
                Box::new(LeakyReLU::new(1.0)),
                Box::new(Conv2d::new_no_bias(2, 2, 5, seed.wrapping_add(1))),
                Box::new(BatchNorm2d::new(2)),
            ])
        };
        let block = ResidualBlock::with_body_and_activation(smooth(8), LeakyReLU::new(1.0));
        let err = crate::gradcheck::check_layer(Box::new(block), [2, 2, 4, 4], 37);
        assert!(err < 3e-2, "paper residual gradient error {err}");
    }
}
