//! Finite-difference gradient checking.
//!
//! The property-test backbone of this crate: every layer's analytic
//! gradients (both input and parameter gradients) are compared against
//! central finite differences of a random linear functional of the output.

use crate::compute::Scratch;
use crate::layers::Layer;
use crate::tensor::Tensor;
use rand::prelude::*;

/// Checks a layer's gradients against finite differences.
///
/// Builds a random input of `shape` and a random projection `r`, defines the
/// scalar loss `L = Σ r ⊙ layer(x)`, and compares analytic `∂L/∂x` and
/// `∂L/∂θ` with central differences. Returns the maximum relative error.
///
/// Training mode is used for the forward pass, so stochastic-free layers
/// (everything in this crate) are exactly checkable. All passes run with a
/// private [`Scratch`] arena; use [`check_layer_with`] to supply (and
/// stress) an external one.
pub fn check_layer(layer: Box<dyn Layer>, shape: [usize; 4], seed: u64) -> f32 {
    check_layer_with(layer, shape, seed, &mut Scratch::new())
}

/// [`check_layer`] running every forward and backward probe through the
/// caller's [`Scratch`] arena — hundreds of passes over one small free
/// list, so buffer-recycling bugs (stale contents, wrong sizes) surface as
/// gradient errors here.
pub fn check_layer_with(
    mut layer: Box<dyn Layer>,
    shape: [usize; 4],
    seed: u64,
    scratch: &mut Scratch,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let volume: usize = shape.iter().product();
    let x = Tensor::from_vec(
        shape,
        (0..volume)
            .map(|_| rng.random::<f32>() * 2.0 - 1.0)
            .collect(),
    );
    let out = layer.forward_with(&x, true, scratch);
    let r: Vec<f32> = (0..out.len())
        .map(|_| rng.random::<f32>() * 2.0 - 1.0)
        .collect();

    // Analytic gradients.
    layer.zero_grad();
    let grad_out = Tensor::from_vec(out.shape(), r.clone());
    scratch.recycle(out);
    let grad_in = layer.backward_with(&grad_out, scratch);
    let mut param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| param_grads.push(p.grad.clone()));

    let loss = |layer: &mut dyn Layer, x: &Tensor, r: &[f32], scratch: &mut Scratch| -> f64 {
        let y = layer.forward_with(x, true, scratch);
        let l = y
            .data()
            .iter()
            .zip(r)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        scratch.recycle(y);
        l
    };

    const EPS: f32 = 1e-2;
    let mut max_err = 0.0f32;
    // Piecewise-linear activations (LeakyReLU) make the loss non-smooth at
    // kinks, where finite differences are meaningless. Each probe therefore
    // computes the numeric derivative at two step sizes; if the two
    // estimates disagree the coordinate straddles a kink and is skipped.
    let mut check = |analytic: f32, n_full: f64, n_half: f64| {
        let agree = (n_full - n_half).abs() <= 0.08 * n_full.abs().max(n_half.abs()).max(1e-3);
        if !agree {
            return;
        }
        let denom = analytic.abs().max(n_half.abs() as f32).max(1e-2);
        let err = (analytic - n_half as f32).abs() / denom;
        if err > max_err {
            max_err = err;
        }
    };

    // Input gradient: probe a bounded number of coordinates.
    let probes: Vec<usize> = (0..volume.min(24))
        .map(|_| rng.random_range(0..volume))
        .collect();
    for &i in &probes {
        let numeric = |layer: &mut dyn Layer, eps: f32, scratch: &mut Scratch| -> f64 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = loss(layer, &xp, &r, scratch);
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = loss(layer, &xm, &r, scratch);
            (lp - lm) / (2.0 * eps as f64)
        };
        let n_full = numeric(layer.as_mut(), EPS, scratch);
        let n_half = numeric(layer.as_mut(), EPS / 2.0, scratch);
        check(grad_in.data()[i], n_full, n_half);
    }

    // Parameter gradients: probe each parameter tensor.
    for (pi, pgrad) in param_grads.iter().enumerate() {
        let plen = pgrad.len();
        let coords: Vec<usize> = (0..plen.min(12))
            .map(|_| rng.random_range(0..plen))
            .collect();
        for &ci in &coords {
            let perturb = |layer: &mut dyn Layer, delta: f32| {
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.data[ci] += delta;
                    }
                    idx += 1;
                });
            };
            let numeric = |layer: &mut dyn Layer, eps: f32, scratch: &mut Scratch| -> f64 {
                perturb(layer, eps);
                let lp = loss(layer, &x, &r, scratch);
                perturb(layer, -2.0 * eps);
                let lm = loss(layer, &x, &r, scratch);
                perturb(layer, eps);
                (lp - lm) / (2.0 * eps as f64)
            };
            let n_full = numeric(layer.as_mut(), EPS, scratch);
            let n_half = numeric(layer.as_mut(), EPS / 2.0, scratch);
            check(pgrad[ci], n_full, n_half);
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Layer, Param};

    /// A deliberately wrong layer to prove the checker catches bugs.
    struct BrokenScale {
        w: Param,
    }

    impl Layer for BrokenScale {
        fn forward_with(&mut self, x: &Tensor, _t: bool, _s: &mut Scratch) -> Tensor {
            let mut y = x.clone();
            y.scale(self.w.data[0]);
            y
        }
        fn backward_with(&mut self, grad_out: &Tensor, _s: &mut Scratch) -> Tensor {
            // BUG: claims gradient 1 regardless of w.
            self.w.grad[0] += 123.0;
            grad_out.clone()
        }
        fn infer(&self, x: &Tensor, _s: &mut Scratch) -> Tensor {
            let mut y = x.clone();
            y.scale(self.w.data[0]);
            y
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    #[test]
    fn detects_broken_gradients() {
        let layer = BrokenScale {
            w: Param::new(vec![2.0]),
        };
        let err = check_layer(Box::new(layer), [1, 1, 2, 2], 1);
        assert!(err > 0.1, "checker failed to flag broken layer ({err})");
    }

    #[test]
    fn passes_correct_layer() {
        let err = check_layer(Box::new(Conv2d::new(1, 1, 3, 2)), [1, 1, 4, 4], 3);
        assert!(err < 3e-2, "{err}");
    }
}
