//! Thread-count determinism suite (DESIGN.md §11).
//!
//! The compute engine's fixed per-element reduction order promises that
//! multi-threaded forwards/backwards are **bit-identical across runs and
//! across thread counts** — the guarantee the whole checkpoint/resume
//! story leans on. This lives in its own test binary (not `parity.rs`)
//! because it mutates the global `nn::compute` thread budget, and a
//! separate process keeps that mutation from racing the other suites'
//! thread settings. CI runs it under `PREFIXRL_NN_THREADS=1` and `=4`
//! (the `nn-parity` job).

use nn::compute::{self, Scratch};
use nn::{Conv2d, Layer, Tensor};
use rand::prelude::*;

/// The same Q-network layer shapes the parity suite sweeps.
const QNET_SHAPES: &[(usize, usize, usize, usize)] = &[
    (4, 8, 3, 8),
    (8, 8, 5, 8),
    (8, 8, 1, 8),
    (8, 4, 1, 8),
    (4, 12, 3, 16),
    (12, 12, 5, 16),
    (12, 12, 1, 16),
    (12, 4, 1, 16),
];

fn random_tensor(rng: &mut StdRng, shape: [usize; 4]) -> Tensor {
    let volume: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..volume)
            .map(|_| rng.random::<f32>() * 2.0 - 1.0)
            .collect(),
    )
}

fn grads(layer: &mut dyn Layer) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.grad.clone()));
    out
}

#[test]
fn multithreaded_passes_are_bit_identical_across_runs_and_thread_counts() {
    let mut rng = StdRng::seed_from_u64(14);
    let before = compute::threads();
    for &(in_c, out_c, k, h) in QNET_SHAPES {
        let batch = 6;
        let x = random_tensor(&mut rng, [batch, in_c, h, h]);
        let grad_out = random_tensor(&mut rng, [batch, out_c, h, h]);
        let run = |threads: usize| {
            compute::set_threads(threads);
            let mut conv = Conv2d::new(in_c, out_c, k, 45);
            let mut scratch = Scratch::new();
            let y = conv.forward_with(&x, true, &mut scratch);
            conv.zero_grad();
            let gin = conv.backward_with(&grad_out, &mut scratch);
            let infer = conv.infer(&x, &mut scratch);
            (
                y.data().to_vec(),
                gin.data().to_vec(),
                grads(&mut conv),
                infer.data().to_vec(),
            )
        };
        let base = run(1);
        let rerun = run(1);
        assert_eq!(base, rerun, "single-thread rerun diverged at k{k} h{h}");
        for threads in [2, 4] {
            let mt = run(threads);
            assert_eq!(
                base, mt,
                "{threads}-thread pass diverged from single-thread at \
                 {in_c}->{out_c} k{k} h{h}"
            );
        }
    }
    compute::set_threads(before);
}

#[test]
fn batch_one_row_panel_path_is_bit_identical() {
    // A lone sample takes the gemm_rows_parallel path instead of the
    // sample partition; it must agree with the serial result too.
    let mut rng = StdRng::seed_from_u64(15);
    let x = random_tensor(&mut rng, [1, 12, 16, 16]);
    let run = |threads: usize| {
        compute::set_threads(threads);
        let mut conv = Conv2d::new(12, 12, 5, 46);
        conv.forward(&x, true).data().to_vec()
    };
    let before = compute::threads();
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            run(threads),
            "batch-1 diverged at {threads} threads"
        );
    }
    compute::set_threads(before);
}
