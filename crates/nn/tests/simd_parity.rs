//! SIMD lane parity suite (DESIGN.md §14).
//!
//! The AVX kernel tier in `nn::simd`/`nn::compute` promises **bit-exact**
//! agreement with the preserved naive kernels in `nn::compute::reference`
//! at every lane width: lanes only span disjoint output elements, every
//! element's `k`-reduction stays ascending and one-product-at-a-time, and
//! no FMA contraction is emitted. These tests pin that contract across
//! the places it could break:
//!
//! - lane-remainder shapes (`n % 8`, `n % 16`, `m % 4`, tiny `k`) where the
//!   vector path hands the tail to scalar code;
//! - cache-blocking boundaries (`k > KC`, `n > NC`) where packed panels
//!   are stitched back together;
//! - unaligned operands (subslices offset by one element — the kernels
//!   must not assume 32-byte alignment);
//! - full conv forward/backward through the layer stack;
//! - thread-count invariance on top of lane invariance.
//!
//! Everything runs twice — vectors force-enabled and force-disabled via
//! [`nn::simd::set_enabled`] — inside **one** test body: the switch is
//! process-global, so concurrent `#[test]` threads toggling it would race.
//! On builds without the `simd` feature (or without AVX) the toggle is a
//! no-op and both passes exercise the scalar engine, so the suite is
//! feature-portable by construction.

use nn::compute::{self, reference, ThreadPool};
use nn::{simd, Conv2d, Layer, Tensor};
use rand::prelude::*;

fn filled(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
}

/// All three GEMM orientations against their reference twins, bitwise,
/// with operands deliberately offset one element from their allocation so
/// nothing is 32-byte aligned.
fn check_gemm_family(rng: &mut StdRng, m: usize, k: usize, n: usize) {
    let ctx = format!("m={m} k={k} n={n} (simd enabled: {})", simd::enabled());
    let a_buf = filled(rng, m * k + 1);
    let b_buf = filled(rng, k * n + 1);
    let (a, b) = (&a_buf[1..], &b_buf[1..]);
    // C = A·B, accumulating into a non-zero C (the engine adds into C).
    let c_init = filled(rng, m * n + 1);
    let mut c = c_init[1..].to_vec();
    let mut c_ref = c.clone();
    compute::gemm(m, k, n, a, b, &mut c);
    reference::gemm(m, k, n, a, b, &mut c_ref);
    assert_eq!(c, c_ref, "gemm diverged at {ctx}");

    // C = A·Bᵀ with B stored row-major [n × k].
    let bt_buf = filled(rng, n * k + 1);
    let bt = &bt_buf[1..];
    let mut c = c_init[1..].to_vec();
    let mut c_ref = c.clone();
    compute::gemm_a_bt(m, k, n, a, bt, &mut c);
    reference::gemm_a_bt(m, k, n, a, bt, &mut c_ref);
    assert_eq!(c, c_ref, "gemm_a_bt diverged at {ctx}");

    // C = Aᵀ·B with A stored row-major [k × m].
    let at_buf = filled(rng, k * m + 1);
    let at = &at_buf[1..];
    let mut c = c_init[1..].to_vec();
    let mut c_ref = c.clone();
    compute::gemm_at_b(m, k, n, at, b, &mut c);
    reference::gemm_at_b(m, k, n, at, b, &mut c_ref);
    assert_eq!(c, c_ref, "gemm_at_b diverged at {ctx}");
}

/// Conv forward and backward (input/weight/bias gradients) against the
/// preserved naive im2col path, bitwise.
fn check_conv(rng: &mut StdRng, in_c: usize, out_c: usize, k: usize, h: usize, batch: usize) {
    let ctx = format!(
        "conv {in_c}->{out_c} k{k} h{h} batch {batch} (simd enabled: {})",
        simd::enabled()
    );
    let mut conv = Conv2d::new(in_c, out_c, k, 42);
    let mut p = Vec::new();
    conv.visit_params(&mut |pr| p.push(pr.data.clone()));
    let x = Tensor::from_vec([batch, in_c, h, h], filled(rng, batch * in_c * h * h));
    let naive_fwd = reference::conv2d_forward(in_c, out_c, k, &p[0], Some(&p[1]), &x);
    let y = conv.forward(&x, true);
    assert_eq!(naive_fwd.out.data(), y.data(), "forward diverged at {ctx}");

    let grad_out = Tensor::from_vec([batch, out_c, h, h], filled(rng, batch * out_c * h * h));
    let naive_bwd = reference::conv2d_backward(
        in_c,
        out_c,
        k,
        &p[0],
        true,
        &naive_fwd.cols,
        x.shape(),
        &grad_out,
    );
    conv.zero_grad();
    let grad_in = conv.backward(&grad_out);
    assert_eq!(
        naive_bwd.grad_in.data(),
        grad_in.data(),
        "grad_in diverged at {ctx}"
    );
    let mut g = Vec::new();
    conv.visit_params(&mut |pr| g.push(pr.grad.clone()));
    assert_eq!(naive_bwd.weight_grad, g[0], "weight grad diverged at {ctx}");
    assert_eq!(
        naive_bwd.bias_grad.as_deref().unwrap(),
        g[1].as_slice(),
        "bias grad diverged at {ctx}"
    );
}

/// The row-parallel entry must agree with the serial engine bitwise at
/// every worker count (lanes and threads both only split disjoint
/// outputs).
fn check_parallel(rng: &mut StdRng, m: usize, k: usize, n: usize) {
    let a = filled(rng, m * k);
    let b = filled(rng, k * n);
    let mut serial = vec![0.0f32; m * n];
    compute::gemm(m, k, n, &a, &b, &mut serial);
    for threads in [1usize, 2, 4, 7] {
        let pool = ThreadPool::new(threads);
        let mut c = vec![0.0f32; m * n];
        compute::gemm_rows_parallel(&pool, m, k, n, &a, &b, &mut c);
        assert_eq!(
            c,
            serial,
            "parallel gemm diverged at m={m} k={k} n={n}, {threads} threads \
             (simd enabled: {})",
            simd::enabled()
        );
    }
}

#[test]
fn simd_and_scalar_kernels_are_bit_identical_to_reference() {
    for force_on in [true, false] {
        simd::set_enabled(force_on);
        let mut rng = StdRng::seed_from_u64(0x51_3D ^ force_on as u64);
        // Degenerate and lane-remainder shapes: every combination of a
        // full/partial 4-row block, full/partial 8- and 16-column tiles,
        // and k values that start, straddle, or fill a KC panel.
        for &m in &[1usize, 3, 4, 5, 9] {
            for &k in &[1usize, 7, 16, 17] {
                for &n in &[1usize, 7, 8, 15, 16, 17, 31, 33] {
                    check_gemm_family(&mut rng, m, k, n);
                }
            }
        }
        // Cache-blocking boundaries: k crossing KC=256, n crossing
        // NC=1024, both with ragged remainders.
        check_gemm_family(&mut rng, 9, 300, 68);
        check_gemm_family(&mut rng, 5, 37, 1050);
        // A paper-tile shape: the im2col panel of one 5×5 residual-block
        // convolution row-block at C=256 on the 32×32 grid has k=6400,
        // n=1024; this keeps the same ragged geometry at test-budget size.
        check_gemm_family(&mut rng, 12, 403, 260);
        // 1×1 convs reduce to plain GEMM with k = in_c.
        for &(in_c, out_c, kk, h, batch) in &[
            (4usize, 8usize, 3usize, 8usize, 2usize),
            (8, 8, 5, 8, 1),
            (8, 4, 1, 8, 3),
            (12, 12, 5, 16, 2),
            (3, 5, 1, 7, 1), // odd everything
        ] {
            check_conv(&mut rng, in_c, out_c, kk, h, batch);
        }
        check_parallel(&mut rng, 23, 65, 130);
    }
    simd::set_enabled(true);
}

#[test]
fn dispatch_reports_are_consistent() {
    // `enabled()` may only be true when the lane code is compiled in; on
    // x86-64 with the default feature it should actually engage.
    if simd::enabled() {
        assert!(simd::compiled());
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    assert!(simd::compiled());
    #[cfg(not(feature = "simd"))]
    assert!(!simd::compiled() && !simd::enabled());
}
