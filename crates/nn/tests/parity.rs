//! Kernel-generation parity suite (DESIGN.md §11).
//!
//! The blocked compute engine replaced the original naive per-layer loops;
//! these tests pin the contract that made that swap safe:
//!
//! - **Bit-exact forward/backward parity** with the preserved naive
//!   implementation (the seed repo's original im2col/GEMM path, kept in
//!   `nn::compute::reference`) across every layer shape used by
//!   `QNetConfig::{tiny, small}`;
//! - **Fused-BN parity** within 1e-5 of the unfused conv→BN evaluation
//!   path on the same shapes.
//!
//! The thread-count determinism axis lives in `tests/determinism.rs` — a
//! separate test binary (process) because it mutates the global
//! `nn::compute` thread budget, which would race these assertions' thread
//! setting inside one parallel test harness. CI runs both suites under
//! `PREFIXRL_NN_THREADS=1` and `=4` (the `nn-parity` job).

use nn::compute::{reference, Scratch};
use nn::{BatchNorm2d, Conv2d, Layer, Tensor};
use rand::prelude::*;

/// Every `(in_c, out_c, k, h)` convolution shape instantiated by
/// `QNetConfig::tiny(8)` (C=8 on 8×8 grids) and `QNetConfig::small(16)`
/// (C=12 on 16×16 grids): stem 3×3, residual 5×5 pairs, head 1×1 and
/// output 1×1.
const QNET_SHAPES: &[(usize, usize, usize, usize)] = &[
    // tiny(8): C=8, N=8.
    (4, 8, 3, 8),
    (8, 8, 5, 8),
    (8, 8, 1, 8),
    (8, 4, 1, 8),
    // small(16): C=12, N=16.
    (4, 12, 3, 16),
    (12, 12, 5, 16),
    (12, 12, 1, 16),
    (12, 4, 1, 16),
];

/// Batch sizes to sweep: single rollout states and a replay mini-batch.
const BATCHES: &[usize] = &[1, 5];

fn random_tensor(rng: &mut StdRng, shape: [usize; 4]) -> Tensor {
    let volume: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..volume)
            .map(|_| rng.random::<f32>() * 2.0 - 1.0)
            .collect(),
    )
}

/// Parameter tensors (weight, then bias if present) of a layer.
fn params(layer: &mut dyn Layer) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.data.clone()));
    out
}

/// Accumulated parameter gradients of a layer.
fn grads(layer: &mut dyn Layer) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.grad.clone()));
    out
}

// ----------------------------------------------------------------- tests

#[test]
fn forward_parity_is_bitwise_on_all_qnet_shapes() {
    let mut rng = StdRng::seed_from_u64(11);
    for &(in_c, out_c, k, h) in QNET_SHAPES {
        for &batch in BATCHES {
            let mut conv = Conv2d::new(in_c, out_c, k, 42);
            let p = params(&mut conv);
            let x = random_tensor(&mut rng, [batch, in_c, h, h]);
            let naive = reference::conv2d_forward(in_c, out_c, k, &p[0], Some(&p[1]), &x);
            let y = conv.forward(&x, true);
            assert_eq!(
                naive.out.data(),
                y.data(),
                "forward diverged at {in_c}->{out_c} k{k} h{h} batch {batch}"
            );
        }
    }
}

#[test]
fn backward_parity_is_bitwise_on_all_qnet_shapes() {
    let mut rng = StdRng::seed_from_u64(12);
    for &(in_c, out_c, k, h) in QNET_SHAPES {
        for &batch in BATCHES {
            let mut conv = Conv2d::new(in_c, out_c, k, 43);
            let p = params(&mut conv);
            let x = random_tensor(&mut rng, [batch, in_c, h, h]);
            let naive_fwd = reference::conv2d_forward(in_c, out_c, k, &p[0], Some(&p[1]), &x);
            let grad_out = random_tensor(&mut rng, [batch, out_c, h, h]);
            let naive = reference::conv2d_backward(
                in_c,
                out_c,
                k,
                &p[0],
                true,
                &naive_fwd.cols,
                x.shape(),
                &grad_out,
            );
            conv.forward(&x, true);
            conv.zero_grad();
            let grad_in = conv.backward(&grad_out);
            assert_eq!(
                naive.grad_in.data(),
                grad_in.data(),
                "grad_in diverged at {in_c}->{out_c} k{k} h{h} batch {batch}"
            );
            let g = grads(&mut conv);
            assert_eq!(
                naive.weight_grad, g[0],
                "weight grad diverged at {in_c}->{out_c} k{k} h{h} batch {batch}"
            );
            assert_eq!(
                naive.bias_grad.as_deref().unwrap(),
                g[1].as_slice(),
                "bias grad diverged at {in_c}->{out_c} k{k} h{h} batch {batch}"
            );
        }
    }
}

#[test]
fn fused_bn_matches_unfused_eval_on_all_qnet_shapes() {
    let mut rng = StdRng::seed_from_u64(13);
    for &(in_c, out_c, k, h) in QNET_SHAPES {
        let mut conv = Conv2d::new_no_bias(in_c, out_c, k, 44);
        let mut bn = BatchNorm2d::new(out_c);
        // Drive the running statistics away from identity so fusion has
        // something real to fold.
        for _ in 0..10 {
            let x = random_tensor(&mut rng, [2, in_c, h, h]);
            let y = conv.forward(&x, true);
            bn.forward(&y, true);
        }
        let x = random_tensor(&mut rng, [2, in_c, h, h]);
        let unfused = bn.forward(&conv.forward(&x, false), false);
        let mut fused = conv.fused(&bn);
        let fused_out = fused.forward(&x, false);
        for (i, (a, b)) in unfused.data().iter().zip(fused_out.data()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 + 1e-5 * a.abs(),
                "fused diverged at {in_c}->{out_c} k{k} h{h} elem {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn gradcheck_through_a_shared_scratch_arena() {
    // Satellite: the gradient checker itself must exercise the
    // scratch-arena backward path. One arena serves every probe of every
    // layer here; stale-buffer bugs would show up as gradient error.
    let mut scratch = Scratch::new();
    let conv_err = nn::gradcheck::check_layer_with(
        Box::new(Conv2d::new(2, 3, 3, 7)),
        [2, 2, 4, 4],
        19,
        &mut scratch,
    );
    assert!(conv_err < 3e-2, "conv via shared scratch: {conv_err}");
    let bn_err = nn::gradcheck::check_layer_with(
        Box::new(BatchNorm2d::new(3)),
        [2, 3, 3, 3],
        23,
        &mut scratch,
    );
    assert!(bn_err < 3e-2, "batchnorm via shared scratch: {bn_err}");
    let lin_err = nn::gradcheck::check_layer_with(
        Box::new(nn::Linear::new(6, 4, 2)),
        [3, 6, 1, 1],
        29,
        &mut scratch,
    );
    assert!(lin_err < 2e-2, "linear via shared scratch: {lin_err}");
    assert!(
        scratch.free_buffers() > 0,
        "the shared arena never recycled a buffer"
    );
}

#[test]
fn linear_kernel_parity_is_bitwise() {
    // The dense layer's kernel path against the original per-element
    // loops.
    let mut rng = StdRng::seed_from_u64(15);
    let (batch, in_f, out_f) = (5, 24, 10);
    let mut lin = nn::Linear::new(in_f, out_f, 3);
    let p = params(&mut lin);
    let x = random_tensor(&mut rng, [batch, in_f, 1, 1]);
    // Naive forward: out[s,o] = w_o · x_s + b_o.
    let mut naive = vec![0.0f32; batch * out_f];
    for s in 0..batch {
        let xin = &x.data()[s * in_f..(s + 1) * in_f];
        for o in 0..out_f {
            let wrow = &p[0][o * in_f..(o + 1) * in_f];
            let dot: f32 = wrow.iter().zip(xin).map(|(a, b)| a * b).sum();
            naive[s * out_f + o] = dot + p[1][o];
        }
    }
    let y = lin.forward(&x, true);
    assert_eq!(naive, y.data(), "linear forward diverged");
    // Naive backward.
    let grad_out = random_tensor(&mut rng, [batch, out_f, 1, 1]);
    let mut wgrad = vec![0.0f32; out_f * in_f];
    let mut bgrad = vec![0.0f32; out_f];
    let mut gin = vec![0.0f32; batch * in_f];
    for s in 0..batch {
        let xin = &x.data()[s * in_f..(s + 1) * in_f];
        let go = &grad_out.data()[s * out_f..(s + 1) * out_f];
        for (oi, &g) in go.iter().enumerate() {
            bgrad[oi] += g;
            for i in 0..in_f {
                wgrad[oi * in_f + i] += g * xin[i];
                gin[s * in_f + i] += g * p[0][oi * in_f + i];
            }
        }
    }
    lin.zero_grad();
    let grad_in = lin.backward(&grad_out);
    let g = grads(&mut lin);
    assert_eq!(gin, grad_in.data(), "linear grad_in diverged");
    assert_eq!(wgrad, g[0], "linear weight grad diverged");
    assert_eq!(bgrad, g[1], "linear bias grad diverged");
}
