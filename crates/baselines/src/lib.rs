//! Baseline prefix-adder optimizers the paper compares against.
//!
//! - [`sa`]: simulated annealing over the unrestricted prefix-graph space
//!   with the analytical cost model — Moto & Kaneko, ISCAS 2018 (ref. \[14\]);
//! - [`pruned`]: pruned structural search with (size, level, fanout)
//!   dominance pruning in the spirit of Roy et al., TCAD 2014 (ref. \[15\]);
//! - [`crosslayer`]: the machine-learning cross-layer approach of Ma et
//!   al., TCAD 2019 (ref. \[10\]) — candidate generation, a learned metric
//!   predictor, and synthesis of the predicted-Pareto subset;
//! - [`commercial`]: a stand-in for the commercial tool's adder library
//!   (Fig. 5): pick the best architecture from a parameterized family per
//!   delay target.
//!
//! Exact reimplementations of \[10\] and \[15\] are impossible from the
//! PrefixRL paper alone; these are documented approximations (DESIGN.md §2)
//! that fill the same role in every figure.

#![warn(missing_docs)]

pub mod commercial;
pub mod crosslayer;
pub mod pruned;
pub mod sa;

pub use commercial::{choose_at_target, choose_at_target_with, commercial_library};
pub use crosslayer::{cross_layer, CrossLayerConfig};
pub use pruned::{pruned_search, PrunedSearchConfig};
pub use sa::{anneal, sa_frontier, SaConfig};
