//! Pruned structural search (in the spirit of ref. \[15\], Roy et al.).
//!
//! Reference \[15\] prunes the intractable prefix-adder space with heuristic
//! rules (level/fanout bounds, dominance) until exhaustive search becomes
//! feasible. This module implements the same idea as a generational beam
//! search: starting from the regular structures, all single-node
//! modifications are scored under the analytical model, dominated and
//! constraint-violating candidates are pruned, and a bounded beam of
//! Pareto-diverse survivors seeds the next generation. The collected pool
//! plays the role of \[15\]'s pruned adder set in every figure (and feeds
//! the cross-layer baseline of ref. \[10\]).

use prefix_graph::{analytical, structures, PrefixGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pruned-search parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrunedSearchConfig {
    /// Beam width per generation.
    pub beam_width: usize,
    /// Generations of expansion.
    pub generations: usize,
    /// Maximum node fanout allowed (\[15\] prunes high-fanout structures).
    pub max_fanout: u16,
    /// Maximum logic level allowed, as a slack over `⌈log₂N⌉`.
    pub level_slack: u16,
    /// Cap on the returned pool size (kept Pareto-diverse).
    pub pool_limit: usize,
}

impl Default for PrunedSearchConfig {
    fn default() -> Self {
        PrunedSearchConfig {
            beam_width: 24,
            generations: 24,
            max_fanout: 8,
            level_slack: 4,
            pool_limit: 1200,
        }
    }
}

impl PrunedSearchConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        PrunedSearchConfig {
            beam_width: 10,
            generations: 8,
            pool_limit: 200,
            ..PrunedSearchConfig::default()
        }
    }
}

fn log2_ceil(n: u16) -> u16 {
    (n as u32).next_power_of_two().trailing_zeros() as u16
}

/// Runs the pruned search, returning the collected design pool (deduped,
/// constraint-satisfying, capped at `pool_limit` by Pareto layering).
pub fn pruned_search(n: u16, cfg: &PrunedSearchConfig) -> Vec<PrefixGraph> {
    let max_level = log2_ceil(n) + cfg.level_slack;
    let admissible = |g: &PrefixGraph| g.max_fanout() <= cfg.max_fanout && g.depth() <= max_level;
    let score = |g: &PrefixGraph| {
        let m = analytical::evaluate(g);
        (m.area, m.delay)
    };

    let mut pool: BTreeMap<Vec<u64>, (PrefixGraph, (f64, f64))> = BTreeMap::new();
    let mut beam: Vec<PrefixGraph> = structures::all_regular()
        .into_iter()
        .map(|(_, ctor)| ctor(n))
        .chain((0..4).map(|s| structures::sparse_kogge_stone(n, 1 << s)))
        .filter(admissible)
        .collect();
    // Ripple never meets the level bound but is the canonical seed for
    // low-area regions; admit it regardless.
    beam.push(PrefixGraph::ripple(n));
    for g in &beam {
        pool.insert(g.canonical_key(), (g.clone(), score(g)));
    }

    for _ in 0..cfg.generations {
        let mut candidates: Vec<(PrefixGraph, (f64, f64))> = Vec::new();
        for g in &beam {
            for action in g.legal_actions() {
                let cand = g.with_action(action).expect("legal");
                if !admissible(&cand) {
                    continue;
                }
                let key = cand.canonical_key();
                if pool.contains_key(&key) {
                    continue;
                }
                let s = score(&cand);
                pool.insert(key, (cand.clone(), s));
                candidates.push((cand, s));
            }
        }
        if candidates.is_empty() {
            break;
        }
        beam = select_beam(candidates, cfg.beam_width);
    }

    let mut all: Vec<(PrefixGraph, (f64, f64))> = pool.into_values().collect();
    // Keep the pool bounded via successive Pareto layers (diversity over
    // pure greed, as [15]'s pruned set spans the whole trade-off).
    let mut kept = Vec::new();
    while !all.is_empty() && kept.len() < cfg.pool_limit {
        let layer = pareto_layer(&all);
        let mut rest = Vec::new();
        for (i, item) in all.into_iter().enumerate() {
            if layer.contains(&i) && kept.len() < cfg.pool_limit {
                kept.push(item.0);
            } else {
                rest.push(item);
            }
        }
        all = rest;
        if kept.len() >= cfg.pool_limit {
            break;
        }
    }
    kept
}

/// Indices of the non-dominated entries.
fn pareto_layer(items: &[(PrefixGraph, (f64, f64))]) -> Vec<usize> {
    let mut layer = Vec::new();
    'outer: for (i, (_, (a, d))) in items.iter().enumerate() {
        for (j, (_, (a2, d2))) in items.iter().enumerate() {
            if i != j && a2 <= a && d2 <= d && (a2 < a || d2 < d) {
                continue 'outer;
            }
        }
        layer.push(i);
    }
    layer
}

/// Picks a Pareto-diverse beam: non-dominated first, then best scalarized
/// at a spread of weights.
fn select_beam(mut candidates: Vec<(PrefixGraph, (f64, f64))>, width: usize) -> Vec<PrefixGraph> {
    candidates.sort_by(|x, y| x.1 .0.total_cmp(&y.1 .0).then(x.1 .1.total_cmp(&y.1 .1)));
    let layer = pareto_layer(&candidates);
    let mut chosen: Vec<usize> = layer.into_iter().take(width).collect();
    // Fill remaining slots with scalarized winners at spread weights.
    let mut w = 0.1;
    while chosen.len() < width && chosen.len() < candidates.len() {
        let best = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| !chosen.contains(i))
            .min_by(|(_, x), (_, y)| {
                let cx = w * x.1 .0 + (1.0 - w) * x.1 .1;
                let cy = w * y.1 .0 + (1.0 - w) * y.1 .1;
                cx.total_cmp(&cy)
            })
            .map(|(i, _)| i);
        match best {
            Some(i) => chosen.push(i),
            None => break,
        }
        w = if w >= 0.9 { 0.1 } else { w + 0.2 };
    }
    chosen
        .into_iter()
        .map(|i| candidates[i].0.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_legal_and_deduped() {
        let pool = pruned_search(16, &PrunedSearchConfig::fast());
        assert!(pool.len() > 20, "pool too small: {}", pool.len());
        let mut keys = std::collections::HashSet::new();
        for g in &pool {
            g.verify_legal().unwrap();
            assert!(keys.insert(g.canonical_key()), "duplicate design");
        }
    }

    #[test]
    fn respects_fanout_and_level_bounds() {
        let cfg = PrunedSearchConfig {
            max_fanout: 4,
            level_slack: 2,
            ..PrunedSearchConfig::fast()
        };
        let max_level = 4 + 2;
        for g in pruned_search(16, &cfg) {
            // The ripple seed is exempt from the level bound by design.
            if g.size() == 15 {
                continue;
            }
            assert!(g.max_fanout() <= 4, "fanout violated");
            assert!(g.depth() <= max_level, "level violated");
        }
    }

    #[test]
    fn finds_designs_off_the_regular_frontier() {
        // The search must discover designs the seed structures don't
        // contain (analytically non-dominated by any regular structure).
        let pool = pruned_search(16, &PrunedSearchConfig::fast());
        let regular: Vec<(f64, f64)> = structures::all_regular()
            .iter()
            .map(|(_, ctor)| {
                let m = analytical::evaluate(&ctor(16));
                (m.area, m.delay)
            })
            .collect();
        let novel = pool.iter().any(|g| {
            let m = analytical::evaluate(g);
            regular.iter().all(|&(a, d)| !(a <= m.area && d <= m.delay))
        });
        assert!(novel, "search never escaped the seeds");
    }

    #[test]
    fn deterministic() {
        let a = pruned_search(12, &PrunedSearchConfig::fast());
        let b = pruned_search(12, &PrunedSearchConfig::fast());
        let ka: Vec<_> = a.iter().map(|g| g.canonical_key()).collect();
        let kb: Vec<_> = b.iter().map(|g| g.canonical_key()).collect();
        assert_eq!(ka, kb);
    }
}
