//! The "Commercial" adder baseline (paper Fig. 5).
//!
//! Commercial synthesis tools instantiate an adder architecture from an
//! internal library chosen per timing constraint. This module provides that
//! library — the regular structures plus the sparse-tree family — and a
//! chooser that, like the tool, synthesizes each candidate at a delay
//! target and keeps the best.

use netlist::Library;
use prefix_graph::{structures, PrefixGraph};
use prefixrl_core::evaluator::ObjectivePoint;
use prefixrl_core::pareto::better_at_target;
use synth::optimizer::{optimize, OptimizerConfig};
use synth::sta::{self, TimingConstraints};

/// The architecture library a commercial tool selects from.
pub fn commercial_library(n: u16) -> Vec<(String, PrefixGraph)> {
    let mut lib: Vec<(String, PrefixGraph)> = vec![
        ("ripple".into(), PrefixGraph::ripple(n)),
        ("sklansky".into(), structures::sklansky(n)),
        ("brent_kung".into(), structures::brent_kung(n)),
        ("kogge_stone".into(), structures::kogge_stone(n)),
        ("ladner_fischer".into(), structures::ladner_fischer(n)),
    ];
    for s in [2u16, 4, 8] {
        if s < n {
            lib.push((
                format!("sparse_ks_{s}"),
                structures::sparse_kogge_stone(n, s),
            ));
        }
    }
    lib.dedup_by(|a, b| a.1 == b.1);
    lib
}

/// One tool-instantiated adder result at a delay target.
#[derive(Clone, Debug)]
pub struct CommercialChoice {
    /// The chosen architecture's name.
    pub architecture: String,
    /// Achieved delay, ns.
    pub delay: f64,
    /// Achieved area, µm².
    pub area: f64,
}

/// [`choose_at_target`] generalized over the circuit family: `emit` maps
/// each architecture's prefix graph to the netlist the tool instantiates
/// (`netlist::adder::generate`, `netlist::prefix_or::generate`, …), so the
/// same chooser baselines any prefix computation.
pub fn choose_at_target_with(
    n: u16,
    lib: &Library,
    cfg: &OptimizerConfig,
    target: f64,
    emit: impl Fn(&prefix_graph::PrefixGraph) -> netlist::Netlist,
) -> CommercialChoice {
    let cons = TimingConstraints::uniform(lib);
    let mut best: Option<CommercialChoice> = None;
    for (name, graph) in commercial_library(n) {
        let nl = emit(&graph);
        let out = optimize(&nl, lib, &cons, target, cfg);
        let candidate = ObjectivePoint {
            area: out.area,
            delay: out.delay,
        };
        let better = match &best {
            None => true,
            Some(b) => better_at_target(
                &candidate,
                &ObjectivePoint {
                    area: b.area,
                    delay: b.delay,
                },
                target,
            ),
        };
        if better {
            best = Some(CommercialChoice {
                architecture: name,
                delay: out.delay,
                area: out.area,
            });
        }
    }
    best.expect("library is nonempty")
}

/// Synthesizes every library architecture's **adder** at `target` and
/// returns the best outcome (commercial-tool behaviour: meet timing at
/// minimum area, otherwise be as fast as possible).
pub fn choose_at_target(
    n: u16,
    lib: &Library,
    cfg: &OptimizerConfig,
    target: f64,
) -> CommercialChoice {
    choose_at_target_with(n, lib, cfg, target, netlist::adder::generate)
}

/// Sweeps the commercial chooser across delay targets between the fastest
/// and slowest achievable, returning one choice per target — the
/// "Commercial" series of the paper's Fig. 5.
pub fn commercial_sweep(
    n: u16,
    lib: &Library,
    cfg: &OptimizerConfig,
    num_targets: usize,
) -> Vec<CommercialChoice> {
    // Range: relaxed Brent-Kung (slow end) down to aggressive Kogge-Stone.
    let cons = TimingConstraints::uniform(lib);
    let bk = netlist::adder::generate(&structures::brent_kung(n));
    let slow = sta::analyze(&bk, lib, &cons, 1.0).critical_delay;
    let ks = netlist::adder::generate(&structures::kogge_stone(n));
    let fast = optimize(&ks, lib, &cons, 0.0, cfg).delay;
    (0..num_targets)
        .map(|i| {
            let t = fast + (slow - fast) * i as f64 / (num_targets.max(2) - 1) as f64;
            choose_at_target(n, lib, cfg, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_contains_distinct_architectures() {
        let lib = commercial_library(16);
        assert!(lib.len() >= 6, "library too small: {}", lib.len());
        for (name, g) in &lib {
            g.verify_legal().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(g.n(), 16);
        }
    }

    #[test]
    fn chooser_prefers_cheap_architectures_at_loose_targets() {
        let lib = Library::nangate45();
        let cfg = OptimizerConfig::fast();
        let loose = choose_at_target(16, &lib, &cfg, 2.0);
        // A very loose target is met by the smallest architecture — never
        // Kogge-Stone (largest).
        assert_ne!(loose.architecture, "kogge_stone", "{loose:?}");
        assert!(loose.delay <= 2.0);
    }

    #[test]
    fn chooser_switches_architecture_with_target() {
        let lib = Library::nangate45();
        let cfg = OptimizerConfig::fast();
        let tight = choose_at_target(16, &lib, &cfg, 0.18);
        let loose = choose_at_target(16, &lib, &cfg, 1.5);
        assert_ne!(
            tight.architecture, loose.architecture,
            "tool must adapt its choice"
        );
    }

    #[test]
    fn chooser_generalizes_over_emitters() {
        // The same chooser instantiates priority-encoder spines: at any
        // target the chosen OR-prefix circuit is far smaller than the
        // adder pick (one gate per node vs G/P pairs).
        let lib = Library::nangate45();
        let cfg = OptimizerConfig::fast();
        let adder = choose_at_target(8, &lib, &cfg, 0.5);
        let or = choose_at_target_with(8, &lib, &cfg, 0.5, netlist::prefix_or::generate);
        assert!(or.area < adder.area / 2.0, "{or:?} vs {adder:?}");
    }

    #[test]
    fn sweep_produces_monotone_tradeoff_ends() {
        let lib = Library::nangate45();
        let choices = commercial_sweep(8, &lib, &OptimizerConfig::fast(), 5);
        assert_eq!(choices.len(), 5);
        let first = &choices[0];
        let last = &choices[choices.len() - 1];
        assert!(first.delay <= last.delay, "targets ascend");
        assert!(first.area >= last.area, "tight end costs more area");
    }
}
