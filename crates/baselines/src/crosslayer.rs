//! Cross-layer ML optimization (in the spirit of ref. \[10\], Ma et al.).
//!
//! Reference \[10\] extends pruned search with a machine-learning model
//! trained to predict *physical* metrics from graph-level features, so that
//! a large candidate pool can be ranked without synthesizing everything.
//! This module reproduces the pipeline: (1) generate candidates with a
//! relaxed pruned search, (2) synthesize a small training subset to label
//! it, (3) fit a ridge regressor from structural features to synthesized
//! area/delay, (4) rank all candidates by predicted metrics and return the
//! predicted-Pareto subset (synthesized for ground truth).

use crate::pruned::{pruned_search, PrunedSearchConfig};
use netlist::Library;
use prefix_graph::{analytical, PrefixGraph};
use serde::{Deserialize, Serialize};
use synth::sweep::{sweep_graph, SweepConfig};

/// Cross-layer baseline parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrossLayerConfig {
    /// Candidate-generation search settings (relaxed bounds).
    pub search: PrunedSearchConfig,
    /// Candidates synthesized to train the predictor.
    pub train_samples: usize,
    /// Candidates returned after predicted-Pareto selection.
    pub select: usize,
    /// Ridge regularization strength.
    pub ridge_lambda: f64,
    /// Synthesis effort for labels and final evaluation.
    pub sweep: SweepConfig,
}

impl Default for CrossLayerConfig {
    fn default() -> Self {
        CrossLayerConfig {
            search: PrunedSearchConfig {
                max_fanout: 12,
                level_slack: 6,
                ..PrunedSearchConfig::default()
            },
            train_samples: 60,
            select: 40,
            ridge_lambda: 1e-3,
            sweep: SweepConfig::fast(),
        }
    }
}

impl CrossLayerConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        CrossLayerConfig {
            search: PrunedSearchConfig::fast(),
            train_samples: 16,
            select: 10,
            ..CrossLayerConfig::default()
        }
    }
}

/// Structural features used by the predictor.
fn features(g: &PrefixGraph) -> Vec<f64> {
    let m = analytical::evaluate(g);
    let n = g.n() as f64;
    let fanouts: Vec<f64> = g.nodes().map(|nd| g.fanout(nd).unwrap() as f64).collect();
    let sum_sq: f64 = fanouts.iter().map(|f| f * f).sum();
    vec![
        1.0,
        g.size() as f64 / n,
        g.depth() as f64,
        g.max_fanout() as f64,
        sum_sq / n,
        m.delay,
    ]
}

/// Solves `(XᵀX + λI) β = Xᵀy` by Gaussian elimination.
fn ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Vec<f64> {
    let k = xs[0].len();
    let mut a = vec![vec![0.0f64; k + 1]; k];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..k {
            for j in 0..k {
                a[i][j] += x[i] * x[j];
            }
            a[i][k] += x[i] * y;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .expect("nonempty");
        a.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-12 {
            continue;
        }
        let pivot_row = a[col].clone();
        for (r, row) in a.iter_mut().enumerate() {
            if r != col {
                let f = row[col] / p;
                for (entry, &pv) in row.iter_mut().zip(&pivot_row).skip(col) {
                    *entry -= f * pv;
                }
            }
        }
    }
    (0..k)
        .map(|i| {
            if a[i][i].abs() < 1e-12 {
                0.0
            } else {
                a[i][k] / a[i][i]
            }
        })
        .collect()
}

fn predict(beta: &[f64], x: &[f64]) -> f64 {
    beta.iter().zip(x).map(|(b, v)| b * v).sum()
}

/// A cross-layer-selected design with predicted and synthesized metrics.
#[derive(Clone, Debug)]
pub struct CrossLayerDesign {
    /// The selected prefix graph.
    pub graph: PrefixGraph,
    /// Predicted (area, delay) from the learned model.
    pub predicted: (f64, f64),
    /// Synthesized (area, delay) samples from the final evaluation sweep.
    pub synthesized: Vec<(f64, f64)>,
}

/// Runs the cross-layer pipeline against `lib`.
pub fn cross_layer(n: u16, lib: &Library, cfg: &CrossLayerConfig) -> Vec<CrossLayerDesign> {
    let pool = pruned_search(n, &cfg.search);
    assert!(!pool.is_empty(), "candidate pool empty");
    // Label an evenly spaced training subset with real synthesis.
    let stride = (pool.len() / cfg.train_samples.max(1)).max(1);
    let train: Vec<&PrefixGraph> = pool
        .iter()
        .step_by(stride)
        .take(cfg.train_samples)
        .collect();
    let xs: Vec<Vec<f64>> = train.iter().map(|g| features(g)).collect();
    let mut y_area = Vec::with_capacity(train.len());
    let mut y_delay = Vec::with_capacity(train.len());
    for g in &train {
        let curve = sweep_graph(g, lib, &cfg.sweep);
        // Label with the knee of the curve (balanced scalarization).
        let (a, d) = curve.scalarized_optimum(0.5, 0.5, 0.001, 10.0);
        y_area.push(a);
        y_delay.push(d);
    }
    let beta_area = ridge(&xs, &y_area, cfg.ridge_lambda);
    let beta_delay = ridge(&xs, &y_delay, cfg.ridge_lambda);

    // Rank the full pool by predicted metrics; keep the predicted-Pareto
    // subset (up to `select`).
    let mut scored: Vec<(usize, f64, f64)> = pool
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let x = features(g);
            (i, predict(&beta_area, &x), predict(&beta_delay, &x))
        })
        .collect();
    scored.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.1.total_cmp(&b.1)));
    let mut selected: Vec<(usize, f64, f64)> = Vec::new();
    let mut best_area = f64::INFINITY;
    for &(i, pa, pd) in &scored {
        if pa < best_area {
            best_area = pa;
            selected.push((i, pa, pd));
            if selected.len() >= cfg.select {
                break;
            }
        }
    }
    selected
        .into_iter()
        .map(|(i, pa, pd)| {
            let graph = pool[i].clone();
            let curve = sweep_graph(&graph, lib, &cfg.sweep);
            CrossLayerDesign {
                synthesized: curve
                    .knots()
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|(d, a)| (a, d))
                    .collect(),
                graph,
                predicted: (pa, pd),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_recovers_linear_relation() {
        // y = 3 + 2·x1 − x2, exactly representable.
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0, i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[1] - x[2]).collect();
        let beta = ridge(&xs, &ys, 1e-9);
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
        assert!((beta[2] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pipeline_selects_pareto_diverse_designs() {
        let lib = Library::nangate45();
        let designs = cross_layer(12, &lib, &CrossLayerConfig::fast());
        assert!(designs.len() >= 3, "too few designs: {}", designs.len());
        for d in &designs {
            d.graph.verify_legal().unwrap();
            assert!(!d.synthesized.is_empty());
        }
        // Predicted delays must span a range (selection is a frontier, not
        // a point).
        let delays: Vec<f64> = designs.iter().map(|d| d.predicted.1).collect();
        let (lo, hi) = delays
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &d| (l.min(d), h.max(d)));
        assert!(hi > lo, "selection collapsed to one predicted point");
    }

    #[test]
    fn predictor_correlates_with_truth() {
        // On training-adjacent data, the model's area ranking should agree
        // with analytical size ordering more often than not.
        let lib = Library::nangate45();
        let designs = cross_layer(12, &lib, &CrossLayerConfig::fast());
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..designs.len() {
            for j in (i + 1)..designs.len() {
                let (pi, pj) = (designs[i].predicted.0, designs[j].predicted.0);
                let (si, sj) = (designs[i].graph.size(), designs[j].graph.size());
                if si == sj {
                    continue;
                }
                total += 1;
                if (pi < pj) == (si < sj) {
                    agree += 1;
                }
            }
        }
        if total > 0 {
            assert!(
                agree * 2 >= total,
                "predictor anti-correlated: {agree}/{total}"
            );
        }
    }
}
