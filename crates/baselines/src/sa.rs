//! Simulated annealing over prefix graphs (ref. \[14\], Moto & Kaneko).
//!
//! Random add/delete moves (with the same legalization as the RL
//! environment) are accepted by the Metropolis criterion on a scalarized
//! analytical cost. As the paper notes, SA is inherently sequential, so
//! synthesis in the loop is infeasible — which is exactly the comparison
//! Fig. 6 makes: SA optimizes the analytical model well but its designs
//! degrade through physical synthesis.

use prefix_graph::{analytical, Action, Node, PrefixGraph};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Simulated-annealing hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SaConfig {
    /// Proposal steps.
    pub iterations: usize,
    /// Initial temperature (in units of scalarized cost).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Restarts (best-of is returned).
    pub restarts: usize,
}

impl Default for SaConfig {
    fn default() -> Self {
        // The normalized analytical cost changes by ~0.01–0.05 per move, so
        // the temperature ladder brackets that scale.
        SaConfig {
            iterations: 6000,
            t_start: 0.08,
            t_end: 5e-4,
            restarts: 2,
        }
    }
}

impl SaConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        SaConfig {
            iterations: 1200,
            restarts: 1,
            ..SaConfig::default()
        }
    }
}

/// Proposes one random legal move (add or delete with legalization).
fn random_move(g: &PrefixGraph, rng: &mut StdRng) -> Option<Action> {
    let n = g.n();
    // Rejection-sample a position; fall back to enumeration when sparse.
    for _ in 0..16 {
        let m = rng.random_range(2..n);
        let l = rng.random_range(1..m);
        let node = Node::new(m, l);
        if g.can_add(node) {
            return Some(Action::Add(node));
        }
        if g.is_deletable(node) {
            return Some(Action::Delete(node));
        }
    }
    let actions = g.legal_actions();
    if actions.is_empty() {
        None
    } else {
        Some(actions[rng.random_range(0..actions.len())])
    }
}

/// Anneals from `start` against an arbitrary cost, returning the best
/// graph found and its cost.
pub fn anneal(
    start: PrefixGraph,
    cost: &dyn Fn(&PrefixGraph) -> f64,
    cfg: &SaConfig,
    rng: &mut StdRng,
) -> (PrefixGraph, f64) {
    let mut best = (start.clone(), cost(&start));
    for _ in 0..cfg.restarts.max(1) {
        let mut cur = start.clone();
        let mut cur_cost = cost(&cur);
        for i in 0..cfg.iterations {
            let frac = i as f64 / cfg.iterations.max(1) as f64;
            // Exponential cooling schedule.
            let temp = cfg.t_start * (cfg.t_end / cfg.t_start).powf(frac);
            let Some(action) = random_move(&cur, rng) else {
                break;
            };
            let cand = cur.with_action(action).expect("move was legal");
            let cand_cost = cost(&cand);
            let accept = cand_cost <= cur_cost
                || rng.random::<f64>() < ((cur_cost - cand_cost) / temp).exp();
            if accept {
                cur = cand;
                cur_cost = cand_cost;
                if cur_cost < best.1 {
                    best = (cur.clone(), cur_cost);
                }
            }
        }
    }
    best
}

/// The scalarized analytical cost of ref. \[14\]: `w·area + (1-w)·delay`,
/// with area and delay normalized by the ripple-carry values so weights
/// trade comparable units.
pub fn analytical_cost(n: u16, w_area: f64) -> impl Fn(&PrefixGraph) -> f64 {
    let base = analytical::evaluate(&PrefixGraph::ripple(n));
    move |g: &PrefixGraph| {
        let m = analytical::evaluate(g);
        w_area * m.area / base.area + (1.0 - w_area) * m.delay / base.delay
    }
}

/// Runs SA at several scalarization weights (as \[14\] does to trace its
/// frontier), returning the distinct best designs.
pub fn sa_frontier(n: u16, weights: &[f64], cfg: &SaConfig, seed: u64) -> Vec<PrefixGraph> {
    let mut out: Vec<PrefixGraph> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64 + 1) * 0x9e37_79b9));
        let cost = analytical_cost(n, w);
        let (g, _) = anneal(PrefixGraph::ripple(n), &cost, cfg, &mut rng);
        if !out.contains(&g) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefix_graph::structures;

    #[test]
    fn improves_on_start_cost() {
        // Under the ripple-normalized cost, ripple-carry is optimal at
        // area-heavy weights (it *is* the minimum-area design), so test at
        // a delay-heavy weight where shortcuts certainly pay.
        let mut rng = StdRng::seed_from_u64(1);
        let cost = analytical_cost(16, 0.15);
        let start = PrefixGraph::ripple(16);
        let (best, best_cost) = anneal(start.clone(), &cost, &SaConfig::fast(), &mut rng);
        assert!(best_cost < cost(&start), "SA failed to improve");
        best.verify_legal().unwrap();
    }

    #[test]
    fn weight_extremes_trade_objectives() {
        let cfg = SaConfig::fast();
        let mut rng_a = StdRng::seed_from_u64(2);
        let mut rng_b = StdRng::seed_from_u64(2);
        let (small, _) = anneal(
            PrefixGraph::ripple(16),
            &analytical_cost(16, 0.98),
            &cfg,
            &mut rng_a,
        );
        let (fast, _) = anneal(
            PrefixGraph::ripple(16),
            &analytical_cost(16, 0.02),
            &cfg,
            &mut rng_b,
        );
        let ms = analytical::evaluate(&small);
        let mf = analytical::evaluate(&fast);
        assert!(
            ms.area <= mf.area,
            "area-weighted SA bigger than delay-weighted"
        );
        assert!(mf.delay <= ms.delay, "delay-weighted SA slower");
    }

    #[test]
    fn sa_beats_regular_structures_at_midweight() {
        // The analytical-cost landscape is what [14] optimizes; SA should
        // at least match the best regular structure on its own objective.
        let cost = analytical_cost(32, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, sa_cost) = anneal(
            PrefixGraph::ripple(32),
            &cost,
            &SaConfig::default(),
            &mut rng,
        );
        let best_regular = structures::all_regular()
            .iter()
            .map(|(_, ctor)| cost(&ctor(32)))
            .fold(f64::INFINITY, f64::min);
        assert!(
            sa_cost <= best_regular * 1.05,
            "SA {sa_cost} vs regular {best_regular}"
        );
    }

    #[test]
    fn frontier_returns_distinct_legal_designs() {
        let designs = sa_frontier(12, &[0.2, 0.5, 0.8], &SaConfig::fast(), 7);
        assert!(!designs.is_empty());
        for g in &designs {
            g.verify_legal().unwrap();
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sa_frontier(10, &[0.5], &SaConfig::fast(), 11);
        let b = sa_frontier(10, &[0.5], &SaConfig::fast(), 11);
        assert_eq!(a, b);
    }
}
