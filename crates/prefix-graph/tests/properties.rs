//! Property-based tests of the prefix-graph invariants.

use prefix_graph::{analytical, features, structures, Action, Node, PrefixGraph};
use proptest::prelude::*;

/// Strategy: a grid width and a sequence of interior positions interpreted
/// as toggle actions (add if legal, else delete if legal, else skip).
fn walk_strategy() -> impl Strategy<Value = (u16, Vec<(u16, u16)>)> {
    (4u16..=20).prop_flat_map(|n| {
        let pos = (2u16..n).prop_flat_map(move |m| (Just(m), 1u16..m));
        (Just(n), proptest::collection::vec(pos, 0..60))
    })
}

/// Applies the toggle walk, returning every intermediate graph.
fn apply_walk(n: u16, walk: &[(u16, u16)]) -> Vec<PrefixGraph> {
    let mut g = PrefixGraph::ripple(n);
    let mut trace = vec![g.clone()];
    for &(m, l) in walk {
        let node = Node::new(m, l);
        let action = if g.can_add(node) {
            Action::Add(node)
        } else if g.is_deletable(node) {
            Action::Delete(node)
        } else {
            continue;
        };
        g.apply(action).expect("legal action must apply");
        trace.push(g.clone());
    }
    trace
}

proptest! {
    #[test]
    fn random_walks_stay_legal((n, walk) in walk_strategy()) {
        for g in apply_walk(n, &walk) {
            prop_assert!(g.verify_legal().is_ok());
        }
    }

    #[test]
    fn minlist_regenerates_graph((n, walk) in walk_strategy()) {
        for g in apply_walk(n, &walk) {
            let back = PrefixGraph::from_min_nodes(n, g.min_nodes());
            prop_assert_eq!(&g, &back);
        }
    }

    #[test]
    fn minlist_nodes_are_not_lower_parents((n, walk) in walk_strategy()) {
        for g in apply_walk(n, &walk) {
            let lps: std::collections::HashSet<_> =
                g.op_nodes().filter_map(|nd| g.lp(nd)).collect();
            for m in g.min_nodes() {
                prop_assert!(!lps.contains(&m), "minlist node {m} is a lower parent");
            }
        }
    }

    #[test]
    fn added_node_is_deletable_and_delete_contracts((n, walk) in walk_strategy()) {
        // Add(x) then Delete(x) restores the original graph unless the add
        // demoted an original minlist node into a lower parent (Algorithm 1
        // removes such nodes from the minlist, so the delete cascades them
        // away). In all cases the result's node set is contained in the
        // original's, and restoration is exact when no demotion happened.
        let g = apply_walk(n, &walk).pop().unwrap();
        for m in 2..n {
            for l in 1..m {
                let node = Node::new(m, l);
                if g.can_add(node) {
                    let mut g2 = g.clone();
                    g2.apply(Action::Add(node)).unwrap();
                    prop_assert!(g2.is_deletable(node), "fresh add must be deletable");
                    let demoted = g
                        .min_nodes()
                        .any(|nd| !g2.is_deletable(nd));
                    g2.apply(Action::Delete(node)).unwrap();
                    if demoted {
                        for nd in g2.nodes() {
                            prop_assert!(g.contains(nd), "delete may only shrink");
                        }
                    } else {
                        prop_assert_eq!(&g2, &g, "add then delete must restore");
                    }
                    return Ok(());
                }
            }
        }
    }

    #[test]
    fn size_bounds((n, walk) in walk_strategy()) {
        let interior = (n as usize - 1) * (n as usize - 2) / 2;
        for g in apply_walk(n, &walk) {
            prop_assert!(g.size() >= (n - 1) as usize);
            prop_assert!(g.size() <= interior + (n as usize - 1));
            prop_assert!(g.depth() < n);
            prop_assert!(g.depth() as u32 >= (n as u32).next_power_of_two().trailing_zeros());
        }
    }

    #[test]
    fn features_in_unit_range((n, walk) in walk_strategy()) {
        let g = apply_walk(n, &walk).pop().unwrap();
        let f = features::extract(&g);
        prop_assert_eq!(f.len(), 4 * n as usize * n as usize);
        prop_assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn analytical_monotone_in_depth((n, walk) in walk_strategy()) {
        // Delay must always be at least depth (each level costs ≥ 1.0)
        // and area equals op-node count exactly.
        for g in apply_walk(n, &walk) {
            let m = analytical::evaluate(&g);
            prop_assert_eq!(m.area, g.size() as f64);
            prop_assert!(m.delay >= g.depth() as f64);
        }
    }

    #[test]
    fn serde_roundtrip_random((n, walk) in walk_strategy()) {
        let g = apply_walk(n, &walk).pop().unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: PrefixGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn masks_partition_legal_actions((n, walk) in walk_strategy()) {
        let g = apply_walk(n, &walk).pop().unwrap();
        let (add, del) = g.action_masks();
        let legal = g.legal_actions();
        let from_masks = add.iter().filter(|&&b| b).count()
            + del.iter().filter(|&&b| b).count();
        prop_assert_eq!(legal.len(), from_masks);
        // Every interior position offers exactly one action kind unless the
        // node is a non-deletable lower parent.
        for a in &legal {
            prop_assert!(a.is_legal(&g));
        }
    }

    #[test]
    fn canonical_key_injective_on_walk((n, walk) in walk_strategy()) {
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<u64>, PrefixGraph> = HashMap::new();
        for g in apply_walk(n, &walk) {
            if let Some(prev) = seen.insert(g.canonical_key(), g.clone()) {
                prop_assert_eq!(prev, g, "key collision on distinct graphs");
            }
        }
    }
}

#[test]
fn regular_structures_compute_correct_prefixes() {
    // Semantic check: interpret ∘ as (generate, propagate) composition and
    // compare against direct carry computation for random inputs.
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for (name, ctor) in structures::all_regular() {
        for n in [8u16, 13, 16, 32] {
            let g = ctor(n);
            for _ in 0..20 {
                let a: u64 = rng.random::<u64>() & ((1u64 << n) - 1).max(u64::MAX >> (64 - n));
                let b: u64 = rng.random::<u64>() & (u64::MAX >> (64 - n));
                let carries = eval_carries(&g, a, b);
                for i in 0..n {
                    let mask = if i == 63 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    };
                    let expect = ((a & mask) as u128 + (b & mask) as u128) >> (i + 1) & 1;
                    assert_eq!(
                        carries[i as usize] as u128, expect,
                        "{name} n={n} carry {i} mismatch"
                    );
                }
            }
        }
    }
}

/// Evaluates the prefix graph as a carry network: each node combines
/// (g, p) pairs with the standard operator (g, p) ∘ (g', p') =
/// (g | p & g', p & p').
fn eval_carries(graph: &PrefixGraph, a: u64, b: u64) -> Vec<u8> {
    let n = graph.n();
    let mut gp = vec![(0u8, 0u8); n as usize * n as usize];
    let idx = |nd: Node| nd.msb() as usize * n as usize + nd.lsb() as usize;
    for m in 0..n {
        for l in (0..=m).rev() {
            let node = Node::new(m, l);
            if !graph.contains(node) {
                continue;
            }
            gp[idx(node)] = if node.is_input() {
                let ai = ((a >> m) & 1) as u8;
                let bi = ((b >> m) & 1) as u8;
                (ai & bi, ai ^ bi)
            } else {
                let up = gp[idx(graph.up(node).unwrap())];
                let lo = gp[idx(graph.lp(node).unwrap())];
                (up.0 | (up.1 & lo.0), up.1 & lo.1)
            };
        }
    }
    (0..n).map(|i| gp[idx(Node::new(i, 0))].0).collect()
}
