//! Visualization of prefix graphs (paper Fig. 7 style).
//!
//! Two renderers are provided: a terminal-friendly ASCII grid where rows are
//! logic levels and columns are bit positions, and a Graphviz DOT export for
//! publication-quality figures.

use crate::graph::PrefixGraph;
use crate::node::Node;
use std::fmt::Write as _;

/// Renders the graph as an ASCII diagram.
///
/// Columns are bit positions (MSB on the left, like the paper's figures) and
/// rows are logic levels. Each operator node is drawn as `●` in the column
/// of its MSB, with its span `[msb:lsb]` legend; inputs are the header row.
///
/// # Example
///
/// ```
/// use prefix_graph::{render, structures};
/// let art = render::ascii(&structures::brent_kung(8));
/// assert!(art.contains("level 1"));
/// ```
pub fn ascii(graph: &PrefixGraph) -> String {
    let n = graph.n();
    let depth = graph.depth();
    let mut out = String::new();
    // Header: bit indices, MSB first.
    out.push_str("bit    ");
    for m in (0..n).rev() {
        let _ = write!(out, "{m:>3}");
    }
    out.push('\n');
    out.push_str("input  ");
    for _ in 0..n {
        out.push_str("  x");
    }
    out.push('\n');
    for lvl in 1..=depth {
        let _ = write!(out, "level{lvl:>2}");
        for m in (0..n).rev() {
            let node = (0..=m)
                .rev()
                .map(|l| Node::new(m, l))
                .find(|&nd| graph.level(nd) == Some(lvl) && !nd.is_input());
            match node {
                Some(_) => out.push_str("  ●"),
                None => out.push_str("  ·"),
            }
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "size={} depth={} max_fanout={}",
        graph.size(),
        depth,
        graph.max_fanout()
    );
    out
}

/// Renders the graph as a Graphviz DOT digraph.
///
/// Nodes are labelled `msb:lsb` and ranked by logic level; edges run from
/// parents to children. Pipe the output through `dot -Tsvg` to reproduce
/// diagrams in the style of the paper's Fig. 7.
pub fn dot(graph: &PrefixGraph) -> String {
    let mut out =
        String::from("digraph prefix {\n  rankdir=TB;\n  node [shape=circle, fontsize=10];\n");
    let mut by_level: Vec<Vec<Node>> = vec![Vec::new(); graph.depth() as usize + 1];
    for node in graph.nodes() {
        by_level[graph.level(node).unwrap() as usize].push(node);
    }
    for (lvl, nodes) in by_level.iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        let _ = write!(out, "  {{ rank=same; ");
        for node in nodes {
            let _ = write!(out, "\"{}:{}\"; ", node.msb(), node.lsb());
        }
        let _ = writeln!(out, "}} // level {lvl}");
    }
    for node in graph.op_nodes() {
        let up = graph.up(node).expect("op node has up");
        let lp = graph.lp(node).expect("op node has lp");
        let _ = writeln!(
            out,
            "  \"{}:{}\" -> \"{}:{}\";",
            up.msb(),
            up.lsb(),
            node.msb(),
            node.lsb()
        );
        let _ = writeln!(
            out,
            "  \"{}:{}\" -> \"{}:{}\";",
            lp.msb(),
            lp.lsb(),
            node.msb(),
            node.lsb()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures;

    #[test]
    fn ascii_contains_all_levels() {
        let g = structures::kogge_stone(8);
        let art = ascii(&g);
        for lvl in 1..=g.depth() {
            assert!(
                art.contains(&format!("level{lvl:>2}")),
                "missing level {lvl}"
            );
        }
        assert!(art.contains("size=17"));
    }

    #[test]
    fn ascii_ripple_has_one_node_per_level() {
        let art = ascii(&crate::PrefixGraph::ripple(4));
        // Each of the 3 levels has exactly one ●.
        for line in art.lines().filter(|l| l.starts_with("level")) {
            assert_eq!(line.matches('●').count(), 1, "line: {line}");
        }
    }

    #[test]
    fn dot_has_two_edges_per_op_node() {
        let g = structures::brent_kung(8);
        let d = dot(&g);
        let edges = d.matches(" -> ").count();
        assert_eq!(edges, 2 * g.size());
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
    }
}
