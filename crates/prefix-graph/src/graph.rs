//! The legal prefix graph state and its legalization procedure.
//!
//! A [`PrefixGraph`] is fully determined by its set of *present* grid
//! positions: the paper's legalization procedure (Algorithm 1) assigns each
//! non-input node `(m, l)` a canonical **upper parent** — the present node in
//! row `m` with the next-highest LSB — and a **lower parent**
//! `(up.lsb - 1, l)`, adding any missing lower parents. The *minlist* (the
//! set of deletable nodes) is exactly the set of interior present nodes that
//! are not the lower parent of any other node, so deleting one is never
//! undone by legalization.

use crate::node::Node;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel for "no upper parent" (input nodes).
const NO_UP: u16 = u16::MAX;

/// Error returned by [`PrefixGraph::verify_legal`] when a structural
/// invariant of Eq. (1) of the paper is violated.
///
/// This should never occur for graphs built through the public API; it exists
/// to validate deserialized or hand-constructed graphs and as a test oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityError {
    /// A required input or output node is missing.
    MissingTerminal(Node),
    /// A non-input node's upper parent is missing or mis-assigned.
    BadUpperParent(Node),
    /// A non-input node's lower parent is missing.
    MissingLowerParent(Node),
    /// A node lies outside the `N×N` grid.
    OutOfGrid(Node),
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::MissingTerminal(n) => write!(f, "missing input/output node {n}"),
            LegalityError::BadUpperParent(n) => write!(f, "bad upper parent for node {n}"),
            LegalityError::MissingLowerParent(n) => write!(f, "missing lower parent for node {n}"),
            LegalityError::OutOfGrid(n) => write!(f, "node {n} outside grid"),
        }
    }
}

impl std::error::Error for LegalityError {}

/// Compact serialized form of a [`PrefixGraph`]: width plus minlist.
#[derive(Serialize, Deserialize)]
struct GraphSpec {
    n: u16,
    min_nodes: Vec<(u16, u16)>,
}

impl From<PrefixGraph> for GraphSpec {
    fn from(g: PrefixGraph) -> Self {
        GraphSpec {
            n: g.n,
            min_nodes: g.min_nodes().map(|nd| (nd.msb(), nd.lsb())).collect(),
        }
    }
}

impl From<GraphSpec> for PrefixGraph {
    fn from(s: GraphSpec) -> Self {
        PrefixGraph::from_min_nodes(s.n, s.min_nodes.iter().map(|&(m, l)| Node::new(m, l)))
    }
}

/// A legal `N`-input parallel prefix graph on the `N×N` grid.
///
/// The graph always contains the input nodes `(i, i)` and output nodes
/// `(i, 0)`, and every non-input node has exactly one upper and one lower
/// parent satisfying the legality constraints of the paper's Eq. (1). All
/// mutation goes through [`PrefixGraph::apply`], which runs the legalization
/// procedure, so a `PrefixGraph` can never be observed in an illegal state.
///
/// Equality, ordering-insensitive hashing and the [cache key]
/// (`PrefixGraph::canonical_key`) are all defined over the canonical set of
/// present positions.
///
/// # Example
///
/// ```
/// use prefix_graph::{PrefixGraph, Action, Node};
///
/// let mut g = PrefixGraph::ripple(6);
/// g.apply(Action::Add(Node::new(4, 2))).unwrap();
/// assert!(g.contains(Node::new(4, 2)));
/// // The lower parent (3, 2) was added by legalization:
/// assert!(g.contains(Node::new(3, 2)));
/// ```
#[derive(Clone, Serialize, Deserialize)]
#[serde(into = "GraphSpec", from = "GraphSpec")]
pub struct PrefixGraph {
    n: u16,
    /// Present grid positions (nodelist), row-major `msb * n + lsb`.
    present: Vec<bool>,
    /// Deletable nodes (minlist): interior present nodes that are not the
    /// lower parent of any present node.
    min: Vec<bool>,
    /// LSB of the upper parent for each present non-input node, else `NO_UP`.
    up_lsb: Vec<u16>,
    /// Topological level of each present node (inputs are level 0).
    level: Vec<u16>,
    /// Number of children of each present node.
    fanout: Vec<u16>,
}

impl PrefixGraph {
    /// Creates the ripple-carry graph: the unique legal graph with the
    /// minimum number of operator nodes (`N-1`) and maximum depth (`N-1`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 512` (grid sizes beyond 512 are
    /// unsupported).
    pub fn ripple(n: u16) -> Self {
        Self::from_min_nodes(n, std::iter::empty())
    }

    /// Builds the graph whose minlist is (the pruned closure of) `min_nodes`.
    ///
    /// Interior nodes in `min_nodes` are inserted and the graph legalized;
    /// non-interior nodes are ignored. This is the inverse of
    /// [`PrefixGraph::min_nodes`].
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 512`, or if any node's MSB is `>= n`.
    pub fn from_min_nodes(n: u16, min_nodes: impl IntoIterator<Item = Node>) -> Self {
        assert!((2..=512).contains(&n), "unsupported grid width {n}");
        let nn = n as usize;
        let mut requested = vec![false; nn * nn];
        for node in min_nodes {
            assert!(node.msb() < n, "node {node} outside {n}-input grid");
            if node.is_interior() {
                requested[node.msb() as usize * nn + node.lsb() as usize] = true;
            }
        }
        Self::rebuild(n, requested)
    }

    /// Builds the graph containing (at least) the given node positions.
    ///
    /// All interior positions are treated as intentional; the closure adds
    /// missing lower parents and the minlist is derived canonically. Used by
    /// the classical constructions in [`crate::structures`].
    pub fn from_nodes(n: u16, nodes: impl IntoIterator<Item = Node>) -> Self {
        Self::from_min_nodes(n, nodes)
    }

    /// Runs Algorithm 1's `Legalize` over the requested interior positions
    /// and derives all per-node attributes.
    fn rebuild(n: u16, requested: Vec<bool>) -> Self {
        let nn = n as usize;
        let mut present = requested;
        // Input and output nodes always exist.
        for m in 0..nn {
            present[m * nn + m] = true;
            present[m * nn] = true;
        }
        let mut up_lsb = vec![NO_UP; nn * nn];
        // Top-down closure: scan rows from high MSB to low. Within a row the
        // upper parent of (m, l) is the present node with the next-highest
        // LSB; its lower parent (up.lsb - 1, l) is added if missing. Lower
        // parents always land in strictly lower rows, so a single pass
        // suffices.
        for m in (1..nn).rev() {
            let mut last = m as u16;
            for l in (0..m).rev() {
                if present[m * nn + l] {
                    up_lsb[m * nn + l] = last;
                    let lp_msb = (last - 1) as usize;
                    present[lp_msb * nn + l] = true;
                    last = l as u16;
                }
            }
        }
        // Derive the minlist: interior present nodes that are not the lower
        // parent of any node. (A present interior node that is nobody's
        // lower parent must have been requested, so the minlist regenerates
        // exactly this graph.)
        let mut is_lp = vec![false; nn * nn];
        for m in 1..nn {
            for l in 0..m {
                let i = m * nn + l;
                if present[i] {
                    let k = up_lsb[i] as usize;
                    let lp = (k - 1) * nn + l;
                    if k - 1 > l {
                        is_lp[lp] = true;
                    }
                }
            }
        }
        let mut min = vec![false; nn * nn];
        for m in 1..nn {
            for l in 1..m {
                let i = m * nn + l;
                min[i] = present[i] && !is_lp[i];
            }
        }
        // Levels: inputs are 0; level(v) = 1 + max(level(up), level(lp)).
        // Scanning rows ascending and LSBs descending makes both parents
        // available when needed.
        let mut level = vec![0u16; nn * nn];
        let mut fanout = vec![0u16; nn * nn];
        for m in 0..nn {
            for l in (0..m).rev() {
                let i = m * nn + l;
                if present[i] {
                    let k = up_lsb[i] as usize;
                    let up = m * nn + k;
                    let lp = (k - 1) * nn + l;
                    level[i] = 1 + level[up].max(level[lp]);
                    fanout[up] += 1;
                    fanout[lp] += 1;
                }
            }
        }
        PrefixGraph {
            n,
            present,
            min,
            up_lsb,
            level,
            fanout,
        }
    }

    /// The number of inputs `N` (grid width).
    #[inline]
    pub fn n(&self) -> u16 {
        self.n
    }

    #[inline]
    fn idx(&self, node: Node) -> usize {
        node.msb() as usize * self.n as usize + node.lsb() as usize
    }

    /// Whether `node` is within this graph's grid.
    #[inline]
    pub fn in_grid(&self, node: Node) -> bool {
        node.msb() < self.n
    }

    /// Whether `node` is present (in the nodelist).
    #[inline]
    pub fn contains(&self, node: Node) -> bool {
        self.in_grid(node) && self.present[self.idx(node)]
    }

    /// Whether `node` is in the minlist, i.e. may be deleted.
    #[inline]
    pub fn is_deletable(&self, node: Node) -> bool {
        self.in_grid(node) && self.min[self.idx(node)]
    }

    /// Whether a node may be added at this position (interior and absent).
    #[inline]
    pub fn can_add(&self, node: Node) -> bool {
        self.in_grid(node) && node.is_interior() && !self.present[self.idx(node)]
    }

    /// The upper parent of a present non-input node.
    ///
    /// Returns `None` for absent or input nodes.
    pub fn up(&self, node: Node) -> Option<Node> {
        if !self.contains(node) || node.is_input() {
            return None;
        }
        Some(Node::new(node.msb(), self.up_lsb[self.idx(node)]))
    }

    /// The lower parent of a present non-input node.
    ///
    /// Returns `None` for absent or input nodes.
    pub fn lp(&self, node: Node) -> Option<Node> {
        if !self.contains(node) || node.is_input() {
            return None;
        }
        Some(Node::new(self.up_lsb[self.idx(node)] - 1, node.lsb()))
    }

    /// The topological level of a present node (inputs are level 0).
    ///
    /// Returns `None` for absent nodes.
    pub fn level(&self, node: Node) -> Option<u16> {
        self.contains(node).then(|| self.level[self.idx(node)])
    }

    /// The number of children of a present node.
    ///
    /// Returns `None` for absent nodes.
    pub fn fanout(&self, node: Node) -> Option<u16> {
        self.contains(node).then(|| self.fanout[self.idx(node)])
    }

    /// The logic depth: maximum level over all nodes.
    pub fn depth(&self) -> u16 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// The maximum fanout over all nodes.
    pub fn max_fanout(&self) -> u16 {
        self.fanout.iter().copied().max().unwrap_or(0)
    }

    /// The number of operator nodes (present nodes that are not inputs).
    ///
    /// Ripple-carry has `N-1`; Sklansky has `(N/2)·log₂N` for powers of two.
    pub fn size(&self) -> usize {
        self.present.iter().filter(|&&p| p).count() - self.n as usize
    }

    /// The number of present nodes including inputs.
    pub fn node_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }

    /// Iterates over all present nodes in `(msb, lsb)` row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        let n = self.n as usize;
        self.present
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .map(move |(i, _)| Node::new((i / n) as u16, (i % n) as u16))
    }

    /// Iterates over present operator (non-input) nodes.
    pub fn op_nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.nodes().filter(|nd| !nd.is_input())
    }

    /// Iterates over the minlist (deletable nodes).
    pub fn min_nodes(&self) -> impl Iterator<Item = Node> + '_ {
        let n = self.n as usize;
        self.min
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .map(move |(i, _)| Node::new((i / n) as u16, (i % n) as u16))
    }

    /// Raw present-grid access for feature extraction, row-major.
    pub(crate) fn present_grid(&self) -> &[bool] {
        &self.present
    }

    /// Raw minlist-grid access for feature extraction, row-major.
    pub(crate) fn min_grid(&self) -> &[bool] {
        &self.min
    }

    /// Raw level-grid access for feature extraction, row-major.
    pub(crate) fn level_grid(&self) -> &[u16] {
        &self.level
    }

    /// Raw fanout-grid access for feature extraction, row-major.
    pub(crate) fn fanout_grid(&self) -> &[u16] {
        &self.fanout
    }

    /// Rebuilds this graph with `node` requested in addition to the current
    /// minlist. Used by [`crate::action`].
    pub(crate) fn rebuild_with(&self, node: Node, add: bool) -> PrefixGraph {
        let nn = self.n as usize;
        let mut requested = self.min.clone();
        requested[node.msb() as usize * nn + node.lsb() as usize] = add;
        Self::rebuild(self.n, requested)
    }

    /// A compact canonical key over present interior positions, suitable for
    /// hashing and synthesis-result caching. Two graphs have equal keys iff
    /// they are equal.
    pub fn canonical_key(&self) -> Vec<u64> {
        let mut words = vec![0u64; self.present.len().div_ceil(64) + 1];
        words[0] = self.n as u64;
        for (i, &p) in self.present.iter().enumerate() {
            if p {
                words[1 + i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    /// Verifies the full legality constraints of the paper's Eq. (1).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint. Graphs built through the
    /// public API never fail this check; it is an oracle for tests and
    /// deserialization.
    pub fn verify_legal(&self) -> Result<(), LegalityError> {
        let n = self.n;
        for i in 0..n {
            if !self.contains(Node::new(i, i)) {
                return Err(LegalityError::MissingTerminal(Node::new(i, i)));
            }
            if !self.contains(Node::new(i, 0)) {
                return Err(LegalityError::MissingTerminal(Node::new(i, 0)));
            }
        }
        for node in self.op_nodes().collect::<Vec<_>>() {
            let up = self.up(node).ok_or(LegalityError::BadUpperParent(node))?;
            let lp = self
                .lp(node)
                .ok_or(LegalityError::MissingLowerParent(node))?;
            // Eq. (1): LSB(lp)=LSB(node); MSB(lp)=LSB(up)-1; MSB(up)=MSB(node);
            // parents are valid spans; both parents exist.
            if up.msb() != node.msb()
                || up.lsb() > up.msb()
                || up.lsb() <= node.lsb()
                || !self.contains(up)
            {
                return Err(LegalityError::BadUpperParent(node));
            }
            if lp.lsb() != node.lsb() || lp.msb() != up.lsb() - 1 || !self.contains(lp) {
                return Err(LegalityError::MissingLowerParent(node));
            }
            // Canonical upper parent: no present node strictly between.
            for k in (node.lsb() + 1)..up.lsb() {
                if self.contains(Node::new(node.msb(), k)) {
                    return Err(LegalityError::BadUpperParent(node));
                }
            }
        }
        Ok(())
    }
}

impl PartialEq for PrefixGraph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.present == other.present
    }
}

impl Eq for PrefixGraph {}

impl std::hash::Hash for PrefixGraph {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canonical_key().hash(state);
    }
}

impl fmt::Debug for PrefixGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrefixGraph")
            .field("n", &self.n)
            .field("size", &self.size())
            .field("depth", &self.depth())
            .field("min_nodes", &self.min_nodes().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;

    #[test]
    fn ripple_is_minimal() {
        for n in [2u16, 3, 4, 8, 16, 33] {
            let g = PrefixGraph::ripple(n);
            g.verify_legal().unwrap();
            assert_eq!(g.size(), (n - 1) as usize, "ripple op count for n={n}");
            assert_eq!(g.depth(), n - 1, "ripple depth for n={n}");
            assert_eq!(g.min_nodes().count(), 0);
        }
    }

    #[test]
    fn ripple_parents_chain() {
        let g = PrefixGraph::ripple(5);
        for i in 1..5u16 {
            let out = Node::new(i, 0);
            assert_eq!(g.up(out), Some(Node::new(i, i)));
            assert_eq!(g.lp(out), Some(Node::new(i - 1, 0)));
        }
    }

    #[test]
    fn add_creates_lower_parents() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        g.verify_legal().unwrap();
        assert!(g.contains(Node::new(6, 3)));
        // Closure adds (5,3) and (4,3) as lower parents.
        assert!(g.contains(Node::new(5, 3)));
        assert!(g.contains(Node::new(4, 3)));
        // Only the explicitly added node is deletable.
        assert!(g.is_deletable(Node::new(6, 3)));
        assert!(!g.is_deletable(Node::new(5, 3)));
        assert!(!g.is_deletable(Node::new(4, 3)));
    }

    #[test]
    fn delete_cascades_unneeded_parents() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        g.apply(Action::Delete(Node::new(6, 3))).unwrap();
        assert_eq!(g, PrefixGraph::ripple(8), "delete cascades back to ripple");
    }

    #[test]
    fn added_node_is_always_deletable() {
        let mut g = PrefixGraph::ripple(10);
        for node in [Node::new(7, 2), Node::new(9, 5), Node::new(5, 3)] {
            g.apply(Action::Add(node)).unwrap();
            assert!(g.is_deletable(node), "{node} should be deletable");
        }
    }

    #[test]
    fn up_assignment_is_next_highest_lsb() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(7, 2))).unwrap();
        g.apply(Action::Add(Node::new(7, 4))).unwrap();
        // Row 7 now has LSBs {0, 2, 4, 7}: up(7,2) must be (7,4), not (7,7).
        assert_eq!(g.up(Node::new(7, 2)), Some(Node::new(7, 4)));
        assert_eq!(g.lp(Node::new(7, 2)), Some(Node::new(3, 2)));
        assert_eq!(g.up(Node::new(7, 0)), Some(Node::new(7, 2)));
        g.verify_legal().unwrap();
    }

    #[test]
    fn adding_existing_interior_changes_upper_parents() {
        // Adding (5,3) between (5,2) and (5,4) re-parents (5,2) and drops
        // its old lower parent if no longer demanded.
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(5, 2))).unwrap();
        assert_eq!(g.lp(Node::new(5, 2)), Some(Node::new(4, 2)));
        assert!(g.contains(Node::new(4, 2)));
        g.apply(Action::Add(Node::new(5, 3))).unwrap();
        assert_eq!(g.up(Node::new(5, 2)), Some(Node::new(5, 3)));
        assert_eq!(g.lp(Node::new(5, 2)), Some(Node::new(2, 2)));
        // (4,2) was only demanded as the old lower parent; it is gone now.
        assert!(!g.contains(Node::new(4, 2)));
        g.verify_legal().unwrap();
    }

    #[test]
    fn levels_and_fanouts() {
        let g = PrefixGraph::ripple(4);
        assert_eq!(g.level(Node::new(0, 0)), Some(0));
        assert_eq!(g.level(Node::new(1, 0)), Some(1));
        assert_eq!(g.level(Node::new(3, 0)), Some(3));
        // (1,0) feeds (2,0) only.
        assert_eq!(g.fanout(Node::new(1, 0)), Some(1));
        // Input (2,2) feeds (2,0) only.
        assert_eq!(g.fanout(Node::new(2, 2)), Some(1));
        // Final output feeds nothing inside the graph.
        assert_eq!(g.fanout(Node::new(3, 0)), Some(0));
    }

    #[test]
    fn canonical_key_distinguishes_graphs() {
        let a = PrefixGraph::ripple(8);
        let mut b = a.clone();
        b.apply(Action::Add(Node::new(4, 2))).unwrap();
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), PrefixGraph::ripple(8).canonical_key());
    }

    #[test]
    fn minlist_is_derived_canonically() {
        // Two construction orders reaching the same node set give equal
        // graphs and equal minlists.
        let mut a = PrefixGraph::ripple(8);
        a.apply(Action::Add(Node::new(6, 3))).unwrap();
        a.apply(Action::Add(Node::new(7, 3))).unwrap();
        let b = PrefixGraph::from_min_nodes(8, [Node::new(7, 3), Node::new(6, 3)]);
        assert_eq!(a, b);
        let am: Vec<_> = a.min_nodes().collect();
        let bm: Vec<_> = b.min_nodes().collect();
        assert_eq!(am, bm);
    }

    #[test]
    fn serde_roundtrip() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        g.apply(Action::Add(Node::new(5, 2))).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: PrefixGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
        back.verify_legal().unwrap();
    }

    #[test]
    #[should_panic(expected = "unsupported grid width")]
    fn too_small_grid_panics() {
        let _ = PrefixGraph::ripple(1);
    }
}
