//! Add/delete actions of the PrefixRL MDP.
//!
//! The action space over an `N`-input graph consists of the
//! `(N-1)(N-2)/2` interior grid positions, each with an *add* and a *delete*
//! variant (paper Section IV-A). The environment forbids redundant actions:
//! adding a node that already exists, or deleting a node outside the minlist
//! (which legalization would immediately re-add).

use crate::graph::PrefixGraph;
use crate::node::Node;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the two action variants a grid position carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// Add a node at the position.
    Add,
    /// Delete the node at the position.
    Delete,
}

/// An action of the PrefixRL MDP: add or delete the node at a grid position.
///
/// # Example
///
/// ```
/// use prefix_graph::{Action, ActionKind, Node, PrefixGraph};
///
/// let mut g = PrefixGraph::ripple(8);
/// let a = Action::Add(Node::new(5, 2));
/// assert_eq!(a.kind(), ActionKind::Add);
/// assert!(a.is_legal(&g));
/// g.apply(a).unwrap();
/// assert!(!a.is_legal(&g), "re-adding an existing node is redundant");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Add a node at the given interior position.
    Add(Node),
    /// Delete the (minlist) node at the given position.
    Delete(Node),
}

impl Action {
    /// The grid position this action targets.
    #[inline]
    pub fn node(self) -> Node {
        match self {
            Action::Add(n) | Action::Delete(n) => n,
        }
    }

    /// The action variant.
    #[inline]
    pub fn kind(self) -> ActionKind {
        match self {
            Action::Add(_) => ActionKind::Add,
            Action::Delete(_) => ActionKind::Delete,
        }
    }

    /// Whether this action is legal in `graph`.
    pub fn is_legal(self, graph: &PrefixGraph) -> bool {
        match self {
            Action::Add(n) => graph.can_add(n),
            Action::Delete(n) => graph.is_deletable(n),
        }
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Add(n) => write!(f, "Add{n:?}"),
            Action::Delete(n) => write!(f, "Delete{n:?}"),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Add(n) => write!(f, "add {n}"),
            Action::Delete(n) => write!(f, "delete {n}"),
        }
    }
}

/// Error returned when applying an illegal [`Action`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionError {
    /// Adding a node that already exists (undone by legalization).
    RedundantAdd(Node),
    /// Deleting a node not in the minlist (re-added by legalization), or
    /// absent entirely.
    NotDeletable(Node),
    /// The position is an input/output or outside the grid.
    InvalidPosition(Node),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::RedundantAdd(n) => write!(f, "node {n} already exists"),
            ActionError::NotDeletable(n) => write!(f, "node {n} is not deletable"),
            ActionError::InvalidPosition(n) => write!(f, "position {n} is not interior"),
        }
    }
}

impl std::error::Error for ActionError {}

impl PrefixGraph {
    /// Applies `action`, legalizing the result (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns an [`ActionError`] (leaving the graph unchanged) if the action
    /// is redundant or targets a non-interior/out-of-grid position.
    pub fn apply(&mut self, action: Action) -> Result<(), ActionError> {
        let node = action.node();
        if !self.in_grid(node) || !node.is_interior() {
            return Err(ActionError::InvalidPosition(node));
        }
        match action {
            Action::Add(n) => {
                if !self.can_add(n) {
                    return Err(ActionError::RedundantAdd(n));
                }
                *self = self.rebuild_with(n, true);
            }
            Action::Delete(n) => {
                if !self.is_deletable(n) {
                    return Err(ActionError::NotDeletable(n));
                }
                *self = self.rebuild_with(n, false);
            }
        }
        Ok(())
    }

    /// Returns a copy of this graph with `action` applied.
    ///
    /// # Errors
    ///
    /// Same as [`PrefixGraph::apply`].
    pub fn with_action(&self, action: Action) -> Result<PrefixGraph, ActionError> {
        let mut g = self.clone();
        g.apply(action)?;
        Ok(g)
    }

    /// Enumerates all legal actions in this state.
    pub fn legal_actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for m in 2..self.n() {
            for l in 1..m {
                let node = Node::new(m, l);
                if self.can_add(node) {
                    actions.push(Action::Add(node));
                } else if self.is_deletable(node) {
                    actions.push(Action::Delete(node));
                }
            }
        }
        actions
    }

    /// Legality masks over the full `N×N` grid in row-major order:
    /// `(add_mask, delete_mask)`. Used to mask Q-values of illegal actions
    /// to `-∞` (paper Section IV-C).
    pub fn action_masks(&self) -> (Vec<bool>, Vec<bool>) {
        let n = self.n() as usize;
        let mut add = vec![false; n * n];
        let mut del = vec![false; n * n];
        for m in 2..self.n() {
            for l in 1..m {
                let node = Node::new(m, l);
                let i = m as usize * n + l as usize;
                add[i] = self.can_add(node);
                del[i] = self.is_deletable(node);
            }
        }
        (add, del)
    }

    /// The number of interior grid positions, `(N-1)(N-2)/2` — the action
    /// space size `|A|` reported in the paper's Table I (105 for 16b, 465
    /// for 32b, 1953 for 64b).
    pub fn interior_positions(&self) -> usize {
        let n = self.n() as usize;
        (n - 1) * (n - 2) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_space_size_matches_table1() {
        assert_eq!(PrefixGraph::ripple(16).interior_positions(), 105);
        assert_eq!(PrefixGraph::ripple(32).interior_positions(), 465);
        assert_eq!(PrefixGraph::ripple(64).interior_positions(), 1953);
    }

    #[test]
    fn ripple_legal_actions_are_all_adds() {
        let g = PrefixGraph::ripple(8);
        let actions = g.legal_actions();
        assert_eq!(actions.len(), g.interior_positions());
        assert!(actions.iter().all(|a| a.kind() == ActionKind::Add));
    }

    #[test]
    fn apply_rejects_redundant_add() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(5, 2))).unwrap();
        assert_eq!(
            g.apply(Action::Add(Node::new(5, 2))),
            Err(ActionError::RedundantAdd(Node::new(5, 2)))
        );
        // Adding a legalization-created lower parent is also redundant.
        g.apply(Action::Add(Node::new(7, 2))).unwrap();
        assert!(g.contains(Node::new(6, 2)));
        assert_eq!(
            g.apply(Action::Add(Node::new(6, 2))),
            Err(ActionError::RedundantAdd(Node::new(6, 2)))
        );
    }

    #[test]
    fn apply_rejects_non_minlist_delete() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        // (5,3) exists only as a lower parent: deleting it would be undone.
        assert!(g.contains(Node::new(5, 3)));
        assert_eq!(
            g.apply(Action::Delete(Node::new(5, 3))),
            Err(ActionError::NotDeletable(Node::new(5, 3)))
        );
        // Deleting an absent node is also rejected.
        assert_eq!(
            g.apply(Action::Delete(Node::new(7, 4))),
            Err(ActionError::NotDeletable(Node::new(7, 4)))
        );
    }

    #[test]
    fn apply_rejects_terminal_positions() {
        let mut g = PrefixGraph::ripple(8);
        for node in [Node::new(3, 3), Node::new(3, 0), Node::new(0, 0)] {
            assert_eq!(
                g.apply(Action::Add(node)),
                Err(ActionError::InvalidPosition(node))
            );
        }
        assert_eq!(
            g.apply(Action::Add(Node::new(9, 1))),
            Err(ActionError::InvalidPosition(Node::new(9, 1)))
        );
    }

    #[test]
    fn failed_apply_leaves_graph_unchanged() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        let before = g.clone();
        let _ = g.apply(Action::Delete(Node::new(5, 3)));
        let _ = g.apply(Action::Add(Node::new(6, 3)));
        assert_eq!(g, before);
    }

    #[test]
    fn masks_agree_with_legal_actions() {
        let mut g = PrefixGraph::ripple(10);
        for node in [Node::new(7, 2), Node::new(9, 5), Node::new(4, 1)] {
            g.apply(Action::Add(node)).unwrap();
        }
        let (add, del) = g.action_masks();
        let n = g.n() as usize;
        for a in g.legal_actions() {
            let i = a.node().msb() as usize * n + a.node().lsb() as usize;
            match a.kind() {
                ActionKind::Add => assert!(add[i] && !del[i]),
                ActionKind::Delete => assert!(del[i] && !add[i]),
            }
        }
        // No position is both addable and deletable.
        assert!(add.iter().zip(&del).all(|(&a, &d)| !(a && d)));
    }

    #[test]
    fn with_action_does_not_mutate_original() {
        let g = PrefixGraph::ripple(8);
        let g2 = g.with_action(Action::Add(Node::new(5, 2))).unwrap();
        assert_ne!(g, g2);
        assert_eq!(g, PrefixGraph::ripple(8));
    }
}
