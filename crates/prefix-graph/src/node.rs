//! Grid node coordinates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node `z_{MSB:LSB}` of a prefix graph, identified by its grid position.
///
/// Following the paper's notation (from Roy et al. \[15\]), a node computes the
/// combination `x_MSB ∘ x_{MSB-1} ∘ … ∘ x_LSB`. Input nodes have
/// `MSB == LSB`; output nodes have `LSB == 0`.
///
/// # Example
///
/// ```
/// use prefix_graph::Node;
/// let node = Node::new(3, 1);
/// assert_eq!(node.msb(), 3);
/// assert_eq!(node.lsb(), 1);
/// assert!(!node.is_input());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Node {
    msb: u16,
    lsb: u16,
}

impl Node {
    /// Creates a node at grid position `(msb, lsb)`.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb` — such positions lie above the grid diagonal and
    /// cannot contain a node.
    #[inline]
    pub fn new(msb: u16, lsb: u16) -> Self {
        assert!(msb >= lsb, "node ({msb},{lsb}) lies above the diagonal");
        Self { msb, lsb }
    }

    /// The most significant bit of the node's span.
    #[inline]
    pub fn msb(self) -> u16 {
        self.msb
    }

    /// The least significant bit of the node's span.
    #[inline]
    pub fn lsb(self) -> u16 {
        self.lsb
    }

    /// Whether this is an input node (`MSB == LSB`).
    #[inline]
    pub fn is_input(self) -> bool {
        self.msb == self.lsb
    }

    /// Whether this is an output node (`LSB == 0`).
    ///
    /// Note `(0,0)` is both an input and an output.
    #[inline]
    pub fn is_output(self) -> bool {
        self.lsb == 0
    }

    /// Whether this position is *interior*: neither input nor output, i.e.
    /// `LSB ∈ [1, N-2]` and `MSB ∈ [LSB+1, N-1]`. Only interior positions are
    /// valid targets for the PrefixRL add/delete actions.
    #[inline]
    pub fn is_interior(self) -> bool {
        self.lsb >= 1 && self.msb > self.lsb
    }

    /// The number of input bits this node's span covers.
    #[inline]
    pub fn span(self) -> u16 {
        self.msb - self.lsb + 1
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.msb, self.lsb)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z[{}:{}]", self.msb, self.lsb)
    }
}

impl From<(u16, u16)> for Node {
    fn from((msb, lsb): (u16, u16)) -> Self {
        Node::new(msb, lsb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessors() {
        let n = Node::new(5, 2);
        assert_eq!(n.msb(), 5);
        assert_eq!(n.lsb(), 2);
        assert_eq!(n.span(), 4);
        assert!(!n.is_input());
        assert!(!n.is_output());
        assert!(n.is_interior());
    }

    #[test]
    fn input_output_classification() {
        assert!(Node::new(3, 3).is_input());
        assert!(Node::new(3, 0).is_output());
        assert!(Node::new(0, 0).is_input());
        assert!(Node::new(0, 0).is_output());
        assert!(!Node::new(3, 3).is_interior());
        assert!(!Node::new(3, 0).is_interior());
    }

    #[test]
    #[should_panic(expected = "above the diagonal")]
    fn above_diagonal_panics() {
        let _ = Node::new(1, 2);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Node::new(2, 1) < Node::new(3, 0));
        assert!(Node::new(3, 0) < Node::new(3, 1));
    }

    #[test]
    fn display_and_debug() {
        let n = Node::new(4, 1);
        assert_eq!(format!("{n}"), "z[4:1]");
        assert_eq!(format!("{n:?}"), "(4,1)");
    }
}
