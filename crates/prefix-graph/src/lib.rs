//! Grid-based parallel prefix graph representation — the PrefixRL state space.
//!
//! An `N`-input [prefix graph](PrefixGraph) computes all prefix combinations
//! `z_{i:0} = x_i ∘ x_{i-1} ∘ … ∘ x_0` of an associative operator `∘`. Nodes
//! live on an `N×N` grid indexed by `(MSB, LSB)`: inputs on the diagonal,
//! outputs in column zero, and the `(N-1)(N-2)/2` interior positions define
//! the `O(2^{N²})` design space explored by PrefixRL (Roy et al., DAC 2021).
//!
//! The crate provides:
//!
//! - [`PrefixGraph`]: a legal prefix graph with canonical parent assignment,
//!   maintained through the paper's legalization procedure (Algorithm 1);
//! - [`Action`]: the add/delete node actions of the PrefixRL MDP, with
//!   legality masks;
//! - [`structures`]: classical constructions (ripple-carry, Sklansky,
//!   Kogge-Stone, Brent-Kung, Han-Carlson, Ladner-Fischer);
//! - [`analytical`]: the analytical area/delay model of Moto & Kaneko used
//!   for the paper's Fig. 6 comparison;
//! - [`features`]: the `N×N×4` node-feature tensor fed to the Q-network;
//! - [`render`]: ASCII and Graphviz visualization (paper Fig. 7).
//!
//! # Example
//!
//! ```
//! use prefix_graph::{PrefixGraph, Action, Node, structures};
//!
//! // Start from the ripple-carry graph (minimum size) …
//! let mut g = PrefixGraph::ripple(8);
//! assert_eq!(g.size(), 7); // N-1 operator nodes
//!
//! // … and add a node; legalization keeps the graph legal.
//! g.apply(Action::Add(Node::new(5, 2))).unwrap();
//! g.verify_legal().unwrap();
//!
//! // Classical structures are available as starting points and baselines.
//! let sk = structures::sklansky(8);
//! assert_eq!(sk.depth(), 3);
//! ```

#![warn(missing_docs)]

pub mod action;
pub mod analytical;
pub mod features;
pub mod graph;
pub mod node;
pub mod render;
pub mod structures;

pub use action::{Action, ActionError, ActionKind};
pub use analytical::AnalyticalMetrics;
pub use graph::{LegalityError, PrefixGraph};
pub use node::Node;
