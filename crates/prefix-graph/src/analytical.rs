//! The analytical area/delay model of Moto & Kaneko (ISCAS 2018, ref. \[14\]).
//!
//! The paper's Section V-D trains "Analytical-PrefixRL" agents with this
//! model instead of physical synthesis: every node costs area `1.0`, and a
//! node's delay is `1.0 + 0.5 · fanout`; the circuit delay is the longest
//! accumulated path from any input to any node. This is cheap to evaluate
//! (microseconds) but — as the paper's Fig. 6b shows — optimizing it does
//! not transfer to synthesized quality, which is the motivation for
//! synthesis in the loop.

use crate::graph::PrefixGraph;
use crate::node::Node;
use serde::{Deserialize, Serialize};

/// Analytical area/delay of a prefix graph under the model of \[14\].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalMetrics {
    /// Total area: one unit per operator node.
    pub area: f64,
    /// Longest path delay with node delay `1.0 + 0.5 · fanout`.
    pub delay: f64,
}

/// Per-node delay under the analytical model.
#[inline]
fn node_delay(fanout: u16) -> f64 {
    1.0 + 0.5 * fanout as f64
}

/// Evaluates the analytical model on `graph`.
///
/// Input nodes contribute their own fanout-dependent delay (they drive
/// children like any other node); area counts operator nodes only, matching
/// the `60–100` area range the paper reports for 32-bit designs in Fig. 6a.
///
/// # Example
///
/// ```
/// use prefix_graph::{analytical, structures};
///
/// let sk = structures::sklansky(32);
/// let m = analytical::evaluate(&sk);
/// assert_eq!(m.area, 80.0);
/// assert!(m.delay > 0.0);
/// ```
pub fn evaluate(graph: &PrefixGraph) -> AnalyticalMetrics {
    let n = graph.n();
    let mut arrival = vec![0.0f64; n as usize * n as usize];
    let idx = |node: Node| node.msb() as usize * n as usize + node.lsb() as usize;
    let mut delay = 0.0f64;
    // Rows ascending, LSBs descending: both parents are computed before any
    // consumer (upper parent is in-row with larger LSB, lower parent is in a
    // lower row).
    for m in 0..n {
        for l in (0..=m).rev() {
            let node = Node::new(m, l);
            if !graph.contains(node) {
                continue;
            }
            let own = node_delay(graph.fanout(node).expect("present node"));
            let at = if node.is_input() {
                own
            } else {
                let up = graph.up(node).expect("op node has up parent");
                let lp = graph.lp(node).expect("op node has lp parent");
                own + arrival[idx(up)].max(arrival[idx(lp)])
            };
            arrival[idx(node)] = at;
            delay = delay.max(at);
        }
    }
    AnalyticalMetrics {
        area: graph.size() as f64,
        delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{structures, Action};

    #[test]
    fn ripple_metrics() {
        let g = PrefixGraph::ripple(8);
        let m = evaluate(&g);
        assert_eq!(m.area, 7.0);
        // Chain of 8 nodes; interior ones have fanout 1 (delay 1.5),
        // input (0,0) fanout 1, inputs (i,i) fanout 1, last node fanout 0.
        // Path: (0,0)=1.5, (1,0)=3.0, ..., (6,0)=10.5, (7,0)=11.5.
        assert!((m.delay - 11.5).abs() < 1e-9, "got {}", m.delay);
    }

    #[test]
    fn sklansky_area_is_size() {
        for n in [8u16, 16, 32] {
            let g = structures::sklansky(n);
            assert_eq!(evaluate(&g).area, g.size() as f64);
        }
    }

    #[test]
    fn kogge_stone_beats_ripple_delay() {
        let ks = evaluate(&structures::kogge_stone(32));
        let rp = evaluate(&PrefixGraph::ripple(32));
        assert!(ks.delay < rp.delay);
        assert!(ks.area > rp.area);
    }

    #[test]
    fn sklansky_fanout_penalty_visible() {
        // Sklansky is minimum depth but its high fanout must cost delay
        // under this model relative to Kogge-Stone (fanout ≤ 2).
        let sk = evaluate(&structures::sklansky(32));
        let ks = evaluate(&structures::kogge_stone(32));
        assert!(sk.delay > ks.delay, "sk={} ks={}", sk.delay, ks.delay);
    }

    #[test]
    fn adding_node_changes_metrics() {
        let mut g = PrefixGraph::ripple(16);
        let before = evaluate(&g);
        g.apply(Action::Add(crate::Node::new(12, 4))).unwrap();
        let after = evaluate(&g);
        assert!(after.area > before.area);
        assert!(after.delay < before.delay, "shortcut should reduce delay");
    }

    #[test]
    fn paper_fig6a_area_range() {
        // The paper's 32-bit Fig. 6a x-axis spans roughly 60–100 area units;
        // our model must place the classical designs in that range.
        for g in [
            structures::sklansky(32),
            structures::brent_kung(32),
            structures::han_carlson(32),
        ] {
            let m = evaluate(&g);
            assert!(
                (50.0..=140.0).contains(&m.area),
                "area {} out of plausible range",
                m.area
            );
        }
    }
}
