//! The `N×N×4` node-feature tensor fed to the Q-network (paper Sec. IV-C).
//!
//! The four channels encode, for each grid position `(MSB, LSB)`:
//!
//! 1. `1.0` if the node is present (nodelist), else `0.0`;
//! 2. `1.0` if the node is in the minlist (deletable), else `0.0`;
//! 3. the node's topological level, normalized to `[0, 1]`;
//! 4. the node's fanout (child count), normalized to `[0, 1]`.
//!
//! The features are deliberately **task-independent**: every parallel
//! prefix computation (adder, OR-prefix, incrementer, …) shares the same
//! grid state space, so one feature extractor — and one Q-network input
//! layout — serves every `prefixrl_core::task::CircuitTask`. What differs
//! per task is the netlist the state maps to, which only the reward oracle
//! sees.

use crate::graph::PrefixGraph;

/// Number of feature channels per grid position.
pub const CHANNELS: usize = 4;

/// Extracts the state features as a flat `[CHANNELS, N, N]` tensor in
/// channel-major (NCHW-style) order, matching the Q-network input layout.
///
/// Levels are normalized by `N-1` (the maximum possible level, reached by
/// the ripple-carry graph) and fanouts by `N-1` (an input feeding every
/// other row), so all features lie in `[0, 1]`.
///
/// # Example
///
/// ```
/// use prefix_graph::{PrefixGraph, features};
///
/// let g = PrefixGraph::ripple(8);
/// let f = features::extract(&g);
/// assert_eq!(f.len(), 4 * 8 * 8);
/// assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
/// ```
pub fn extract(graph: &PrefixGraph) -> Vec<f32> {
    let n = graph.n() as usize;
    let norm = (graph.n() - 1) as f32;
    let mut out = vec![0.0f32; CHANNELS * n * n];
    let (present, min) = (graph.present_grid(), graph.min_grid());
    let (level, fanout) = (graph.level_grid(), graph.fanout_grid());
    let plane = n * n;
    for i in 0..plane {
        if present[i] {
            out[i] = 1.0;
            out[plane + i] = if min[i] { 1.0 } else { 0.0 };
            out[2 * plane + i] = level[i] as f32 / norm;
            out[3 * plane + i] = (fanout[i] as f32 / norm).min(1.0);
        }
    }
    out
}

/// Writes features into a caller-provided buffer of length
/// `CHANNELS * N * N`, avoiding allocation in the training hot loop.
///
/// # Panics
///
/// Panics if `out.len() != CHANNELS * N * N`.
pub fn extract_into(graph: &PrefixGraph, out: &mut [f32]) {
    let n = graph.n() as usize;
    assert_eq!(out.len(), CHANNELS * n * n, "feature buffer size mismatch");
    let norm = (graph.n() - 1) as f32;
    let (present, min) = (graph.present_grid(), graph.min_grid());
    let (level, fanout) = (graph.level_grid(), graph.fanout_grid());
    let plane = n * n;
    out.fill(0.0);
    for i in 0..plane {
        if present[i] {
            out[i] = 1.0;
            out[plane + i] = if min[i] { 1.0 } else { 0.0 };
            out[2 * plane + i] = level[i] as f32 / norm;
            out[3 * plane + i] = (fanout[i] as f32 / norm).min(1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, Node};

    #[test]
    fn shape_and_range() {
        let g = PrefixGraph::ripple(16);
        let f = extract(&g);
        assert_eq!(f.len(), 4 * 16 * 16);
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn present_channel_matches_graph() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        let f = extract(&g);
        let n = 8usize;
        for m in 0..8u16 {
            for l in 0..=m {
                let i = m as usize * n + l as usize;
                let expect = if g.contains(Node::new(m, l)) {
                    1.0
                } else {
                    0.0
                };
                assert_eq!(f[i], expect, "present channel at ({m},{l})");
            }
        }
    }

    #[test]
    fn minlist_channel_subset_of_present() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(6, 3))).unwrap();
        g.apply(Action::Add(Node::new(7, 2))).unwrap();
        let f = extract(&g);
        let plane = 64;
        for i in 0..plane {
            if f[plane + i] == 1.0 {
                assert_eq!(f[i], 1.0, "minlist implies present");
            }
        }
    }

    #[test]
    fn ripple_max_level_is_one() {
        // Ripple's deepest node has level N-1, normalizing to exactly 1.0.
        let g = PrefixGraph::ripple(8);
        let f = extract(&g);
        let level_plane = &f[2 * 64..3 * 64];
        let max = level_plane.iter().cloned().fold(0.0f32, f32::max);
        assert!((max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn extract_into_matches_extract() {
        let mut g = PrefixGraph::ripple(8);
        g.apply(Action::Add(Node::new(5, 2))).unwrap();
        let a = extract(&g);
        let mut b = vec![9.0; 4 * 64];
        extract_into(&g, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "feature buffer size mismatch")]
    fn extract_into_checks_len() {
        let g = PrefixGraph::ripple(8);
        let mut buf = vec![0.0; 10];
        extract_into(&g, &mut buf);
    }
}
