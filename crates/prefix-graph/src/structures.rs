//! Classical parallel prefix structures.
//!
//! These are the regular baselines of the paper (Sklansky \[3\], Kogge-Stone
//! \[4\], Brent-Kung \[5\]) plus Han-Carlson and Ladner-Fischer as extensions,
//! and the ripple-carry / Sklansky pair used as PrefixRL episode starting
//! states (minimum node count and minimum level count respectively).

use crate::graph::PrefixGraph;
use crate::node::Node;

/// The ripple-carry (serial) prefix graph: `N-1` nodes, depth `N-1`.
///
/// One of the two PrefixRL episode starting states.
pub fn ripple(n: u16) -> PrefixGraph {
    PrefixGraph::ripple(n)
}

/// The Sklansky (divide-and-conquer / conditional-sum) prefix graph:
/// minimum depth `⌈log₂N⌉`, `(N/2)·log₂N` nodes for powers of two, but
/// fanout growing to `N/2 + 1`.
///
/// The other PrefixRL episode starting state.
pub fn sklansky(n: u16) -> PrefixGraph {
    fn rec(lo: u16, hi: u16, nodes: &mut Vec<Node>) {
        if hi <= lo {
            return;
        }
        // Split [lo, hi] into [lo, mid-1] and [mid, hi].
        let mid = lo + (hi - lo + 1).div_ceil(2);
        rec(lo, mid - 1, nodes);
        rec(mid, hi, nodes);
        for i in mid..=hi {
            nodes.push(Node::new(i, lo));
        }
    }
    let mut nodes = Vec::new();
    rec(0, n - 1, &mut nodes);
    PrefixGraph::from_nodes(n, nodes)
}

/// The Kogge-Stone prefix graph: minimum depth `⌈log₂N⌉` *and* fanout
/// bounded by 2, at the cost of `N·log₂N − N + 1` nodes and many wires.
pub fn kogge_stone(n: u16) -> PrefixGraph {
    let mut nodes = Vec::new();
    // Span simulation: lsb[i] is the least significant bit currently
    // combined into position i. Each stage doubles span lengths.
    let mut lsb: Vec<u16> = (0..n).collect();
    let mut dist = 1u16;
    while dist < n {
        let prev = lsb.clone();
        for i in 0..n {
            if prev[i as usize] > 0 {
                // Combine with the block ending just below our current span.
                let partner = prev[i as usize] - 1;
                let new_lsb = prev[partner as usize];
                nodes.push(Node::new(i, new_lsb));
                lsb[i as usize] = new_lsb;
            }
        }
        dist *= 2;
    }
    PrefixGraph::from_nodes(n, nodes)
}

/// The Brent-Kung prefix graph: `2(N-1) − log₂N` nodes and depth
/// `2·log₂N − 1` for powers of two — the classic area/wire-efficient tree.
pub fn brent_kung(n: u16) -> PrefixGraph {
    let mut nodes = Vec::new();
    // Up-sweep: combine adjacent blocks of doubling size.
    let mut k = 1u16;
    while (1u32 << k) <= n as u32 {
        let step = 1u32 << k;
        let mut i = step - 1;
        while i < n as u32 {
            nodes.push(Node::new(i as u16, (i + 1 - step) as u16));
            // Upper parent (i, i+1-half) and lower parent
            // (i-half, i+1-step) exist from stage k-1.
            i += step;
        }
        k += 1;
    }
    // Down-sweep: fill in outputs at block midpoints, largest blocks first.
    for kk in (1..k).rev() {
        let step = 1u32 << kk;
        let half = 1u32 << (kk - 1);
        let mut i = step + half - 1;
        while i < n as u32 {
            nodes.push(Node::new(i as u16, 0));
            i += step;
        }
    }
    PrefixGraph::from_nodes(n, nodes)
}

/// The Han-Carlson prefix graph: a Kogge-Stone tree over the odd bit
/// positions plus one final level for the evens — depth `log₂N + 1` with
/// roughly half the nodes of Kogge-Stone.
pub fn han_carlson(n: u16) -> PrefixGraph {
    let mut nodes = Vec::new();
    let mut lsb: Vec<u16> = (0..n).collect();
    // Stage 1: odd rows combine with their even neighbour.
    for i in (1..n).step_by(2) {
        lsb[i as usize] = i - 1;
        nodes.push(Node::new(i, i - 1));
    }
    // Kogge-Stone among odd rows until they all reach 0.
    loop {
        let prev = lsb.clone();
        let mut changed = false;
        for i in (1..n).step_by(2) {
            if prev[i as usize] > 0 {
                let partner = prev[i as usize] - 1;
                let new_lsb = prev[partner as usize];
                nodes.push(Node::new(i, new_lsb));
                lsb[i as usize] = new_lsb;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final stage: even rows pick up the completed odd prefix below.
    for i in (2..n).step_by(2) {
        nodes.push(Node::new(i, 0));
    }
    PrefixGraph::from_nodes(n, nodes)
}

/// The Ladner-Fischer prefix graph (classic `f = 1` variant): a Sklansky
/// tree over the odd bit positions plus one final level for the evens —
/// depth `log₂N + 1` with Sklansky-like size but halved maximum fanout.
pub fn ladner_fischer(n: u16) -> PrefixGraph {
    // Sklansky over odd rows, expressed on the original index grid.
    fn rec(rows: &[u16], spans: &mut Vec<(u16, u16)>, lo_bit: u16) {
        if rows.len() <= 1 {
            return;
        }
        let mid = rows.len().div_ceil(2);
        let (lower, upper) = rows.split_at(mid);
        // lower half combines down to lo_bit already; recurse.
        rec(lower, spans, lo_bit);
        let upper_lo = upper[0] - 1; // even bit below first upper row
        rec(upper, spans, upper_lo);
        for &i in upper {
            spans.push((i, lo_bit));
        }
    }
    let mut nodes = Vec::new();
    for i in (1..n).step_by(2) {
        nodes.push(Node::new(i, i - 1));
    }
    let odd_rows: Vec<u16> = (1..n).step_by(2).collect();
    let mut spans = Vec::new();
    rec(&odd_rows, &mut spans, 0);
    for (m, l) in spans {
        nodes.push(Node::new(m, l));
    }
    for i in (2..n).step_by(2) {
        nodes.push(Node::new(i, 0));
    }
    PrefixGraph::from_nodes(n, nodes)
}

/// A sparse Kogge-Stone tree with the given sparsity (a power of two).
///
/// Rows whose index is `≡ s-1 (mod s)` act as block leaders and run a
/// Kogge-Stone tree over block spans; other rows ripple within their block
/// and pick up the leader prefix below in one final level. Sparsity 1 is
/// exactly Kogge-Stone and sparsity 2 is Han-Carlson; higher sparsities
/// trade depth for node count — the architecture family commercial tools
/// choose from per delay target.
///
/// # Panics
///
/// Panics unless `sparsity` is a power of two.
pub fn sparse_kogge_stone(n: u16, sparsity: u16) -> PrefixGraph {
    assert!(
        sparsity.is_power_of_two(),
        "sparsity {sparsity} must be a power of two"
    );
    let s = sparsity;
    if s == 1 {
        return kogge_stone(n);
    }
    let mut nodes = Vec::new();
    // Non-leader rows outside block 0: block span plus final carry pickup.
    for i in 0..n {
        if i % s != s - 1 && i / s > 0 {
            let base = (i / s) * s;
            nodes.push(Node::new(i, base));
            nodes.push(Node::new(i, 0));
        }
    }
    // Leader rows: Kogge-Stone over block spans.
    let leaders: Vec<u16> = (0..n).filter(|i| i % s == s - 1).collect();
    let mut lsb: Vec<u16> = (0..n).map(|i| (i / s) * s).collect();
    // Leader block spans [i, base] exist once the in-block ripple closes;
    // request them explicitly so the KS stage has its inputs.
    for &i in &leaders {
        if i / s > 0 {
            nodes.push(Node::new(i, (i / s) * s));
        }
    }
    loop {
        let prev = lsb.clone();
        let mut changed = false;
        for &i in &leaders {
            if prev[i as usize] > 0 {
                let partner = prev[i as usize] - 1;
                let new_lsb = prev[partner as usize];
                nodes.push(Node::new(i, new_lsb));
                lsb[i as usize] = new_lsb;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    PrefixGraph::from_nodes(n, nodes)
}

/// A regular-structure constructor: width in, graph out.
pub type StructureCtor = fn(u16) -> PrefixGraph;

/// All named regular structures, for baseline sweeps.
///
/// Returns `(name, constructor)` pairs.
pub fn all_regular() -> Vec<(&'static str, StructureCtor)> {
    vec![
        ("Ripple", ripple as StructureCtor),
        ("Sklansky", sklansky),
        ("KoggeStone", kogge_stone),
        ("BrentKung", brent_kung),
        ("HanCarlson", han_carlson),
        ("LadnerFischer", ladner_fischer),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log2(n: u16) -> u16 {
        15 - n.leading_zeros() as u16
    }

    #[test]
    fn sklansky_counts() {
        // (N/2)·log₂N nodes, depth log₂N for powers of two.
        for n in [4u16, 8, 16, 32, 64] {
            let g = sklansky(n);
            g.verify_legal().unwrap();
            assert_eq!(g.size(), (n as usize / 2) * log2(n) as usize, "size n={n}");
            assert_eq!(g.depth(), log2(n), "depth n={n}");
        }
        // Sklansky's worst fanout grows as N/2: node (15,0) feeds all of
        // rows 16..31.
        assert_eq!(sklansky(32).max_fanout(), 16);
    }

    #[test]
    fn kogge_stone_counts() {
        // N·log₂N − N + 1 nodes, depth log₂N, fanout ≤ 2 for op nodes.
        for n in [4u16, 8, 16, 32, 64] {
            let g = kogge_stone(n);
            g.verify_legal().unwrap();
            let expect = n as usize * log2(n) as usize - n as usize + 1;
            assert_eq!(g.size(), expect, "size n={n}");
            assert_eq!(g.depth(), log2(n), "depth n={n}");
        }
        // Interior KS nodes drive at most two children (the grid merges the
        // textbook pass-through copies of completed prefixes, so *output*
        // nodes accumulate up to log₂N children).
        let g = kogge_stone(32);
        for node in g.op_nodes().filter(|nd| nd.is_interior()) {
            assert!(g.fanout(node).unwrap() <= 2, "KS fanout bound at {node}");
        }
    }

    #[test]
    fn brent_kung_counts() {
        // 2(N-1) − log₂N nodes, depth 2·log₂N − 1 for powers of two.
        for n in [4u16, 8, 16, 32, 64] {
            let g = brent_kung(n);
            g.verify_legal().unwrap();
            let expect = 2 * (n as usize - 1) - log2(n) as usize;
            assert_eq!(g.size(), expect, "size n={n}");
            let expect_depth = if n == 2 { 1 } else { 2 * log2(n) - 2 };
            assert_eq!(g.depth(), expect_depth, "depth n={n}");
        }
    }

    #[test]
    fn han_carlson_depth_and_size() {
        for n in [8u16, 16, 32, 64] {
            let g = han_carlson(n);
            g.verify_legal().unwrap();
            assert_eq!(g.depth(), log2(n) + 1, "depth n={n}");
            // Sparse tree: strictly smaller than Kogge-Stone, larger than BK.
            assert!(g.size() < kogge_stone(n).size());
            assert!(g.size() > brent_kung(n).size());
        }
    }

    #[test]
    fn ladner_fischer_depth() {
        for n in [8u16, 16, 32, 64] {
            let g = ladner_fischer(n);
            g.verify_legal().unwrap();
            assert_eq!(g.depth(), log2(n) + 1, "depth n={n}");
            // Halved fanout relative to Sklansky.
            assert!(g.max_fanout() <= sklansky(n).max_fanout());
        }
    }

    #[test]
    fn sparse_ks_family_endpoints() {
        for n in [8u16, 16, 32] {
            assert_eq!(sparse_kogge_stone(n, 1), kogge_stone(n), "s=1 is KS, n={n}");
            assert_eq!(
                sparse_kogge_stone(n, 2),
                han_carlson(n),
                "s=2 is Han-Carlson, n={n}"
            );
        }
    }

    #[test]
    fn sparse_ks_trades_size_for_depth() {
        let n = 32;
        let mut prev_size = usize::MAX;
        let mut prev_depth = 0;
        for s in [1u16, 2, 4, 8] {
            let g = sparse_kogge_stone(n, s);
            g.verify_legal().unwrap();
            assert!(g.size() <= prev_size, "size must shrink with sparsity");
            assert!(g.depth() >= prev_depth, "depth must grow with sparsity");
            prev_size = g.size();
            prev_depth = g.depth();
        }
    }

    #[test]
    fn constructions_are_closure_stable() {
        // The canonical closure of each classical node set adds nothing:
        // sizes already asserted above; additionally the minlist must
        // regenerate the identical graph (round-trip through from_min_nodes).
        for (name, ctor) in all_regular() {
            for n in [8u16, 16, 32] {
                let g = ctor(n);
                let back = PrefixGraph::from_min_nodes(n, g.min_nodes());
                assert_eq!(g, back, "{name} n={n} closure round-trip");
            }
        }
    }

    #[test]
    fn non_power_of_two_widths_are_legal() {
        for (name, ctor) in all_regular() {
            for n in [3u16, 5, 6, 7, 12, 24, 33] {
                let g = ctor(n);
                g.verify_legal()
                    .unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
            }
        }
    }
}
