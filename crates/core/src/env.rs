//! The PrefixRL MDP (paper Section IV-A/B).
//!
//! States are legal `N`-input prefix graphs; actions add or delete a node at
//! an interior grid position (legalization keeps the graph legal); the
//! reward is the scaled decrease in evaluated `(area, delay)`:
//!
//! ```text
//! r_t = [c_area·(area(s_t) − area(s_{t+1})),  c_delay·(delay(s_t) − delay(s_{t+1}))]
//! ```
//!
//! Episodes start from the ripple-carry or Sklansky graph (minimum node
//! count and minimum level count respectively) chosen at random, and
//! truncate after a step budget. There are no terminal states — truncation
//! bootstraps.

use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::task::{self, CircuitTask};
use prefix_graph::{features, Action, ActionKind, Node, PrefixGraph};
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Episode starting-state policy, indexing the task's
/// [`CircuitTask::start_states`] set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartState {
    /// Always the first start state (ripple-carry for the built-in tasks).
    Ripple,
    /// Always the second start state (Sklansky for the built-in tasks).
    Sklansky,
    /// Uniformly one of the first two (the paper's setting).
    RippleOrSklansky,
}

/// Environment configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Input width `N`.
    pub n: u16,
    /// Steps per episode before truncation.
    pub max_steps: usize,
    /// Area scaling constant (paper: 0.001 µm⁻² for synthesis).
    pub c_area: f64,
    /// Delay scaling constant (paper: 10 ns⁻¹ for synthesis).
    pub c_delay: f64,
    /// Starting-state policy.
    pub start: StartState,
    /// The circuit task's stable id ([`CircuitTask::task_id`]). Recorded
    /// in checkpoints; resume refuses a mismatch.
    pub task: String,
}

impl EnvConfig {
    /// The paper's synthesis-reward configuration (adder task).
    pub fn synthesis(n: u16) -> Self {
        EnvConfig {
            n,
            max_steps: 2 * n as usize,
            c_area: 0.001,
            c_delay: 10.0,
            start: StartState::RippleOrSklansky,
            task: "adder".to_string(),
        }
    }

    /// Scaling suited to the analytical model's units (areas of tens of
    /// nodes, delays of tens of units); adder task.
    pub fn analytical(n: u16) -> Self {
        EnvConfig {
            n,
            max_steps: 2 * n as usize,
            c_area: 0.05,
            c_delay: 0.25,
            start: StartState::RippleOrSklansky,
            task: "adder".to_string(),
        }
    }

    /// The same configuration retargeted at another circuit task.
    pub fn with_task(mut self, task_id: &str) -> Self {
        self.task = task_id.to_string();
        self
    }
}

/// Result of one environment step.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// Scaled reward vector `[r_area, r_delay]`.
    pub reward: [f32; 2],
    /// Whether the episode hit its step budget (truncation, not terminal).
    pub truncated: bool,
}

/// Flat action-index helpers: `a = kind·N² + msb·N + lsb` with
/// kind 0 = add, 1 = delete, matching the Q-network's output channels.
pub fn flat_to_action(n: u16, flat: usize) -> Action {
    let nn = n as usize * n as usize;
    let kind = flat / nn;
    let pos = flat % nn;
    let node = Node::new((pos / n as usize) as u16, (pos % n as usize) as u16);
    match kind {
        0 => Action::Add(node),
        1 => Action::Delete(node),
        _ => panic!("flat action {flat} out of range for n={n}"),
    }
}

/// Inverse of [`flat_to_action`].
pub fn action_to_flat(n: u16, action: Action) -> usize {
    let nn = n as usize * n as usize;
    let node = action.node();
    let pos = node.msb() as usize * n as usize + node.lsb() as usize;
    match action.kind() {
        ActionKind::Add => pos,
        ActionKind::Delete => nn + pos,
    }
}

/// The PrefixRL environment.
pub struct PrefixEnv {
    cfg: EnvConfig,
    task: Arc<dyn CircuitTask>,
    evaluator: Arc<dyn Evaluator>,
    graph: PrefixGraph,
    metrics: ObjectivePoint,
    steps: usize,
}

impl PrefixEnv {
    /// Creates an environment, resolving the task from `cfg.task` through
    /// the built-in registry; the first episode starts from the task's
    /// first start state until [`PrefixEnv::reset`] is called.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.task` names no registered task (custom tasks go
    /// through [`PrefixEnv::with_task`]).
    pub fn new(cfg: EnvConfig, evaluator: Arc<dyn Evaluator>) -> Self {
        let task = task::by_name(&cfg.task).unwrap_or_else(|| {
            panic!(
                "unknown task `{}` (registered: {:?}; custom tasks go through \
                 PrefixEnv::with_task)",
                cfg.task,
                task::TASK_NAMES
            )
        });
        Self::with_task(cfg, task, evaluator)
    }

    /// Creates an environment over an explicit (possibly custom) task.
    /// `cfg.task` is overwritten with the task's id so checkpoints record
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator` is bound to a *different* task
    /// ([`Evaluator::bound_task_id`]): training would then stamp
    /// checkpoints with one task while scoring rewards on another,
    /// defeating the resume mismatch guard. Task-agnostic evaluators
    /// (bound id `None`) are accepted for any task.
    pub fn with_task(
        mut cfg: EnvConfig,
        task: Arc<dyn CircuitTask>,
        evaluator: Arc<dyn Evaluator>,
    ) -> Self {
        if let Some(bound) = evaluator.bound_task_id() {
            assert_eq!(
                bound,
                task.task_id(),
                "task/evaluator mismatch: environment task is `{}` but the \
                 evaluator scores task `{bound}`",
                task.task_id()
            );
        }
        cfg.task = task.task_id().to_string();
        let graph = task
            .start_states(cfg.n)
            .into_iter()
            .next()
            .expect("task must provide at least one start state");
        let metrics = evaluator.evaluate(&graph);
        PrefixEnv {
            cfg,
            task,
            evaluator,
            graph,
            metrics,
            steps: 0,
        }
    }

    /// Starts a new episode per the starting-state policy, drawing from
    /// the task's start-state set.
    pub fn reset(&mut self, rng: &mut StdRng) {
        let pool = self.task.start_states(self.cfg.n);
        assert!(!pool.is_empty(), "task must provide a start state");
        let second = 1.min(pool.len() - 1);
        let idx = match self.cfg.start {
            StartState::Ripple => 0,
            StartState::Sklansky => second,
            // One bool draw, matching the historical two-state behaviour
            // exactly (bit-identical resume relies on this RNG schedule).
            StartState::RippleOrSklansky => {
                if rng.random::<bool>() {
                    0
                } else {
                    second
                }
            }
        };
        self.graph = pool.into_iter().nth(idx).expect("index in range");
        self.metrics = self.evaluator.evaluate(&self.graph);
        self.steps = 0;
    }

    /// The current state's feature tensor (flattened `[4, N, N]`).
    pub fn features(&self) -> Vec<f32> {
        features::extract(&self.graph)
    }

    /// Legal-action mask over the flat `2·N²` action space.
    pub fn action_mask(&self) -> Vec<bool> {
        let (add, del) = self.graph.action_masks();
        let mut mask = add;
        mask.extend_from_slice(&del);
        mask
    }

    /// Applies a flat action index.
    ///
    /// # Panics
    ///
    /// Panics if the action is illegal in the current state (the agent
    /// must mask) or out of range.
    pub fn step_flat(&mut self, flat: usize) -> StepOutcome {
        self.step(flat_to_action(self.cfg.n, flat))
    }

    /// Applies an action, returning the scaled reward vector (Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if the action is illegal (callers must respect the mask).
    pub fn step(&mut self, action: Action) -> StepOutcome {
        self.graph
            .apply(action)
            .unwrap_or_else(|e| panic!("illegal action {action}: {e}"));
        let next = self.evaluator.evaluate(&self.graph);
        let reward = [
            (self.cfg.c_area * (self.metrics.area - next.area)) as f32,
            (self.cfg.c_delay * (self.metrics.delay - next.delay)) as f32,
        ];
        self.metrics = next;
        self.steps += 1;
        StepOutcome {
            reward,
            truncated: self.steps >= self.cfg.max_steps,
        }
    }

    /// Restores a checkpointed mid-episode state: `graph` with `steps`
    /// episode steps already taken. Metrics are re-evaluated — evaluators
    /// are deterministic, so this reproduces the captured state exactly.
    pub fn restore(&mut self, graph: PrefixGraph, steps: usize) {
        self.metrics = self.evaluator.evaluate(&graph);
        self.graph = graph;
        self.steps = steps;
    }

    /// The current prefix graph.
    pub fn graph(&self) -> &PrefixGraph {
        &self.graph
    }

    /// The circuit task this environment optimizes.
    pub fn task(&self) -> &Arc<dyn CircuitTask> {
        &self.task
    }

    /// The current state's evaluated objectives.
    pub fn metrics(&self) -> ObjectivePoint {
        self.metrics
    }

    /// Steps taken in the current episode.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Adder, PrefixOr, TaskEvaluator};

    fn env(n: u16) -> PrefixEnv {
        PrefixEnv::new(
            EnvConfig::analytical(n),
            Arc::new(TaskEvaluator::analytical(Adder)),
        )
    }

    #[test]
    fn flat_action_roundtrip() {
        let n = 8;
        for kind in [ActionKind::Add, ActionKind::Delete] {
            for m in 2..n {
                for l in 1..m {
                    let a = match kind {
                        ActionKind::Add => Action::Add(Node::new(m, l)),
                        ActionKind::Delete => Action::Delete(Node::new(m, l)),
                    };
                    assert_eq!(flat_to_action(n, action_to_flat(n, a)), a);
                }
            }
        }
    }

    #[test]
    fn mask_matches_legal_actions() {
        let mut e = env(8);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        let mask = e.action_mask();
        let legal: Vec<usize> = e
            .graph()
            .legal_actions()
            .into_iter()
            .map(|a| action_to_flat(8, a))
            .collect();
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(m, legal.contains(&i), "mask mismatch at {i}");
        }
    }

    #[test]
    fn adding_node_gives_negative_area_reward() {
        let mut e = env(8);
        let flat = action_to_flat(8, Action::Add(Node::new(5, 2)));
        let out = e.step_flat(flat);
        assert!(out.reward[0] < 0.0, "area grew, reward must be negative");
        assert!(!out.truncated);
    }

    #[test]
    fn depth_shortcut_gives_positive_delay_reward() {
        let mut e = env(16);
        // A big shortcut on the deep ripple chain cuts delay.
        let out = e.step(Action::Add(Node::new(12, 4)));
        assert!(out.reward[1] > 0.0, "delay fell, reward must be positive");
    }

    #[test]
    fn truncation_after_max_steps() {
        let mut e = PrefixEnv::new(
            EnvConfig {
                max_steps: 3,
                ..EnvConfig::analytical(8)
            },
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let mut rng = StdRng::seed_from_u64(1);
        e.reset(&mut rng);
        let mut truncated = false;
        for _ in 0..3 {
            let mask = e.action_mask();
            let a = mask.iter().position(|&m| m).unwrap();
            truncated = e.step_flat(a).truncated;
        }
        assert!(truncated);
        assert_eq!(e.steps(), 3);
    }

    #[test]
    fn reset_uses_both_starting_states() {
        let mut e = env(8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..20 {
            e.reset(&mut rng);
            sizes.insert(e.graph().size());
        }
        // Ripple has 7 nodes, Sklansky 12 — both must occur.
        assert!(sizes.contains(&7) && sizes.contains(&12), "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "illegal action")]
    fn illegal_step_panics() {
        let mut e = env(8);
        // Deleting from ripple (empty minlist) is illegal.
        e.step(Action::Delete(Node::new(5, 2)));
    }

    #[test]
    fn config_task_follows_explicit_task() {
        let cfg = EnvConfig::analytical(8); // says "adder"
        let e = PrefixEnv::with_task(
            cfg,
            Arc::new(PrefixOr),
            Arc::new(TaskEvaluator::analytical(PrefixOr)),
        );
        assert_eq!(e.config().task, "prefix-or");
        assert_eq!(e.task().task_id(), "prefix-or");
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn unknown_task_id_panics_loudly() {
        let cfg = EnvConfig::analytical(8).with_task("divider");
        let _ = PrefixEnv::new(cfg, Arc::new(TaskEvaluator::analytical(Adder)));
    }

    #[test]
    #[should_panic(expected = "task/evaluator mismatch")]
    fn task_bound_evaluator_must_match_env_task() {
        // An adder-bound oracle under a prefix-or environment would stamp
        // checkpoints `prefix-or` while rewarding adder synthesis.
        let _ = PrefixEnv::with_task(
            EnvConfig::analytical(8),
            Arc::new(PrefixOr),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
    }

    #[test]
    fn non_adder_tasks_step_identically() {
        // The MDP is task-independent: same graph state space, same
        // rewards under the (graph-level) analytical backend.
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = EnvConfig::analytical(8).with_task("prefix-or");
        let mut e = PrefixEnv::new(cfg, Arc::new(TaskEvaluator::analytical(PrefixOr)));
        e.reset(&mut rng);
        let mut adder = env(8);
        let mut rng2 = StdRng::seed_from_u64(4);
        adder.reset(&mut rng2);
        assert_eq!(e.graph().canonical_key(), adder.graph().canonical_key());
        let a = e.action_mask().iter().position(|&m| m).unwrap();
        let ra = e.step_flat(a);
        let rb = adder.step_flat(a);
        assert_eq!(ra.reward, rb.reward);
    }
}
