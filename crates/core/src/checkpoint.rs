//! Checkpoint save/resume for training runs and weight sweeps.
//!
//! A [`Checkpoint`] captures *everything* the serial [`crate::agent::TrainLoop`]
//! needs to continue bit-identically: both network parameter sets, the Adam
//! moments, the replay buffer (storage, ring cursor, push counter), the raw
//! RNG state, the ε-schedule position (the step counter), the mid-episode
//! environment state, and the harvested design pool. A
//! [`SweepCheckpoint`] aggregates per-agent states for a multi-weight
//! [`crate::experiment::Experiment`], so a killed sweep restarts exactly
//! where it stopped: finished agents are restored from their records,
//! in-progress agents resume from their checkpoints, and pending agents
//! start fresh.
//!
//! Checkpoints serialize as JSON through the workspace serde shim. `f32`/
//! `f64` values round-trip bit-identically (shortest-representation float
//! formatting), which the resume-determinism tests rely on.

use crate::agent::AgentConfig;
use crate::evaluator::ObjectivePoint;
use crate::experiment::RunRecord;
use nn::AdamState;
use prefix_graph::PrefixGraph;
use rl::{ReplayBuffer, TrainerState};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A complete snapshot of one agent's training state between two
/// environment steps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`Checkpoint::FORMAT_VERSION`]); loads reject others.
    pub version: u32,
    /// The agent configuration the run was started with.
    pub cfg: AgentConfig,
    /// Environment steps executed so far.
    pub step: u64,
    /// Online/target parameters and the gradient-step counter.
    pub trainer: TrainerState,
    /// Adam moments + step counter of the online network's optimizer.
    pub opt: AdamState,
    /// The replay buffer, including ring cursor and push counter.
    pub replay: ReplayBuffer,
    /// Raw RNG state (xoshiro256** words).
    pub rng: [u64; 4],
    /// The mid-episode prefix graph.
    pub env_graph: PrefixGraph,
    /// Steps already taken in the current episode.
    pub env_steps: u64,
    /// Scalarized return accumulated in the current episode.
    pub episode_return: f64,
    /// The design pool harvested so far (canonical-key order).
    pub designs: Vec<(PrefixGraph, ObjectivePoint)>,
    /// Per-gradient-step losses so far.
    pub losses: Vec<f32>,
    /// Completed-episode returns so far.
    pub episode_returns: Vec<f64>,
    /// FNV-1a digest of the online parameters, checked on load.
    pub net_digest: u64,
}

impl Checkpoint {
    /// The current checkpoint format version. v2 added the circuit-task
    /// fields (`cfg.env.task`, `SweepCheckpoint::task`); v1 files predate
    /// the task layer and fail to parse on the missing fields.
    pub const FORMAT_VERSION: u32 = 2;

    /// Validates version and online-parameter digest.
    ///
    /// # Errors
    ///
    /// Fails on a version mismatch or a digest mismatch (corruption).
    pub fn validate(&self) -> Result<(), String> {
        if self.version != Self::FORMAT_VERSION {
            return Err(format!(
                "checkpoint format v{} unsupported (expected v{})",
                self.version,
                Self::FORMAT_VERSION
            ));
        }
        let digest = nn::serialize::digest(&self.trainer.online);
        if digest != self.net_digest {
            return Err(format!(
                "checkpoint digest mismatch: stored {:#x}, computed {digest:#x} (corrupt file?)",
                self.net_digest
            ));
        }
        Ok(())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        to_pretty_json(self)
    }

    /// Parses and validates a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, shape mismatch, or failed validation.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let ckpt: Checkpoint = from_json_str(s)?;
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Writes the checkpoint to `path` (atomically via a sibling temp file,
    /// so a crash mid-write never corrupts the previous checkpoint).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        write_atomic(path, &self.to_json())
    }

    /// Loads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed JSON, or failed validation.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

/// The state of one agent inside a sweep checkpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RunState {
    /// Not started yet; resumes as a fresh run.
    Pending,
    /// Mid-run; resumes from the embedded checkpoint.
    InProgress(Box<Checkpoint>),
    /// Finished; restored from the embedded record without re-running.
    Done(RunRecord),
}

/// A checkpoint of an entire multi-agent sweep: one [`RunState`] per
/// configured weight, in run order, stamped with the circuit task it was
/// recorded for (resume refuses a task mismatch).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Format version (shared with [`Checkpoint::FORMAT_VERSION`]).
    pub version: u32,
    /// The circuit task's stable id
    /// ([`crate::task::CircuitTask::task_id`]).
    pub task: String,
    /// Per-run states, indexed by run id.
    pub runs: Vec<RunState>,
}

impl SweepCheckpoint {
    /// An all-pending sweep checkpoint for `n` runs of task `task_id`.
    pub fn fresh(task_id: &str, n: usize) -> Self {
        SweepCheckpoint {
            version: Checkpoint::FORMAT_VERSION,
            task: task_id.to_string(),
            runs: (0..n).map(|_| RunState::Pending).collect(),
        }
    }

    /// How many runs have finished.
    pub fn completed_runs(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| matches!(r, RunState::Done(_)))
            .count()
    }

    /// Validates version and every embedded per-agent checkpoint.
    ///
    /// # Errors
    ///
    /// Fails on version or digest mismatch.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != Checkpoint::FORMAT_VERSION {
            return Err(format!(
                "sweep checkpoint format v{} unsupported (expected v{})",
                self.version,
                Checkpoint::FORMAT_VERSION
            ));
        }
        for (i, run) in self.runs.iter().enumerate() {
            if let RunState::InProgress(ckpt) = run {
                ckpt.validate().map_err(|e| format!("run {i}: {e}"))?;
                if ckpt.cfg.env.task != self.task {
                    return Err(format!(
                        "run {i}: embedded checkpoint is for task `{}` but the \
                         sweep is stamped `{}` (corrupt or hand-edited file?)",
                        ckpt.cfg.env.task, self.task
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        to_pretty_json(self)
    }

    /// Parses and validates a sweep checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, shape mismatch, or failed validation.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let ckpt: SweepCheckpoint = from_json_str(s)?;
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Writes the sweep checkpoint to `path` atomically.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        write_atomic(path, &self.to_json())
    }

    /// Loads and validates a sweep checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed JSON, or failed validation.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

fn to_pretty_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("value-tree serialization is infallible")
}

fn from_json_str<T: Deserialize>(s: &str) -> Result<T, String> {
    serde_json::from_str(s)
}

/// Writes `contents` to `path` via a uniquely named sibling temp file +
/// rename, creating parent directories as needed (shared by checkpoint,
/// sweep, and frontier-store persists).
///
/// The temp name *appends* to the full file name (it never replaces the
/// extension) and embeds the pid plus a process-wide counter. With the
/// historical `path.with_extension("tmp")` scheme, two writers whose paths
/// differed only in extension (`a.json` vs `a.ckpt`), or two jobs
/// checkpointing the same stem concurrently, shared one temp path: each
/// could overwrite the other's half-written bytes and then rename the
/// rival's file into place. Unique temp names make concurrent writers to
/// *different* destinations fully independent; concurrent writers to the
/// *same* destination each rename a complete file (last rename wins).
///
/// # Errors
///
/// Fails on I/O errors or a path with no file name.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| format!("cannot write {}: path has no file name", path.display()))?
        .to_os_string();
    tmp_name.push(format!(".{}.{seq}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Leave no orphaned temp behind a failed rename.
        let _ = std::fs::remove_file(&tmp);
        format!("rename to {}: {e}", path.display())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::TrainLoop;
    use crate::experiment::NullObserver;
    use crate::task::{Adder, TaskEvaluator};
    use std::sync::Arc;

    fn mid_run_checkpoint() -> Checkpoint {
        let cfg = AgentConfig::tiny(8, 0.4);
        let mut lp = TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        for _ in 0..120 {
            lp.step_once(0, &mut NullObserver);
        }
        lp.checkpoint()
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let ckpt = mid_run_checkpoint();
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.step, ckpt.step);
        assert_eq!(back.rng, ckpt.rng);
        assert_eq!(back.trainer.online, ckpt.trainer.online);
        assert_eq!(back.trainer.target, ckpt.trainer.target);
        assert_eq!(back.trainer.grad_steps, ckpt.trainer.grad_steps);
        assert_eq!(back.opt.t, ckpt.opt.t);
        assert_eq!(back.opt.m, ckpt.opt.m);
        assert_eq!(back.opt.v, ckpt.opt.v);
        assert_eq!(back.replay.len(), ckpt.replay.len());
        assert_eq!(back.replay.total_pushed(), ckpt.replay.total_pushed());
        assert_eq!(back.losses, ckpt.losses);
        assert_eq!(back.episode_return, ckpt.episode_return);
        assert_eq!(back.designs.len(), ckpt.designs.len());
        assert_eq!(
            back.env_graph.canonical_key(),
            ckpt.env_graph.canonical_key()
        );
    }

    #[test]
    fn corrupted_checkpoint_rejected() {
        let mut ckpt = mid_run_checkpoint();
        ckpt.trainer.online[0][0] += 1.0;
        let err = Checkpoint::from_json(&ckpt.to_json()).unwrap_err();
        assert!(err.contains("digest"), "{err}");
        let mut wrong_version = mid_run_checkpoint();
        wrong_version.version = 99;
        let err = Checkpoint::from_json(&wrong_version.to_json()).unwrap_err();
        assert!(err.contains("format"), "{err}");
    }

    #[test]
    fn file_roundtrip_and_atomic_write() {
        let dir = std::env::temp_dir().join("prefixrl-ckpt-test");
        let path = dir.join("agent.ckpt.json");
        let ckpt = mid_run_checkpoint();
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.step, ckpt.step);
        assert_no_temp_files(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn assert_no_temp_files(dir: &Path) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "temp file left behind: {name:?}"
            );
        }
    }

    /// Regression test for the shared-temp-name clobber: two threads
    /// persisting `a.json` and `a.ckpt` side by side. Under the old
    /// `with_extension("tmp")` scheme both writers raced on one `a.tmp`,
    /// so a writer could rename the rival's (possibly half-written) bytes
    /// into its own destination; with unique sibling temp names every
    /// read-back must see exactly the writer's own last contents.
    #[test]
    fn concurrent_writers_with_shared_stem_never_clobber() {
        let dir = std::env::temp_dir().join(format!(
            "prefixrl-atomic-stress-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::thread::scope(|s| {
            for name in ["a.json", "a.ckpt"] {
                let path = dir.join(name);
                s.spawn(move || {
                    for i in 0..400 {
                        let body = format!("{{\"file\":\"{name}\",\"i\":{i}}}");
                        write_atomic(&path, &body).unwrap();
                        let back = std::fs::read_to_string(&path).unwrap();
                        assert_eq!(
                            back, body,
                            "{name}: write {i} clobbered by the sibling writer"
                        );
                    }
                });
            }
        });
        assert_no_temp_files(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_checkpoint_roundtrip() {
        let mut sweep = SweepCheckpoint::fresh("adder", 3);
        sweep.runs[1] = RunState::InProgress(Box::new(mid_run_checkpoint()));
        sweep.runs[2] = RunState::Done(RunRecord {
            run: 2,
            w_area: 0.9,
            steps: 300,
            designs: Vec::new(),
            losses: vec![0.5, 0.25],
            episode_returns: vec![1.0],
        });
        assert_eq!(sweep.completed_runs(), 1);
        let back = SweepCheckpoint::from_json(&sweep.to_json()).unwrap();
        assert_eq!(back.runs.len(), 3);
        assert!(matches!(back.runs[0], RunState::Pending));
        match &back.runs[1] {
            RunState::InProgress(c) => assert_eq!(c.step, 120),
            other => panic!("expected InProgress, got {}", variant_name(other)),
        }
        match &back.runs[2] {
            RunState::Done(r) => {
                assert_eq!(r.losses, vec![0.5, 0.25]);
                assert_eq!(r.w_area, 0.9);
            }
            other => panic!("expected Done, got {}", variant_name(other)),
        }
    }

    fn variant_name(r: &RunState) -> &'static str {
        match r {
            RunState::Pending => "Pending",
            RunState::InProgress(_) => "InProgress",
            RunState::Done(_) => "Done",
        }
    }
}
